"""Monte-Carlo replay of the submission strategies.

The analytic moments of :mod:`repro.core` are validated by replaying each
strategy against latencies sampled from the same :class:`~repro.core.model.LatencyModel`
(outliers drawn as ``+inf`` with probability ``ρ``).  The engines are
fully vectorised over jobs; per-job Python loops are avoided per the HPC
guidance.
"""

from repro.montecarlo.engine import (
    McRun,
    simulate_delayed,
    simulate_multiple,
    simulate_single,
)
from repro.montecarlo.compare import agreement_zscore, mc_summary, McSummary

__all__ = [
    "McRun",
    "simulate_single",
    "simulate_multiple",
    "simulate_delayed",
    "mc_summary",
    "McSummary",
    "agreement_zscore",
]
