"""Vectorised Monte-Carlo simulation of the three strategies.

Each simulator replays the *mechanics* of a strategy (submission,
timeout, cancellation) against latencies sampled from a
:class:`~repro.core.model.LatencyModel` — outliers are sampled as ``+inf``
with probability ``ρ``, exactly matching the sub-distribution ``F̃`` the
analytic formulas integrate.  Agreement between these replays and the
closed forms is therefore a strong end-to-end check of both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LatencyModel
from repro.core.strategies.delayed import n_parallel_for_latency
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive

__all__ = ["McRun", "simulate_single", "simulate_multiple", "simulate_delayed"]

#: hard cap on resubmission rounds — reached only if the per-attempt
#: success probability is pathologically small for the chosen timeout
_MAX_ROUNDS = 100_000


@dataclass(frozen=True)
class McRun:
    """Outcome of one Monte-Carlo strategy replay.

    Attributes
    ----------
    j:
        Total latency of each simulated task (s), shape ``(n_tasks,)``.
    jobs_submitted:
        Number of grid jobs submitted per task (every burst copy and
        every resubmission counts one job).
    n_parallel:
        Per-task time-averaged number of copies in flight (``N_//``).
    """

    j: np.ndarray
    jobs_submitted: np.ndarray
    n_parallel: np.ndarray

    @property
    def mean_j(self) -> float:
        """Sample mean of the total latency."""
        return float(self.j.mean())

    @property
    def std_j(self) -> float:
        """Sample standard deviation of the total latency."""
        return float(self.j.std())

    @property
    def stderr_j(self) -> float:
        """Standard error of :attr:`mean_j`."""
        return float(self.j.std(ddof=1) / np.sqrt(self.j.size))

    @property
    def mean_parallel(self) -> float:
        """Sample mean of ``N_//``."""
        return float(self.n_parallel.mean())

    @property
    def mean_jobs(self) -> float:
        """Sample mean of the number of submitted jobs per task."""
        return float(self.jobs_submitted.mean())


def simulate_single(
    model: LatencyModel,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
) -> McRun:
    """Replay the single-resubmission strategy for ``n_tasks`` tasks."""
    check_positive("t_inf", t_inf)
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    j = np.zeros(n_tasks)
    jobs = np.zeros(n_tasks, dtype=np.int64)
    alive = np.arange(n_tasks)
    for _ in range(_MAX_ROUNDS):
        if alive.size == 0:
            break
        lat = model.sample_latencies(alive.size, gen)
        jobs[alive] += 1
        success = lat < t_inf
        done = alive[success]
        j[done] += lat[success]
        failed = alive[~success]
        j[failed] += t_inf
        alive = failed
    else:
        raise RuntimeError(
            f"single-resubmission replay did not converge in {_MAX_ROUNDS} "
            f"rounds (t_inf={t_inf} too small for this model?)"
        )
    return McRun(j=j, jobs_submitted=jobs, n_parallel=np.ones(n_tasks))


def simulate_multiple(
    model: LatencyModel,
    b: int,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
) -> McRun:
    """Replay the burst strategy: ``b`` copies, cancel on first start."""
    check_positive("t_inf", t_inf)
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    j = np.zeros(n_tasks)
    jobs = np.zeros(n_tasks, dtype=np.int64)
    alive = np.arange(n_tasks)
    for _ in range(_MAX_ROUNDS):
        if alive.size == 0:
            break
        lat = model.sample_latencies(alive.size * b, gen).reshape(alive.size, b)
        jobs[alive] += b
        best = lat.min(axis=1)
        success = best < t_inf
        done = alive[success]
        j[done] += best[success]
        failed = alive[~success]
        j[failed] += t_inf
        alive = failed
    else:
        raise RuntimeError(
            f"multiple-submission replay did not converge in {_MAX_ROUNDS} "
            f"rounds (t_inf={t_inf} too small for this model?)"
        )
    # the paper counts N_// = b for burst submission
    return McRun(
        j=j, jobs_submitted=jobs, n_parallel=np.full(n_tasks, float(b))
    )


def simulate_delayed(
    model: LatencyModel,
    t0: float,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
    *,
    block: int = 32,
) -> McRun:
    """Replay the delayed strategy: copy *k* submitted at ``(k-1)·t0``.

    Copy *k* starts at ``(k-1)·t0 + R_k`` if ``R_k < t∞`` (it is cancelled
    at age ``t∞`` otherwise); the task completes at the earliest start.
    Copies are drawn in blocks and a task stops drawing once no future
    copy can beat its current best start time.
    """
    check_positive("t0", t0)
    if not t0 <= t_inf <= 2.0 * t0:
        raise ValueError(f"need t0 <= t_inf <= 2·t0, got t0={t0}, t_inf={t_inf}")
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    j_best = np.full(n_tasks, np.inf)
    k = 0  # index of the first copy in the next block
    for _ in range(_MAX_ROUNDS):
        active = np.nonzero(j_best > k * t0)[0]
        if active.size == 0:
            break
        lat = model.sample_latencies(active.size * block, gen)
        lat = lat.reshape(active.size, block)
        offsets = (np.arange(k, k + block) * t0)[None, :]
        starts = np.where(lat < t_inf, offsets + lat, np.inf)
        j_best[active] = np.minimum(j_best[active], starts.min(axis=1))
        k += block
    else:
        raise RuntimeError(
            f"delayed replay did not converge in {_MAX_ROUNDS} blocks "
            f"(t_inf={t_inf} too small for this model?)"
        )
    # a copy is submitted at (m-1)·t0 for every m with (m-1)·t0 < J
    jobs = np.floor(j_best / t0 + 1e-12).astype(np.int64) + 1
    n_par = np.asarray(n_parallel_for_latency(j_best, t0, t_inf))
    return McRun(j=j_best, jobs_submitted=jobs, n_parallel=n_par)
