"""Vectorised Monte-Carlo simulation of the three strategies.

Each simulator realises the *law* of a strategy (submission, timeout,
cancellation) against latencies distributed as a
:class:`~repro.core.model.LatencyModel` — outliers carry probability ``ρ``
and never start, exactly matching the sub-distribution ``F̃`` the analytic
formulas integrate.  Agreement between these replays and the closed forms
is therefore a strong end-to-end check of both.

For the round-based strategies (single and multiple submission) the
mechanics admit an exact closed form, so no resubmission loop is run at
all: rounds are i.i.d. and a round succeeds with probability
``p = F̃(t∞)`` (single) or ``p = 1 - (1 - F̃(t∞))^b`` (multiple minimum),
hence the number of *failed* rounds is ``Geometric(p) - 1`` and the final
round contributes one draw from the per-round winner's distribution
truncated to ``[0, t∞)``.  Both draws are inverse-transform sampled —
the truncated winner through a dense uniform-knot quantile table (see
:class:`_RoundSampler`) — giving loop-free, allocation-lean simulators
with the same law as the mechanical replay (kept as a reference in the
test suite).  For continuous latency bodies the match is exact up to the
quantile-table interpolation (~10⁻³ s bias); purely atomic laws (step
ECDFs) keep their success/failure counts exact, while table cells that
straddle an atom jump smear ~1/8192 of that cell's mass between the two
adjacent atoms.  The delayed strategy's overlapping copies do not
decouple into i.i.d. rounds, so it keeps the blocked replay.
"""

from __future__ import annotations

import math
import weakref
from dataclasses import dataclass

import numpy as np

from repro.core.model import LatencyModel
from repro.core.strategies.delayed import n_parallel_for_latency
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive

__all__ = ["McRun", "simulate_single", "simulate_multiple", "simulate_delayed"]

#: hard cap on resubmission rounds — reached only if the per-attempt
#: success probability is pathologically small for the chosen timeout
_MAX_ROUNDS = 100_000

#: knots of the truncated-winner quantile table; uniform in quantile space
#: so lookup is direct indexing (no search), dense enough that the linear
#: interpolation bias is orders of magnitude below Monte-Carlo error
_QUANTILE_KNOTS = 8193


class _RoundSampler:
    """Closed-form sampler for one task of a round-based strategy.

    Parameters are a latency model, the burst size ``b`` (1 for single
    resubmission) and the per-copy timeout.  Precomputes the geometric
    failure probability and a quantile table of the final-round winner
    ``min(R_1..R_b) | min < t∞``:  inverting
    ``P(min < x | min < t∞) = (1 - (1 - F̃(x))^b) / p`` at uniform knots
    ``q_j`` gives ``x_j = F⁻¹((1 - (1 - q_j·p)^{1/b}) / (1-ρ))``, so a
    uniform draw maps to a winner latency with one gather and one lerp.
    """

    __slots__ = ("b", "t_inf", "p_round", "q_round", "_xs", "_slopes")

    def __init__(self, model: LatencyModel, b: int, t_inf: float) -> None:
        dist = model.distribution
        rho = model.rho
        # P(R < t∞), strictly: a copy whose latency lands exactly on the
        # timeout is cancelled, as in the mechanical replay (`lat < t_inf`).
        # Evaluating the cdf one ulp below t∞ makes this exact for step
        # (empirical, atom-carrying) distributions and is within one ulp
        # of cdf(t∞) for continuous ones.
        cdf_t = float(dist.cdf(np.nextafter(t_inf, -np.inf)))
        p1 = (1.0 - rho) * cdf_t  # F̃(t∞) = per-copy success probability
        self.b = int(b)
        self.t_inf = float(t_inf)
        self.q_round = (1.0 - p1) ** b
        self.p_round = 1.0 - self.q_round
        if self.p_round <= 0.0:
            self._xs = None
            self._slopes = None
            return
        qs = np.linspace(0.0, 1.0, _QUANTILE_KNOTS)
        f_tilde = 1.0 - (1.0 - qs * self.p_round) ** (1.0 / b)
        targets = np.clip(f_tilde / (1.0 - rho), 0.0, cdf_t)
        xs = np.asarray(dist.ppf(targets), dtype=np.float64)
        # guard empirical/composed ppf backends against numerical wiggles:
        # the table must be a monotone map into [0, t∞]
        xs = np.maximum.accumulate(np.clip(xs, 0.0, self.t_inf))
        self._xs = xs
        self._slopes = np.diff(xs)

    def draw(self, n_tasks: int, gen: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Total latencies and failed-round counts (int64) per task.

        One RNG block and a handful of in-place passes on its two halves —
        at 20k+ tasks every temporary would be an mmap'd allocation, so
        avoiding them is worth ~2× here.
        """
        u = gen.random(2 * n_tasks)
        fails = u[:n_tasks]
        if self.q_round > 0.0:
            # fails = floor(log(1 - u) / log(q)) ~ Geometric(p) - 1
            np.negative(fails, out=fails)
            np.log1p(fails, out=fails)
            fails /= math.log(self.q_round)
            np.floor(fails, out=fails)
            if fails.max() >= _MAX_ROUNDS:
                raise RuntimeError(
                    f"round-based replay did not converge in {_MAX_ROUNDS} "
                    f"rounds (t_inf={self.t_inf} too small for this model?)"
                )
        else:
            fails.fill(0.0)
        n_fail = fails.astype(np.int64)
        pos = u[n_tasks:]
        pos *= _QUANTILE_KNOTS - 1
        idx = pos.astype(np.intp)
        np.subtract(pos, idx, out=pos)  # pos now holds the lerp fraction
        winner = np.take(self._xs, idx)
        step = np.take(self._slopes, idx)
        step *= pos
        winner += step
        fails *= self.t_inf
        fails += winner
        return fails, n_fail


#: per-model cache of round samplers, keyed by (b, t_inf); the weak keys
#: let models (and their tables) be collected with the owning context
_SAMPLER_CACHE: "weakref.WeakKeyDictionary[LatencyModel, dict]" = (
    weakref.WeakKeyDictionary()
)


def _round_sampler(model: LatencyModel, b: int, t_inf: float) -> _RoundSampler:
    per_model = _SAMPLER_CACHE.setdefault(model, {})
    key = (int(b), float(t_inf))
    sampler = per_model.get(key)
    if sampler is None:
        sampler = per_model[key] = _RoundSampler(model, b, t_inf)
    return sampler


@dataclass(frozen=True)
class McRun:
    """Outcome of one Monte-Carlo strategy replay.

    Attributes
    ----------
    j:
        Total latency of each simulated task (s), shape ``(n_tasks,)``.
    jobs_submitted:
        Number of grid jobs submitted per task (every burst copy and
        every resubmission counts one job).
    n_parallel:
        Per-task time-averaged number of copies in flight (``N_//``).
    """

    j: np.ndarray
    jobs_submitted: np.ndarray
    n_parallel: np.ndarray

    @property
    def mean_j(self) -> float:
        """Sample mean of the total latency."""
        return float(self.j.mean())

    @property
    def std_j(self) -> float:
        """Sample standard deviation of the total latency."""
        return float(self.j.std())

    @property
    def stderr_j(self) -> float:
        """Standard error of :attr:`mean_j`."""
        return float(self.j.std(ddof=1) / np.sqrt(self.j.size))

    @property
    def mean_parallel(self) -> float:
        """Sample mean of ``N_//``."""
        return float(self.n_parallel.mean())

    @property
    def mean_jobs(self) -> float:
        """Sample mean of the number of submitted jobs per task."""
        return float(self.jobs_submitted.mean())


def simulate_single(
    model: LatencyModel,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
) -> McRun:
    """Replay the single-resubmission strategy for ``n_tasks`` tasks.

    Loop-free: failed rounds are ``Geometric(F̃(t∞)) - 1`` and the last
    attempt is one truncated draw (see :class:`_RoundSampler`).
    """
    check_positive("t_inf", t_inf)
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    sampler = _round_sampler(model, 1, t_inf)
    if sampler.p_round <= 0.0:
        raise RuntimeError(
            f"single-resubmission replay did not converge in {_MAX_ROUNDS} "
            f"rounds (t_inf={t_inf} too small for this model?)"
        )
    j, jobs = sampler.draw(n_tasks, gen)
    jobs += 1
    return McRun(j=j, jobs_submitted=jobs, n_parallel=np.ones(n_tasks))


def simulate_multiple(
    model: LatencyModel,
    b: int,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
) -> McRun:
    """Replay the burst strategy: ``b`` copies, cancel on first start.

    Loop-free: a round fails with probability ``(1 - F̃(t∞))^b``, so the
    failed-round count is geometric and the final round contributes one
    draw of the truncated minimum (see :class:`_RoundSampler`).
    """
    check_positive("t_inf", t_inf)
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    sampler = _round_sampler(model, b, t_inf)
    if sampler.p_round <= 0.0:
        raise RuntimeError(
            f"multiple-submission replay did not converge in {_MAX_ROUNDS} "
            f"rounds (t_inf={t_inf} too small for this model?)"
        )
    j, jobs = sampler.draw(n_tasks, gen)
    jobs += 1
    jobs *= b
    # the paper counts N_// = b for burst submission
    return McRun(
        j=j, jobs_submitted=jobs, n_parallel=np.full(n_tasks, float(b))
    )


def simulate_delayed(
    model: LatencyModel,
    t0: float,
    t_inf: float,
    n_tasks: int,
    rng: RngLike = None,
    *,
    block: int = 32,
) -> McRun:
    """Replay the delayed strategy: copy *k* submitted at ``(k-1)·t0``.

    Copy *k* starts at ``(k-1)·t0 + R_k`` if ``R_k < t∞`` (it is cancelled
    at age ``t∞`` otherwise); the task completes at the earliest start.
    Copies are drawn in blocks and a task stops drawing once no future
    copy can beat its current best start time.
    """
    check_positive("t0", t0)
    if not t0 <= t_inf <= 2.0 * t0:
        raise ValueError(f"need t0 <= t_inf <= 2·t0, got t0={t0}, t_inf={t_inf}")
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    gen = as_rng(rng)
    j_best = np.full(n_tasks, np.inf)
    k = 0  # index of the first copy in the next block
    for _ in range(_MAX_ROUNDS):
        active = np.nonzero(j_best > k * t0)[0]
        if active.size == 0:
            break
        lat = model.sample_latencies(active.size * block, gen)
        lat = lat.reshape(active.size, block)
        offsets = (np.arange(k, k + block) * t0)[None, :]
        starts = np.where(lat < t_inf, offsets + lat, np.inf)
        j_best[active] = np.minimum(j_best[active], starts.min(axis=1))
        k += block
    else:
        raise RuntimeError(
            f"delayed replay did not converge in {_MAX_ROUNDS} blocks "
            f"(t_inf={t_inf} too small for this model?)"
        )
    # a copy is submitted at (m-1)·t0 for every m with (m-1)·t0 < J
    jobs = np.floor(j_best / t0 + 1e-12).astype(np.int64) + 1
    n_par = np.asarray(n_parallel_for_latency(j_best, t0, t_inf))
    return McRun(j=j_best, jobs_submitted=jobs, n_parallel=n_par)
