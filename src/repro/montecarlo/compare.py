"""Agreement helpers between analytic values and Monte-Carlo estimates."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["McSummary", "mc_summary", "agreement_zscore"]


@dataclass(frozen=True)
class McSummary:
    """Summary statistics of a Monte-Carlo sample.

    Attributes
    ----------
    mean, std:
        Sample mean and standard deviation.
    stderr:
        Standard error of the mean.
    n:
        Sample size.
    """

    mean: float
    std: float
    stderr: float
    n: int

    def ci(self, z: float = 3.0) -> tuple[float, float]:
        """``z``-sigma confidence interval for the mean."""
        return (self.mean - z * self.stderr, self.mean + z * self.stderr)

    def contains(self, value: float, z: float = 3.0) -> bool:
        """Whether ``value`` lies inside the ``z``-sigma interval."""
        lo, hi = self.ci(z)
        return lo <= value <= hi


def mc_summary(samples: np.ndarray) -> McSummary:
    """Summarise a 1-D Monte-Carlo sample."""
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size < 2:
        raise ValueError(f"need at least 2 samples, got {arr.size}")
    if not np.isfinite(arr).all():
        raise ValueError("samples must be finite")
    return McSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        stderr=float(arr.std(ddof=1) / np.sqrt(arr.size)),
        n=int(arr.size),
    )


def agreement_zscore(analytic: float, samples: np.ndarray) -> float:
    """How many standard errors separate an analytic value from MC mean.

    Values below ~4 indicate agreement at the sample size used; the test
    suite uses this to validate every closed form against strategy replay.
    """
    s = mc_summary(samples)
    if s.stderr == 0.0:
        return 0.0 if np.isclose(analytic, s.mean) else float("inf")
    return abs(analytic - s.mean) / s.stderr
