"""Latency-model diagnostics: hazard rate, mean residual latency, and the
first-order optimality condition for the single-resubmission timeout.

Background (Glatard, Montagnat & Pennec, CCGrid'07 — the paper's ref [8]):
differentiating Eq. (1) shows that a timeout ``t∞`` is stationary iff ::

    E_J(t∞) = (1 - F̃(t∞)) / f̃(t∞)

i.e. the expected total latency equals the inverse hazard of the
sub-distribution at the timeout.  For light-tailed latencies (increasing
hazard) no finite timeout helps; heavy tails and outliers (decreasing
hazard / defective mass) make finite timeouts optimal — the paper's
motivation in one identity.  These diagnostics let a user inspect *why*
the optimiser picked its timeout on their trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.single import single_expectation_sweep

__all__ = [
    "hazard_rate",
    "mean_residual_latency",
    "timeout_stationarity_gap",
    "TimeoutDiagnosis",
    "diagnose_timeout",
]


def hazard_rate(
    model: GriddedLatencyModel, *, window: int = 0
) -> np.ndarray:
    """Sub-distribution hazard ``f̃(t) / (1 - F̃(t))`` on the grid.

    Because ``F̃`` saturates at ``1-ρ``, the hazard decays to zero as the
    outlier mass dominates — waiting on an old job becomes hopeless,
    which is exactly what resubmission exploits.

    Parameters
    ----------
    window:
        Half-width (in grid cells) of the centred difference used for the
        density.  0 uses the raw gradient; empirical (ECDF-backed) models
        need ``window`` ≈ a few dozen cells to tame sampling jitter.
    """
    if window < 0:
        raise ValueError(f"window must be >= 0, got {window}")
    if window == 0:
        dens = model.f
    else:
        n = model.grid.n
        k = np.arange(n)
        hi = np.minimum(k + window, n - 1)
        lo = np.maximum(k - window, 0)
        span = (hi - lo) * model.grid.dt
        dens = np.where(span > 0, (model.F[hi] - model.F[lo]) / np.maximum(span, 1e-300), 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        h = dens / model.S
    return np.where(model.S > 1e-12, h, 0.0)


def mean_residual_latency(model: GriddedLatencyModel) -> np.ndarray:
    """``E[R - t | R > t]`` including the outlier mass (``inf`` if ρ > 0).

    With outliers the conditional expectation is infinite for every ``t``
    (the job may never start); the *defective* version restricted to jobs
    that do start is returned instead:
    ``E[(R - t)·1(R > t, R finite)] / P(R > t)``, which stays finite and
    still shows the increasing-with-age pathology of heavy tails.
    """
    n = model.grid.n
    # ∫_t^{t_max} (1-F̃(u)) du - (t_max - t)·S(t_max) approximates the
    # finite-R part of the tail integral on the grid span
    tail = model.A[-1] - model.A - (model.times[-1] - model.times) * model.S[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        mrl = tail / model.S
    return np.where(model.S > 1e-12, mrl, 0.0)


def timeout_stationarity_gap(model: GriddedLatencyModel) -> np.ndarray:
    """Signed gap ``E_J(t) - (1-F̃(t))/f̃(t)`` on the grid.

    Zero crossings of this gap are the stationary points of Eq. (1); the
    optimiser's argmin must sit at (or between) them.  Returns ``nan``
    where the hazard vanishes.
    """
    e_j = single_expectation_sweep(model)
    h = hazard_rate(model)
    with np.errstate(divide="ignore", invalid="ignore"):
        inv_h = np.where(h > 1e-15, 1.0 / h, np.nan)
        gap = e_j - inv_h
    return gap


@dataclass(frozen=True)
class TimeoutDiagnosis:
    """Why a given timeout is (or is not) locally optimal.

    Attributes
    ----------
    t_inf:
        The timeout under inspection (s).
    e_j:
        Expected total latency at that timeout (s).
    inverse_hazard:
        ``(1-F̃)/f̃`` at the timeout (s) — the stationarity reference.
    gap:
        ``e_j - inverse_hazard``.  Since
        ``dE_J/dt∞ = f̃·(1/hazard - E_J)/F̃``, a *positive* gap means
        ``E_J`` is still decreasing (raise the timeout), a *negative*
        gap means the stationary point was passed (cancel sooner), and
        zero marks local optimality.
    """

    t_inf: float
    e_j: float
    inverse_hazard: float
    gap: float

    @property
    def verdict(self) -> str:
        """Human-readable reading of the gap."""
        if not np.isfinite(self.gap):
            return "hazard vanished: timeout far beyond the observed support"
        scale = max(abs(self.e_j), 1.0)
        if abs(self.gap) < 0.05 * scale:
            return "stationary: locally optimal timeout"
        if self.gap > 0:
            return "raising the timeout still pays (E_J above inverse hazard)"
        return "past the stationary point: cancel sooner (E_J below inverse hazard)"


def diagnose_timeout(
    model: GriddedLatencyModel, t_inf: float, *, window: int = 25
) -> TimeoutDiagnosis:
    """Evaluate the ref-[8] stationarity condition at one timeout.

    ``window`` smooths the density estimate (see :func:`hazard_rate`);
    the default suits empirical models on a 1–2 s grid.
    """
    k = model.index_of(t_inf)
    e_j = float(single_expectation_sweep(model)[k])
    h = float(hazard_rate(model, window=window)[k])
    inv_h = 1.0 / h if h > 1e-15 else float("inf")
    return TimeoutDiagnosis(
        t_inf=model.grid.time_of(k),
        e_j=e_j,
        inverse_hazard=inv_h,
        gap=e_j - inv_h if np.isfinite(inv_h) else float("inf"),
    )
