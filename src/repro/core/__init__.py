"""The paper's primary contribution: probabilistic submission-strategy models.

Public surface:

* :class:`LatencyModel` — a latency distribution paired with a fault
  (outlier) ratio ``ρ``; exposes the sub-distribution
  ``F̃_R(t) = (1-ρ)·F_R(t)`` that all strategy formulas operate on.
* :class:`GriddedLatencyModel` — ``F̃_R`` tabulated on a uniform
  :class:`~repro.util.grids.TimeGrid` with precomputed cumulative
  integrals, the vectorised evaluation backend.
* Strategies: :class:`SingleResubmission` (paper §4, Eqs. 1–2),
  :class:`MultipleSubmission` (§5, Eqs. 3–4),
  :class:`DelayedResubmission` (§6, Eq. 5 + N_// of §6.1).
* :func:`delta_cost` and friends — the §7 cost criterion (Eq. 6).
* Optimisers — vectorised sweeps returning optimal timeouts
  (:func:`optimize_single`, :func:`optimize_multiple`,
  :func:`optimize_delayed`, :func:`optimize_delayed_ratio`,
  :func:`optimize_delayed_cost`).
* :mod:`repro.core.paper_equations` — literal transcriptions of the
  printed equations, kept for cross-validation (see DESIGN.md errata).
"""

from repro.core.model import GriddedLatencyModel, LatencyModel
from repro.core.burst_selection import (
    smallest_b_for_deadline,
    smallest_b_for_expectation,
)
from repro.core.cost import delta_cost, cost_curve_multiple, cost_curve_delayed
from repro.core.diagnostics import (
    TimeoutDiagnosis,
    diagnose_timeout,
    hazard_rate,
    mean_residual_latency,
    timeout_stationarity_gap,
)
from repro.core.distribution_of_j import (
    multiple_survival,
    single_survival,
    strategy_quantile,
    survival_to_quantile,
)
from repro.core.optimize import (
    DelayedOptimum,
    SingleOptimum,
    optimize_delayed,
    optimize_delayed_cost,
    optimize_delayed_ratio,
    optimize_multiple,
    optimize_single,
)
from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    Strategy,
    StrategyMoments,
)

__all__ = [
    "LatencyModel",
    "GriddedLatencyModel",
    "delta_cost",
    "cost_curve_multiple",
    "cost_curve_delayed",
    "TimeoutDiagnosis",
    "diagnose_timeout",
    "hazard_rate",
    "mean_residual_latency",
    "timeout_stationarity_gap",
    "single_survival",
    "multiple_survival",
    "strategy_quantile",
    "survival_to_quantile",
    "smallest_b_for_expectation",
    "smallest_b_for_deadline",
    "SingleOptimum",
    "DelayedOptimum",
    "optimize_single",
    "optimize_multiple",
    "optimize_delayed",
    "optimize_delayed_ratio",
    "optimize_delayed_cost",
    "Strategy",
    "StrategyMoments",
    "SingleResubmission",
    "MultipleSubmission",
    "DelayedResubmission",
]
