"""Full distribution of the total latency ``J`` under each strategy.

The paper reports only the first two moments of ``J``; for deadline-aware
planning (e.g. "which strategy gets 95 % of my jobs started within 20
minutes?") the whole law is needed.  This module tabulates ``P(J > t)``
on the model grid for all three strategies — the single/multiple cases
are lattice distributions over resubmission rounds, the delayed case
reuses the piecewise product form of :mod:`repro.core.strategies.delayed`.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import delayed_survival
from repro.util.validation import check_in_range

__all__ = [
    "single_survival",
    "multiple_survival",
    "survival_to_quantile",
    "strategy_quantile",
]


def _rounds_survival(
    model: GriddedLatencyModel, batch_survival: np.ndarray, k_inf: int
) -> np.ndarray:
    """``P(J > t)`` for a cancel-and-resubmit process with round length
    ``t∞`` and per-round batch survival ``batch_survival`` (a tabulated
    ``P(min of batch > u)`` for ``u`` in one round).

    Within round ``m`` (``t = m·t∞ + u``, ``u ∈ [0, t∞)``):
    ``P(J > t) = q^m · batch_survival(u)`` with ``q = batch_survival(t∞)``.
    """
    n = model.grid.n
    q = float(batch_survival[k_inf])
    out = np.empty(n)
    qm = 1.0
    start = 0
    while start < n:
        stop = min(start + k_inf, n)
        out[start:stop] = qm * batch_survival[: stop - start]
        qm *= q
        start = stop
        if qm < 1e-300:
            out[start:] = 0.0
            break
    return out


def single_survival(model: GriddedLatencyModel, t_inf: float) -> np.ndarray:
    """``P(J > t_k)`` for single resubmission at timeout ``t∞``."""
    k = model.index_of(t_inf)
    if k < 1:
        raise ValueError(f"t_inf={t_inf} is below the grid resolution")
    return _rounds_survival(model, model.S, k)


def multiple_survival(
    model: GriddedLatencyModel, b: int, t_inf: float
) -> np.ndarray:
    """``P(J > t_k)`` for the ``b``-burst strategy at timeout ``t∞``."""
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    k = model.index_of(t_inf)
    if k < 1:
        raise ValueError(f"t_inf={t_inf} is below the grid resolution")
    return _rounds_survival(model, model.S**b, k)


def survival_to_quantile(
    model: GriddedLatencyModel, survival: np.ndarray, q: float
) -> float:
    """The ``q``-quantile of ``J`` from its tabulated survival function.

    Parameters
    ----------
    model:
        The gridded model the survival was tabulated on.
    survival:
        ``P(J > t_k)`` array of grid length, non-increasing.
    q:
        Quantile level in ``(0, 1)``; must be reachable on the grid
        (``P(J <= t_max) >= q``).
    """
    check_in_range("q", q, 0.0, 1.0, inclusive=(False, False))
    cdf = 1.0 - np.asarray(survival)
    if cdf[-1] < q:
        raise ValueError(
            f"quantile {q} not reached on the grid "
            f"(P(J <= t_max) = {cdf[-1]:.6f})"
        )
    idx = int(np.searchsorted(cdf, q, side="left"))
    if idx == 0:
        return 0.0
    # linear interpolation inside the bracketing cell
    c0, c1 = cdf[idx - 1], cdf[idx]
    t0, t1 = model.times[idx - 1], model.times[idx]
    if c1 <= c0:
        return float(t1)
    return float(t0 + (q - c0) / (c1 - c0) * (t1 - t0))


def strategy_quantile(
    model: GriddedLatencyModel,
    strategy,
    q: float,
) -> float:
    """``q``-quantile of ``J`` for any of the three strategy objects.

    Dispatches on the strategy type (single / multiple / delayed) and
    evaluates the corresponding survival tabulation.
    """
    from repro.core.strategies import (
        DelayedResubmission,
        MultipleSubmission,
        SingleResubmission,
    )

    if isinstance(strategy, SingleResubmission):
        surv = single_survival(model, strategy.t_inf)
    elif isinstance(strategy, MultipleSubmission):
        surv = multiple_survival(model, strategy.b, strategy.t_inf)
    elif isinstance(strategy, DelayedResubmission):
        surv = delayed_survival(model, strategy.t0, strategy.t_inf)
    else:
        raise TypeError(f"unsupported strategy type {type(strategy).__name__}")
    return survival_to_quantile(model, surv, q)
