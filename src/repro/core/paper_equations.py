"""Literal transcriptions of the paper's printed equations.

These serve as independent cross-checks of the vectorised implementations
in :mod:`repro.core.strategies` — and, for Eq. (5), as a quantification of
the union-bound slip in the printed derivation (DESIGN.md errata):

* Eqs. (1)–(4) are transcribed exactly as printed and must agree with the
  geometric-sum implementations to numerical tolerance (property-tested).
* Eq. (5) is represented by :func:`eq5_union_expectation`, which rebuilds
  ``F_J`` window by window using the paper's union decomposition
  ``P(A∪B) = P(A)+P(B)−P(A)·P(B)`` with ``A = {R_n ∈ (t0, v]}`` and
  ``B = {R_{n+1} <= u}``.  The correct decomposition restricts ``B`` to
  paths where job *n* survived ``t0`` (``B' = {R_n > t0} ∩ B``); the
  difference adds a spurious ``F̃(t0)·F̃(u)`` term per window.  The printed
  I1-window base term is resolved by continuity (as the authors' own
  smooth surfaces imply).  :mod:`repro.experiments.eq5_discrepancy`
  measures the resulting gap.
"""

from __future__ import annotations

import numpy as np

from repro.core.model import GriddedLatencyModel

__all__ = [
    "eq1_expectation",
    "eq2_std",
    "eq3_expectation",
    "eq4_std",
    "eq5_union_expectation",
    "union_cdf_of_j",
]


def eq1_expectation(model: GriddedLatencyModel, t_inf: float) -> float:
    """Eq. (1): ``E_J = (1/F̃(t∞)) ∫₀^{t∞} (1-F̃(u)) du``."""
    k = model.index_of(t_inf)
    p = float(model.F[k])
    if p <= 0.0:
        return float("inf")
    return float(model.A[k] / p)


def eq2_std(model: GriddedLatencyModel, t_inf: float) -> float:
    """Eq. (2) exactly as printed (three-term variance expression)."""
    k = model.index_of(t_inf)
    p = float(model.F[k])
    if p <= 0.0:
        return float("inf")
    t = float(model.times[k])
    s = model.S
    a = float(model.A[k])  # ∫ (1-F̃)
    u_int = float(model.grid.cumint(model.times * s)[k])  # ∫ u(1-F̃)
    var = (
        -(1.0 / p**2) * a**2
        + (2.0 / p) * u_int
        + (2.0 * t * (1.0 - p) / p**2) * a
    )
    return float(np.sqrt(max(0.0, var)))


def eq3_expectation(model: GriddedLatencyModel, b: int, t_inf: float) -> float:
    """Eq. (3): Eq. (1) with ``F̃ → 1-(1-F̃)^b``."""
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    k = model.index_of(t_inf)
    surv_b = model.S**b
    p = float(1.0 - surv_b[k])
    if p <= 0.0:
        return float("inf")
    a_b = float(model.grid.cumint(surv_b)[k])
    return a_b / p


def eq4_std(model: GriddedLatencyModel, b: int, t_inf: float) -> float:
    """Eq. (4) exactly as printed."""
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    k = model.index_of(t_inf)
    surv_b = model.S**b
    p = float(1.0 - surv_b[k])
    if p <= 0.0:
        return float("inf")
    t = float(model.times[k])
    q = 1.0 - p  # (1-F̃(t∞))^b
    a_b = float(model.grid.cumint(surv_b)[k])
    u_int = float(model.grid.cumint(model.times * surv_b)[k])
    var = (2.0 / p) * u_int + (2.0 * t * q / p**2) * a_b - (1.0 / p**2) * a_b**2
    return float(np.sqrt(max(0.0, var)))


def union_cdf_of_j(
    model: GriddedLatencyModel, t0: float, t_inf: float
) -> np.ndarray:
    """``F_J`` on the grid under the paper's union decomposition of §6.

    Window-by-window reconstruction: before ``t0`` the job is alone and
    ``F_J = F̃``; on each ``I0`` window the paper's
    ``P(A)+P(B)-P(A)P(B)`` increment is added; on each ``I1`` window the
    increment ``q^n·(F̃(u) - F̃(t∞-t0))`` follows by continuity.
    """
    k0 = model.index_of(t0)
    ki = model.index_of(t_inf)
    n = model.grid.n
    if not 1 <= k0 <= ki <= min(2 * k0, n - 1):
        raise ValueError(
            f"need t0 <= t_inf <= 2·t0 on the grid, got t0={t0}, t_inf={t_inf}"
        )
    F = model.F
    q = float(model.S[ki])
    out = np.zeros(n)
    lim = min(k0 + 1, n)
    out[:lim] = F[:lim]
    base = float(F[k0])
    qn = 1.0  # q^(m-1)
    m = 1
    while m * k0 < n and qn > 1e-300:
        # I0(m): indices [m·k0, (m-1)·k0 + ki]
        lo = m * k0
        hi = min((m - 1) * k0 + ki, n - 1)
        idx = np.arange(lo, hi + 1)
        v = idx - (m - 1) * k0
        u = idx - m * k0
        p_a = F[v] - F[k0]
        p_b = F[u]
        out[idx] = base + qn * (p_a + p_b - p_a * p_b)
        if hi < (m - 1) * k0 + ki:
            break  # I0 truncated by the grid end
        # window-end value (v = ki, u = ki - k0)
        p_a_end = F[ki] - F[k0]
        p_b_end = F[ki - k0]
        base = base + qn * (p_a_end + p_b_end - p_a_end * p_b_end)
        # I1(m): indices [(m-1)·k0 + ki, (m+1)·k0]
        lo1 = (m - 1) * k0 + ki
        hi1 = min((m + 1) * k0, n - 1)
        idx1 = np.arange(lo1, hi1 + 1)
        u1 = idx1 - m * k0
        out[idx1] = base + qn * q * (F[u1] - F[ki - k0])
        if hi1 < (m + 1) * k0:
            break
        base = base + qn * q * (F[k0] - F[ki - k0])
        qn *= q
        m += 1
    return out


def eq5_union_expectation(
    model: GriddedLatencyModel, t0: float, t_inf: float
) -> float:
    """``E_J`` implied by the union-decomposition ``F_J`` (printed Eq. 5).

    Computed as the normalised first moment of the reconstructed ``F_J``
    (the union form slightly over-counts mass, so the total increment can
    exceed the true success probability; normalising isolates the shape
    error the way the authors' numerical minimisation would have seen it).
    """
    f_j = union_cdf_of_j(model, t0, t_inf)
    d_f = np.diff(f_j)
    d_f = np.maximum(d_f, 0.0)
    mass = d_f.sum()
    if mass <= 0.0:
        return float("inf")
    mids = 0.5 * (model.times[:-1] + model.times[1:])
    return float(np.dot(mids, d_f) / mass)
