"""Burst-size selection: the smallest ``b`` meeting a performance target.

Table 2's diminishing returns imply a natural question the paper leaves
to the reader: *how many copies do I actually need?*  These helpers
answer it for an expectation target ("E_J below X seconds") and for a
deadline target ("q of jobs started within D seconds"), always returning
the cheapest burst size that works.
"""

from __future__ import annotations

from repro.core.distribution_of_j import multiple_survival, survival_to_quantile
from repro.core.model import GriddedLatencyModel
from repro.core.optimize import optimize_multiple
from repro.util.validation import check_in_range, check_positive

__all__ = ["smallest_b_for_expectation", "smallest_b_for_deadline"]


def smallest_b_for_expectation(
    model: GriddedLatencyModel,
    target_e_j: float,
    *,
    b_max: int = 64,
) -> tuple[int, float]:
    """Smallest burst size whose optimal ``E_J`` is below the target.

    Returns ``(b, e_j)``.

    Raises
    ------
    ValueError
        If even ``b_max`` copies cannot reach the target (it may sit
        below the latency floor — no amount of redundancy helps).
    """
    check_positive("target_e_j", target_e_j)
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    for b in range(1, b_max + 1):
        opt = optimize_multiple(model, b)
        if opt.e_j <= target_e_j:
            return b, opt.e_j
    raise ValueError(
        f"target E_J = {target_e_j:g}s unreachable with b <= {b_max} "
        f"(best achieved: {opt.e_j:.1f}s — the latency floor may be higher "
        "than the target)"
    )


def smallest_b_for_deadline(
    model: GriddedLatencyModel,
    deadline: float,
    quantile: float = 0.95,
    *,
    b_max: int = 64,
) -> tuple[int, float]:
    """Smallest burst size starting ``quantile`` of jobs within ``deadline``.

    The per-``b`` timeout is the ``E_J``-optimal one (as a user would
    deploy); returns ``(b, achieved_quantile_latency)``.
    """
    check_positive("deadline", deadline)
    check_in_range("quantile", quantile, 0.0, 1.0, inclusive=(False, False))
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    best = float("inf")
    for b in range(1, b_max + 1):
        opt = optimize_multiple(model, b)
        surv = multiple_survival(model, b, opt.t_inf)
        try:
            q_latency = survival_to_quantile(model, surv, quantile)
        except ValueError:
            continue  # quantile beyond the grid for this b
        best = min(best, q_latency)
        if q_latency <= deadline:
            return b, q_latency
    raise ValueError(
        f"deadline {deadline:g}s at quantile {quantile:g} unreachable with "
        f"b <= {b_max} (best achieved: {best:.1f}s)"
    )
