"""The §7 strategy-cost criterion (Eq. 6).

A strategy that keeps ``N_//`` copies in flight but finishes a factor
``> N_//`` sooner *reduces* the total grid load (Fig. 7's argument), so
the paper defines::

    Δcost = N_// · E_J(strategy) / E_J(single resubmission, b=1)

``Δcost = 1`` for the optimal single resubmission by construction;
``Δcost < 1`` marks strategies that are simultaneously faster for the user
and lighter for the infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import n_parallel_for_latency

__all__ = ["delta_cost", "CostPoint", "cost_curve_multiple", "cost_curve_delayed"]


def delta_cost(n_parallel: float, e_j: float, e_j_single: float) -> float:
    """Eq. (6): ``Δcost = N_// · E_J / E_J(single, optimal)``.

    Parameters
    ----------
    n_parallel:
        Mean number of identical copies in the system (``N_//``).
    e_j:
        Expected total latency of the evaluated strategy (s).
    e_j_single:
        Expected total latency of the optimal single resubmission (s) —
        the normalising reference whose cost is 1 by definition.
    """
    if e_j_single <= 0:
        raise ValueError(f"e_j_single must be > 0, got {e_j_single!r}")
    if n_parallel < 1.0 - 1e-12:
        raise ValueError(f"n_parallel must be >= 1, got {n_parallel!r}")
    return float(n_parallel) * float(e_j) / float(e_j_single)


@dataclass(frozen=True)
class CostPoint:
    """One point of a cost curve (Fig. 8 / Table 4).

    Attributes
    ----------
    n_parallel:
        Mean number of parallel copies (x axis of Fig. 8).
    e_j:
        Minimal expected total latency achieved at this configuration (s).
    cost:
        ``Δcost`` of Eq. (6).
    params:
        Strategy parameters achieving the point (``t_inf`` or
        ``(t0, t_inf)``).
    """

    n_parallel: float
    e_j: float
    cost: float
    params: dict


def cost_curve_multiple(
    model: GriddedLatencyModel,
    b_values: list[int],
    e_j_single: float,
) -> list[CostPoint]:
    """Δcost of the optimal multiple submission for each burst size.

    For burst submission the paper takes ``N_// = b``; each point uses the
    timeout minimising ``E_J`` for that ``b``.
    """
    from repro.core.optimize import optimize_multiple  # local import: cycle

    points = []
    for b in b_values:
        opt = optimize_multiple(model, b)
        points.append(
            CostPoint(
                n_parallel=float(b),
                e_j=opt.e_j,
                cost=delta_cost(float(b), opt.e_j, e_j_single),
                params={"b": b, "t_inf": opt.t_inf},
            )
        )
    return points


def cost_curve_delayed(
    model: GriddedLatencyModel,
    ratios: list[float],
    e_j_single: float,
) -> list[CostPoint]:
    """Δcost of the ratio-constrained delayed strategy (Table 4, left).

    For each imposed ratio ``t∞/t0``, ``(t0, t∞)`` minimising ``E_J`` is
    found; ``N_//`` is the paper's plug-in value at ``l = E_J``.  All
    ratios share one batched surface evaluation (see
    :func:`repro.core.optimize.optimize_delayed_ratio_sweep`).
    """
    from repro.core.optimize import optimize_delayed_ratio_sweep  # local import: cycle

    points = []
    for ratio, opt in zip(ratios, optimize_delayed_ratio_sweep(model, ratios)):
        n_par = float(n_parallel_for_latency(opt.e_j, opt.t0, opt.t_inf))
        points.append(
            CostPoint(
                n_parallel=n_par,
                e_j=opt.e_j,
                cost=delta_cost(n_par, opt.e_j, e_j_single),
                params={"t0": opt.t0, "t_inf": opt.t_inf, "ratio": ratio},
            )
        )
    return points
