"""Latency models: a distribution plus a fault ratio, and its gridded form.

Paper §3: the latency ``R`` of a *successful* job follows a heavy-tailed
law ``F_R``; a fraction ``ρ`` of jobs are outliers (faults or latencies
beyond the probe timeout) that never start.  All strategy formulas operate
on the sub-distribution::

    F̃_R(t) = P(R < t) = (1 - ρ)·F_R(t)

which is *not* a cdf (it converges to ``1-ρ``), and on its density
``f̃_R = (1-ρ)·f_R``.

:class:`GriddedLatencyModel` tabulates ``F̃`` and its cumulative integrals
on a uniform grid so that every timeout sweep in :mod:`repro.core.strategies`
is a vectorised O(n) pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.distributions.base import LatencyDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.util.grids import TimeGrid
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_probability

__all__ = ["LatencyModel", "GriddedLatencyModel"]


@dataclass(frozen=True)
class LatencyModel:
    """A latency distribution paired with an outlier (fault) ratio ``ρ``.

    Parameters
    ----------
    distribution:
        Law of the latency of non-outlier jobs (``F_R``).
    rho:
        Probability that a submitted job is an outlier — it faults or
        exceeds the measurement timeout and never starts (``ρ`` in §3).
    name:
        Optional label (e.g. the trace-set week ``"2006-IX"``).
    """

    distribution: LatencyDistribution
    rho: float = 0.0
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.distribution, LatencyDistribution):
            raise TypeError(
                "distribution must be a LatencyDistribution, got "
                f"{type(self.distribution).__name__}"
            )
        check_probability("rho", self.rho)
        if self.rho >= 1.0:
            raise ValueError("rho must be < 1: some jobs must succeed")

    # -- sub-distribution ------------------------------------------------

    def f_tilde(self, t):
        """Sub-density ``f̃_R(t) = (1-ρ)·f_R(t)``."""
        return (1.0 - self.rho) * np.asarray(self.distribution.pdf(t))

    def F_tilde(self, t):
        """Sub-cdf ``F̃_R(t) = (1-ρ)·F_R(t) = P(R < t)``."""
        return (1.0 - self.rho) * np.asarray(self.distribution.cdf(t))

    def survival(self, t):
        """``P(R > t) = 1 - F̃_R(t)`` (includes the outlier mass ρ)."""
        return 1.0 - self.F_tilde(t)

    # -- sampling ----------------------------------------------------------

    def sample_latencies(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw raw latencies; outliers are returned as ``+inf``.

        This is the generative counterpart of ``F̃``: with probability
        ``ρ`` a job never starts (infinite latency), otherwise its latency
        is drawn from the distribution.
        """
        gen = as_rng(rng)
        out = self.distribution.rvs(size, gen)
        if self.rho > 0.0:
            outliers = gen.random(size) < self.rho
            out = np.where(outliers, np.inf, out)
        return out

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        latencies: np.ndarray,
        *,
        n_outliers: int = 0,
        name: str = "",
        smooth: bool = True,
    ) -> "LatencyModel":
        """Build an empirical model from observed trace latencies.

        Parameters
        ----------
        latencies:
            Latencies of jobs that *did* start (seconds).  Non-finite
            entries are treated as outliers and removed (counted into
            ``ρ`` on top of ``n_outliers``).
        n_outliers:
            Number of additional jobs that faulted or timed out without
            starting.  ``ρ`` is estimated as
            ``outliers / (outliers + successes)``.
        name:
            Label for reports.
        smooth:
            Passed through to :class:`EmpiricalDistribution`.
        """
        arr = np.asarray(latencies, dtype=np.float64).ravel()
        finite = arr[np.isfinite(arr)]
        extra_outliers = int(arr.size - finite.size)
        if n_outliers < 0:
            raise ValueError(f"n_outliers must be >= 0, got {n_outliers}")
        total_outliers = n_outliers + extra_outliers
        total = finite.size + total_outliers
        if finite.size == 0:
            raise ValueError("need at least one finite latency sample")
        rho = total_outliers / total
        return cls(
            distribution=EmpiricalDistribution(finite, smooth=smooth),
            rho=float(rho),
            name=name,
        )

    # -- gridding ------------------------------------------------------

    def on_grid(self, grid: TimeGrid | None = None) -> "GriddedLatencyModel":
        """Tabulate ``F̃`` on a uniform grid for vectorised evaluation."""
        return GriddedLatencyModel(self, grid or TimeGrid())

    def describe(self) -> str:
        """One-line report."""
        label = self.name or "latency model"
        return f"{label}: rho={self.rho:.4f}, R ~ {self.distribution.describe()}"


class GriddedLatencyModel:
    """``F̃_R`` tabulated on a :class:`TimeGrid` with cached integrals.

    Precomputes, on grid times ``t_k``:

    * ``F[k] = F̃(t_k)`` and ``S[k] = 1 - F[k]``;
    * ``A[k] = ∫₀^{t_k} (1-F̃(u)) du`` — the numerator of Eq. (1);
    * ``M1[k] = ∫₀^{t_k} u·f̃(u) du`` and ``M2[k] = ∫₀^{t_k} u²·f̃(u) du`` —
      the truncated moments entering Eq. (2).

    With those arrays, an exhaustive sweep of single-resubmission
    expectations over *all* candidate timeouts is one vector division,
    per the HPC guidance of vectorising sweeps rather than looping.
    """

    def __init__(self, model: LatencyModel, grid: TimeGrid) -> None:
        if not isinstance(model, LatencyModel):
            raise TypeError(f"model must be a LatencyModel, got {type(model).__name__}")
        if not isinstance(grid, TimeGrid):
            raise TypeError(f"grid must be a TimeGrid, got {type(grid).__name__}")
        self.model = model
        self.grid = grid
        # per-t0 rows of the delayed E_J surface, filled lazily by
        # repro.core.strategies.delayed.delayed_expectation_surface so that
        # repeated optimiser calls on the same model reuse each other's work.
        # Keyed by the t0 grid index; values are the band arrays over the
        # feasible t∞ indices. Bounded by _DELAYED_CACHE_BUDGET (see delayed.py).
        self._delayed_band_cache: dict[int, np.ndarray] = {}
        self._delayed_band_cache_floats = 0

    # -- cached tabulations --------------------------------------------

    @cached_property
    def times(self) -> np.ndarray:
        """Grid times (seconds)."""
        return self.grid.times

    @cached_property
    def F(self) -> np.ndarray:
        """``F̃(t_k)`` — monotone, in ``[0, 1-ρ]``."""
        vals = np.asarray(self.model.F_tilde(self.times), dtype=np.float64)
        # enforce monotonicity against tiny numerical wiggles in cdf backends
        return np.maximum.accumulate(np.clip(vals, 0.0, 1.0))

    @cached_property
    def S(self) -> np.ndarray:
        """Survival ``1 - F̃(t_k)``."""
        return 1.0 - self.F

    @cached_property
    def f(self) -> np.ndarray:
        """Sub-density ``f̃(t_k)`` (finite-difference of ``F`` for robustness)."""
        return np.maximum(self.grid.derivative(self.F), 0.0)

    @cached_property
    def A(self) -> np.ndarray:
        """``∫₀^{t_k} (1 - F̃)`` — cumulative survival integral."""
        return self.grid.cumint(self.S)

    @cached_property
    def A1(self) -> np.ndarray:
        """``∫₀^{t_k} u (1 - F̃(u)) du`` — first survival moment."""
        return self.grid.cumint(self.times * self.S)

    @cached_property
    def M1(self) -> np.ndarray:
        """``∫₀^{t_k} u f̃(u) du`` via integration by parts (``A - t·S``).

        Using the survival integrals instead of a finite-difference
        density keeps every strategy formula exactly consistent with the
        Eq. (1) sweep on the same grid.
        """
        return self.A - self.times * self.S

    @cached_property
    def M2(self) -> np.ndarray:
        """``∫₀^{t_k} u² f̃(u) du`` via parts (``2·A1 - t²·S``)."""
        return 2.0 * self.A1 - self.times**2 * self.S

    # -- helpers ---------------------------------------------------------

    @property
    def rho(self) -> float:
        """Outlier ratio of the underlying model."""
        return self.model.rho

    @property
    def name(self) -> str:
        """Label of the underlying model."""
        return self.model.name

    def index_of(self, t: float) -> int:
        """Grid index nearest to time ``t``."""
        return self.grid.index_of(t)

    def F_at(self, t: float) -> float:
        """``F̃(t)`` at the grid point nearest ``t``."""
        return float(self.F[self.index_of(t)])

    def valid_timeout_indices(self, *, min_success: float = 1e-9) -> np.ndarray:
        """Indices of timeouts with ``F̃(t∞) > min_success``.

        A timeout below the first latency observation gives zero success
        probability per attempt and infinite expected total latency; these
        indices are excluded from optimisation sweeps.
        """
        return np.nonzero(self.F > min_success)[0]
