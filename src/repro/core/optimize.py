"""Timeout optimisation for the three strategies.

All optimisers are exhaustive vectorised sweeps over the model grid
(`integer-second timeouts, as in the paper §7.1`), optionally restricted
to a search window.  The delayed-strategy optimisers use a two-stage
coarse→fine sweep over ``t0`` because each ``t0`` candidate costs one O(n)
vector pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import delta_cost
from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import (
    delayed_expectation_for_t0,
    delayed_moments,
    n_parallel_for_latency,
)
from repro.core.strategies.multiple import (
    multiple_expectation_sweep,
    multiple_moments,
)
from repro.core.strategies.single import single_expectation_sweep, single_moments

__all__ = [
    "SingleOptimum",
    "DelayedOptimum",
    "optimize_single",
    "optimize_multiple",
    "optimize_delayed",
    "optimize_delayed_ratio",
    "optimize_delayed_cost",
]


@dataclass(frozen=True)
class SingleOptimum:
    """Optimal timeout for a one-parameter strategy (single / multiple).

    Attributes
    ----------
    t_inf:
        Optimal timeout (s).
    e_j:
        Minimal expected total latency (s).
    sigma_j:
        Standard deviation of the total latency at the optimum (s).
    """

    t_inf: float
    e_j: float
    sigma_j: float


@dataclass(frozen=True)
class DelayedOptimum:
    """Optimal ``(t0, t∞)`` for the delayed strategy.

    Attributes
    ----------
    t0, t_inf:
        Optimal delay and per-copy timeout (s).
    e_j, sigma_j:
        Moments of the total latency at the optimum (s).
    n_parallel:
        Paper-style ``N_//`` (piecewise §6.1 formula at ``l = E_J``).
    cost:
        ``Δcost`` when a single-resubmission reference was supplied,
        else ``nan``.
    """

    t0: float
    t_inf: float
    e_j: float
    sigma_j: float
    n_parallel: float
    cost: float = float("nan")


def _search_indices(
    model: GriddedLatencyModel,
    t_min: float | None,
    t_max: float | None,
) -> np.ndarray:
    grid = model.grid
    lo = 1 if t_min is None else max(1, grid.index_of(t_min))
    hi = grid.n - 1 if t_max is None else grid.index_of(t_max)
    if hi < lo:
        raise ValueError(f"empty search window [{t_min}, {t_max}]")
    return np.arange(lo, hi + 1)


def optimize_single(
    model: GriddedLatencyModel,
    *,
    t_min: float | None = None,
    t_max: float | None = None,
) -> SingleOptimum:
    """Minimise Eq. (1) over the timeout (paper §4).

    Parameters
    ----------
    model:
        Gridded latency model.
    t_min, t_max:
        Optional search window for ``t∞`` (defaults: whole grid).
    """
    idx = _search_indices(model, t_min, t_max)
    e = single_expectation_sweep(model)[idx]
    if not np.isfinite(e).any():
        raise ValueError("E_J is infinite over the whole search window")
    best = idx[int(np.argmin(e))]
    t_inf = model.grid.time_of(best)
    mom = single_moments(model, t_inf)
    return SingleOptimum(t_inf=t_inf, e_j=mom.expectation, sigma_j=mom.std)


def optimize_multiple(
    model: GriddedLatencyModel,
    b: int,
    *,
    t_min: float | None = None,
    t_max: float | None = None,
) -> SingleOptimum:
    """Minimise Eq. (3) over the timeout for burst size ``b`` (paper §5)."""
    idx = _search_indices(model, t_min, t_max)
    e = multiple_expectation_sweep(model, b)[idx]
    if not np.isfinite(e).any():
        raise ValueError("E_J is infinite over the whole search window")
    best = idx[int(np.argmin(e))]
    t_inf = model.grid.time_of(best)
    mom = multiple_moments(model, b, t_inf)
    return SingleOptimum(t_inf=t_inf, e_j=mom.expectation, sigma_j=mom.std)


def _delayed_t0_candidates(
    model: GriddedLatencyModel,
    t0_min: float | None,
    t0_max: float | None,
    coarse: int,
) -> tuple[np.ndarray, int]:
    grid = model.grid
    lo = 2 if t0_min is None else max(2, grid.index_of(t0_min))
    default_hi = grid.n - 1
    hi = default_hi if t0_max is None else min(default_hi, grid.index_of(t0_max))
    if hi < lo:
        raise ValueError(f"empty t0 window [{t0_min}, {t0_max}]")
    stride = max(1, coarse)
    return np.arange(lo, hi + 1, stride), stride


def _best_over_t0(
    model: GriddedLatencyModel,
    k0_values: np.ndarray,
    objective,
) -> tuple[int, int, float]:
    """Scan ``t0`` candidates, return (k0, k_inf, value) minimising objective.

    ``objective(k0) -> (values, ks)`` maps a ``t0`` index to objective
    values over its feasible ``t∞`` indices.
    """
    best = (None, None, np.inf)
    for k0 in k0_values:
        values, ks = objective(int(k0))
        if values.size == 0:
            continue
        j = int(np.nanargmin(values))
        if values[j] < best[2]:
            best = (int(k0), int(ks[j]), float(values[j]))
    if best[0] is None:
        raise ValueError("no feasible (t0, t_inf) in the search window")
    return best


def optimize_delayed(
    model: GriddedLatencyModel,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    coarse: int = 8,
    e_j_single: float | None = None,
) -> DelayedOptimum:
    """Globally minimise the delayed-strategy ``E_J`` over ``(t0, t∞)``.

    Two-stage search: a coarse sweep over ``t0`` (stride ``coarse`` grid
    steps, full vectorised ``t∞`` sweep for each), then a unit-stride
    refinement around the best coarse ``t0``.

    Parameters
    ----------
    model:
        Gridded latency model.
    t0_min, t0_max:
        Search window for ``t0`` (defaults: whole grid).
    coarse:
        Coarse-stage stride in grid steps (1 disables the second stage).
    e_j_single:
        Optional single-resubmission reference to also report ``Δcost``.
    """

    def objective(k0: int) -> tuple[np.ndarray, np.ndarray]:
        e = delayed_expectation_for_t0(model, k0)
        hi = min(2 * k0, model.grid.n - 1)
        ks = np.arange(k0, hi + 1)
        return e[ks], ks

    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, coarse)
    k0, k_inf, _ = _best_over_t0(model, candidates, objective)
    if stride > 1:
        lo = max(2, k0 - stride)
        hi = min(model.grid.n - 1, k0 + stride)
        k0, k_inf, _ = _best_over_t0(
            model, np.arange(lo, hi + 1), objective
        )
    t0 = model.grid.time_of(k0)
    t_inf = model.grid.time_of(k_inf)
    mom = delayed_moments(model, t0, t_inf)
    n_par = float(n_parallel_for_latency(mom.expectation, t0, t_inf))
    cost = (
        delta_cost(n_par, mom.expectation, e_j_single)
        if e_j_single is not None
        else float("nan")
    )
    return DelayedOptimum(
        t0=t0,
        t_inf=t_inf,
        e_j=mom.expectation,
        sigma_j=mom.std,
        n_parallel=n_par,
        cost=cost,
    )


def optimize_delayed_ratio(
    model: GriddedLatencyModel,
    ratio: float,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    e_j_single: float | None = None,
) -> DelayedOptimum:
    """Minimise delayed ``E_J`` with the ratio ``t∞/t0`` imposed (§6.2).

    ``t∞`` is tied to ``ratio·t0`` (rounded to the grid), so the sweep is
    one-dimensional over ``t0``.

    Parameters
    ----------
    ratio:
        Imposed ``t∞/t0`` in ``[1, 2]`` (Table 3 uses 1.1 … 2.0).
    """
    if not 1.0 <= ratio <= 2.0:
        raise ValueError(f"ratio must be in [1, 2], got {ratio!r}")

    def objective(k0: int) -> tuple[np.ndarray, np.ndarray]:
        k_inf = min(int(round(k0 * ratio)), model.grid.n - 1, 2 * k0)
        k_inf = max(k_inf, k0)
        e = delayed_expectation_for_t0(model, k0)
        return e[[k_inf]], np.array([k_inf])

    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, 4)
    k0, k_inf, _ = _best_over_t0(model, candidates, objective)
    if stride > 1:
        lo = max(2, k0 - stride)
        hi = min(model.grid.n - 1, k0 + stride)
        k0, k_inf, _ = _best_over_t0(model, np.arange(lo, hi + 1), objective)
    t0 = model.grid.time_of(k0)
    t_inf = model.grid.time_of(k_inf)
    mom = delayed_moments(model, t0, t_inf)
    n_par = float(n_parallel_for_latency(mom.expectation, t0, t_inf))
    cost = (
        delta_cost(n_par, mom.expectation, e_j_single)
        if e_j_single is not None
        else float("nan")
    )
    return DelayedOptimum(
        t0=t0,
        t_inf=t_inf,
        e_j=mom.expectation,
        sigma_j=mom.std,
        n_parallel=n_par,
        cost=cost,
    )


def optimize_delayed_cost(
    model: GriddedLatencyModel,
    e_j_single: float,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    coarse: int = 8,
) -> DelayedOptimum:
    """Minimise ``Δcost`` (not ``E_J``) over ``(t0, t∞)`` — §7.1 / Table 5.

    The paper finds e.g. ``Δcost = 0.93`` at ``t0 = 439 s, t∞ = 579 s`` on
    2006-IX, i.e. a configuration that both beats the single-resubmission
    latency and lowers the total grid load.

    Parameters
    ----------
    e_j_single:
        ``E_J`` of the optimal single resubmission on the same model (the
        Eq. 6 denominator).
    """
    if e_j_single <= 0:
        raise ValueError(f"e_j_single must be > 0, got {e_j_single!r}")

    def objective(k0: int) -> tuple[np.ndarray, np.ndarray]:
        e = delayed_expectation_for_t0(model, k0)
        hi = min(2 * k0, model.grid.n - 1)
        ks = np.arange(k0, hi + 1)
        e_win = e[ks]
        t0 = model.grid.time_of(k0)
        finite = np.isfinite(e_win)
        costs = np.full(e_win.shape, np.inf)
        if finite.any():
            n_par = n_parallel_for_latency(
                np.where(finite, e_win, 0.0), t0, model.times[ks]
            )
            costs = np.where(finite, n_par * e_win / e_j_single, np.inf)
        return costs, ks

    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, coarse)
    k0, k_inf, best_cost = _best_over_t0(model, candidates, objective)
    if stride > 1:
        lo = max(2, k0 - stride)
        hi = min(model.grid.n - 1, k0 + stride)
        k0, k_inf, best_cost = _best_over_t0(model, np.arange(lo, hi + 1), objective)
    t0 = model.grid.time_of(k0)
    t_inf = model.grid.time_of(k_inf)
    mom = delayed_moments(model, t0, t_inf)
    n_par = float(n_parallel_for_latency(mom.expectation, t0, t_inf))
    return DelayedOptimum(
        t0=t0,
        t_inf=t_inf,
        e_j=mom.expectation,
        sigma_j=mom.std,
        n_parallel=n_par,
        cost=float(best_cost),
    )
