"""Timeout optimisation for the three strategies.

All optimisers are exhaustive vectorised sweeps over the model grid
(`integer-second timeouts, as in the paper §7.1`), optionally restricted
to a search window.  The delayed-strategy optimisers run on the batched
surface kernel (:func:`repro.core.strategies.delayed.delayed_expectation_surface`):
every stage evaluates the whole feasible ``(t0, t∞)`` band for its block
of ``t0`` candidates in a few 2-D passes, and the per-``t0`` rows are
cached on the model so repeated optimiser calls (ratio sweeps, cost
frontiers, stability boxes) reuse each other's tabulations.  The
two-stage coarse→fine sweep over ``t0`` is kept: it bounds the work while
reproducing the exhaustive optimum on every model we regenerate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cost import delta_cost
from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import (
    _band_rows,
    delayed_cost_bands,
    delayed_expectation_bands,
    delayed_moments,
    n_parallel_for_latency,
)
from repro.core.strategies.multiple import (
    multiple_expectation_sweep,
    multiple_moments,
)
from repro.core.strategies.single import single_expectation_sweep, single_moments

__all__ = [
    "SingleOptimum",
    "DelayedOptimum",
    "optimize_single",
    "optimize_multiple",
    "optimize_delayed",
    "optimize_delayed_ratio",
    "optimize_delayed_ratio_sweep",
    "optimize_delayed_cost",
]


@dataclass(frozen=True)
class SingleOptimum:
    """Optimal timeout for a one-parameter strategy (single / multiple).

    Attributes
    ----------
    t_inf:
        Optimal timeout (s).
    e_j:
        Minimal expected total latency (s).
    sigma_j:
        Standard deviation of the total latency at the optimum (s).
    """

    t_inf: float
    e_j: float
    sigma_j: float


@dataclass(frozen=True)
class DelayedOptimum:
    """Optimal ``(t0, t∞)`` for the delayed strategy.

    Attributes
    ----------
    t0, t_inf:
        Optimal delay and per-copy timeout (s).
    e_j, sigma_j:
        Moments of the total latency at the optimum (s).
    n_parallel:
        Paper-style ``N_//`` (piecewise §6.1 formula at ``l = E_J``).
    cost:
        ``Δcost`` when a single-resubmission reference was supplied,
        else ``nan``.
    """

    t0: float
    t_inf: float
    e_j: float
    sigma_j: float
    n_parallel: float
    cost: float = float("nan")


def _search_indices(
    model: GriddedLatencyModel,
    t_min: float | None,
    t_max: float | None,
) -> np.ndarray:
    grid = model.grid
    lo = 1 if t_min is None else max(1, grid.index_of(t_min))
    hi = grid.n - 1 if t_max is None else grid.index_of(t_max)
    if hi < lo:
        raise ValueError(f"empty search window [{t_min}, {t_max}]")
    return np.arange(lo, hi + 1)


def optimize_single(
    model: GriddedLatencyModel,
    *,
    t_min: float | None = None,
    t_max: float | None = None,
) -> SingleOptimum:
    """Minimise Eq. (1) over the timeout (paper §4).

    Parameters
    ----------
    model:
        Gridded latency model.
    t_min, t_max:
        Optional search window for ``t∞`` (defaults: whole grid).
    """
    idx = _search_indices(model, t_min, t_max)
    e = single_expectation_sweep(model)[idx]
    if not np.isfinite(e).any():
        raise ValueError("E_J is infinite over the whole search window")
    best = idx[int(np.argmin(e))]
    t_inf = model.grid.time_of(best)
    mom = single_moments(model, t_inf)
    return SingleOptimum(t_inf=t_inf, e_j=mom.expectation, sigma_j=mom.std)


def optimize_multiple(
    model: GriddedLatencyModel,
    b: int,
    *,
    t_min: float | None = None,
    t_max: float | None = None,
) -> SingleOptimum:
    """Minimise Eq. (3) over the timeout for burst size ``b`` (paper §5)."""
    idx = _search_indices(model, t_min, t_max)
    e = multiple_expectation_sweep(model, b)[idx]
    if not np.isfinite(e).any():
        raise ValueError("E_J is infinite over the whole search window")
    best = idx[int(np.argmin(e))]
    t_inf = model.grid.time_of(best)
    mom = multiple_moments(model, b, t_inf)
    return SingleOptimum(t_inf=t_inf, e_j=mom.expectation, sigma_j=mom.std)


def _delayed_t0_candidates(
    model: GriddedLatencyModel,
    t0_min: float | None,
    t0_max: float | None,
    coarse: int,
) -> tuple[np.ndarray, int]:
    grid = model.grid
    lo = 2 if t0_min is None else max(2, grid.index_of(t0_min))
    default_hi = grid.n - 1
    hi = default_hi if t0_max is None else min(default_hi, grid.index_of(t0_max))
    if hi < lo:
        raise ValueError(f"empty t0 window [{t0_min}, {t0_max}]")
    stride = max(1, coarse)
    return np.arange(lo, hi + 1, stride), stride





def _best_over_t0(
    model: GriddedLatencyModel,
    k0_values: np.ndarray,
    objective,
) -> tuple[int, int, float]:
    """Scan ``t0`` candidates, return (k0, k_inf, value) minimising objective.

    ``objective(k0) -> (values, ks)`` maps a ``t0`` index to objective
    values over its feasible ``t∞`` indices.  Candidates whose objective is
    NaN everywhere (degenerate models, empty windows) are skipped rather
    than crashing ``np.nanargmin``.
    """
    best = (None, None, np.inf)
    for k0 in k0_values:
        values, ks = objective(int(k0))
        if values.size == 0 or np.isnan(values).all():
            continue
        j = int(np.nanargmin(values))
        if values[j] < best[2]:
            best = (int(k0), int(ks[j]), float(values[j]))
    if best[0] is None:
        raise ValueError("no feasible (t0, t_inf) in the search window")
    return best


def _best_in_rect(
    rect: np.ndarray, k0_values: np.ndarray
) -> tuple[int, int, float]:
    """Global minimiser of an inf-padded objective rectangle.

    Ties resolve to the smallest ``t0`` then smallest ``t∞``, matching the
    scan order of :func:`_best_over_t0`.  Rectangle entries are finite or
    ``+inf`` by construction (infeasible cells are masked to ``+inf``).
    """
    flat = int(np.argmin(rect))
    i, j = divmod(flat, rect.shape[1])
    value = float(rect[i, j])
    if not np.isfinite(value):
        raise ValueError("no feasible (t0, t_inf) in the search window")
    k0 = int(k0_values[i])
    return k0, k0 + j, value


def optimize_delayed(
    model: GriddedLatencyModel,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    coarse: int = 8,
    e_j_single: float | None = None,
) -> DelayedOptimum:
    """Globally minimise the delayed-strategy ``E_J`` over ``(t0, t∞)``.

    Two-stage search: a coarse sweep over ``t0`` (stride ``coarse`` grid
    steps, whole feasible ``t∞`` band per candidate, all candidates in one
    batched surface evaluation), then a unit-stride refinement around the
    best coarse ``t0``.

    Parameters
    ----------
    model:
        Gridded latency model.
    t0_min, t0_max:
        Search window for ``t0`` (defaults: whole grid).
    coarse:
        Coarse-stage stride in grid steps (1 disables the second stage).
    e_j_single:
        Optional single-resubmission reference to also report ``Δcost``.
    """
    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, coarse)
    rect, _ = delayed_expectation_bands(model, candidates)
    k0, k_inf, _val = _best_in_rect(rect, candidates)
    if stride > 1:
        lo = max(2, k0 - stride)
        hi = min(model.grid.n - 1, k0 + stride)
        fine = np.arange(lo, hi + 1)
        rect, _ = delayed_expectation_bands(model, fine)
        k0, k_inf, _val = _best_in_rect(rect, fine)
    t0 = model.grid.time_of(k0)
    t_inf = model.grid.time_of(k_inf)
    mom = delayed_moments(model, t0, t_inf)
    n_par = float(n_parallel_for_latency(mom.expectation, t0, t_inf))
    cost = (
        delta_cost(n_par, mom.expectation, e_j_single)
        if e_j_single is not None
        else float("nan")
    )
    return DelayedOptimum(
        t0=t0,
        t_inf=t_inf,
        e_j=mom.expectation,
        sigma_j=mom.std,
        n_parallel=n_par,
        cost=cost,
    )


def _ratio_k_inf(model: GriddedLatencyModel, k0v: np.ndarray, ratio: float) -> np.ndarray:
    """Grid index of ``ratio·t0`` clipped to the feasible band (per ``t0``)."""
    k_inf = np.minimum(np.rint(k0v * ratio).astype(np.intp), model.grid.n - 1)
    k_inf = np.minimum(k_inf, 2 * k0v)
    return np.maximum(k_inf, k0v)


def _finish_delayed(
    model: GriddedLatencyModel,
    k0: int,
    k_inf: int,
    e_j_single: float | None,
    cost: float | None = None,
) -> DelayedOptimum:
    """Assemble a :class:`DelayedOptimum` from winning grid indices."""
    t0 = model.grid.time_of(k0)
    t_inf = model.grid.time_of(k_inf)
    mom = delayed_moments(model, t0, t_inf)
    n_par = float(n_parallel_for_latency(mom.expectation, t0, t_inf))
    if cost is None:
        cost = (
            delta_cost(n_par, mom.expectation, e_j_single)
            if e_j_single is not None
            else float("nan")
        )
    return DelayedOptimum(
        t0=t0,
        t_inf=t_inf,
        e_j=mom.expectation,
        sigma_j=mom.std,
        n_parallel=n_par,
        cost=float(cost),
    )


def optimize_delayed_ratio(
    model: GriddedLatencyModel,
    ratio: float,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    e_j_single: float | None = None,
) -> DelayedOptimum:
    """Minimise delayed ``E_J`` with the ratio ``t∞/t0`` imposed (§6.2).

    ``t∞`` is tied to ``ratio·t0`` (rounded to the grid), so the sweep is
    one-dimensional over ``t0``.

    Parameters
    ----------
    ratio:
        Imposed ``t∞/t0`` in ``[1, 2]`` (Table 3 uses 1.1 … 2.0).
    """
    (opt,) = optimize_delayed_ratio_sweep(
        model, (ratio,), t0_min=t0_min, t0_max=t0_max, e_j_single=e_j_single
    )
    return opt


def optimize_delayed_ratio_sweep(
    model: GriddedLatencyModel,
    ratios,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    e_j_single: float | None = None,
) -> list[DelayedOptimum]:
    """Ratio-constrained optima for many imposed ratios from one surface.

    The coarse ``t0`` candidate set is shared by every ratio, so the whole
    Table 3 / Table 4 sweep costs a single batched surface evaluation plus
    one thin refinement per ratio (which itself reuses cached rows).
    """
    ratios = list(ratios)
    for ratio in ratios:
        if not 1.0 <= ratio <= 2.0:
            raise ValueError(f"ratio must be in [1, 2], got {ratio!r}")

    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, 4)
    rect, _ = delayed_expectation_bands(model, candidates)

    def objective_for(ratio: float):
        def objective(k0: int) -> tuple[np.ndarray, np.ndarray]:
            k_inf = int(_ratio_k_inf(model, np.array([k0]), ratio)[0])
            (row,) = _band_rows(model, [k0])
            return row[[k_inf - k0]], np.array([k_inf])

        return objective

    out = []
    for ratio in ratios:
        k_inf_v = _ratio_k_inf(model, candidates, ratio)
        values = rect[np.arange(len(candidates)), k_inf_v - candidates]
        best_i = int(np.argmin(values))  # band rows are finite or +inf
        if not np.isfinite(values[best_i]):
            raise ValueError("no feasible (t0, t_inf) in the search window")
        k0, k_inf = int(candidates[best_i]), int(k_inf_v[best_i])
        if stride > 1:
            lo = max(2, k0 - stride)
            hi = min(model.grid.n - 1, k0 + stride)
            k0, k_inf, _ = _best_over_t0(
                model, np.arange(lo, hi + 1), objective_for(ratio)
            )
        out.append(_finish_delayed(model, k0, k_inf, e_j_single))
    return out


def optimize_delayed_cost(
    model: GriddedLatencyModel,
    e_j_single: float,
    *,
    t0_min: float | None = None,
    t0_max: float | None = None,
    coarse: int = 8,
) -> DelayedOptimum:
    """Minimise ``Δcost`` (not ``E_J``) over ``(t0, t∞)`` — §7.1 / Table 5.

    The paper finds e.g. ``Δcost = 0.93`` at ``t0 = 439 s, t∞ = 579 s`` on
    2006-IX, i.e. a configuration that both beats the single-resubmission
    latency and lowers the total grid load.

    Parameters
    ----------
    e_j_single:
        ``E_J`` of the optimal single resubmission on the same model (the
        Eq. 6 denominator).
    """
    if e_j_single <= 0:
        raise ValueError(f"e_j_single must be > 0, got {e_j_single!r}")

    def cost_rect(k0_values: np.ndarray) -> np.ndarray:
        costs, _n_par = delayed_cost_bands(model, k0_values, e_j_single)
        return costs

    candidates, stride = _delayed_t0_candidates(model, t0_min, t0_max, coarse)
    k0, k_inf, best_cost = _best_in_rect(cost_rect(candidates), candidates)
    if stride > 1:
        lo = max(2, k0 - stride)
        hi = min(model.grid.n - 1, k0 + stride)
        fine = np.arange(lo, hi + 1)
        k0, k_inf, best_cost = _best_in_rect(cost_rect(fine), fine)
    return _finish_delayed(model, k0, k_inf, None, cost=best_cost)
