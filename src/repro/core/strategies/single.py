"""Single resubmission strategy (paper §4, Eqs. 1–2).

The job is submitted; if it has not started after ``t∞`` seconds it is
cancelled and resubmitted, iterating until an attempt starts before its
timeout.  With per-attempt success probability ``p = F̃(t∞)``, the number
of failed attempts is geometric and the total latency is::

    J = K·t∞ + R_final ,   K ~ Geometric(p),  R_final ~ f̃ | R < t∞

which yields Eq. (1) for ``E_J`` and (after expanding ``E[J²]``) Eq. (2)
for ``σ_J``.  Both are evaluated here for *all* candidate timeouts at once
from the cached cumulative integrals of the gridded model, making timeout
optimisation a single vectorised pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.base import Strategy, StrategyMoments
from repro.util.validation import check_positive

__all__ = [
    "SingleResubmission",
    "single_expectation_sweep",
    "single_std_sweep",
    "single_moments",
]


def single_expectation_sweep(model: GriddedLatencyModel) -> np.ndarray:
    """``E_J(t∞)`` for every grid timeout (Eq. 1), vectorised.

    Entries where ``F̃(t∞) = 0`` (timeout below any observed latency —
    every attempt fails) are ``+inf``.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        e = model.A / model.F
    e = np.where(model.F > 0.0, e, np.inf)
    e[0] = np.inf  # t∞ = 0 is not a usable timeout
    return e


def single_std_sweep(model: GriddedLatencyModel) -> np.ndarray:
    """``σ_J(t∞)`` for every grid timeout (Eq. 2), vectorised.

    Derived from the geometric-sum decomposition of ``J`` (see module
    docstring); algebraically identical to the paper's printed Eq. (2) —
    the identity is covered by a property test.
    """
    t = model.times
    p = model.F
    q = model.S
    m1 = model.M1
    m2 = model.M2
    with np.errstate(divide="ignore", invalid="ignore"):
        e_j = (t * q + m1) / p
        e_j2 = (t**2) * q * (1.0 + q) / p**2 + 2.0 * t * q * m1 / p**2 + m2 / p
        var = e_j2 - e_j**2
    var = np.where(p > 0.0, np.maximum(var, 0.0), np.inf)
    var[0] = np.inf
    return np.sqrt(var)


def single_moments(model: GriddedLatencyModel, t_inf: float) -> StrategyMoments:
    """``E_J`` and ``σ_J`` at one timeout value."""
    k = model.index_of(t_inf)
    p = float(model.F[k])
    if p <= 0.0:
        return StrategyMoments(expectation=float("inf"), std=float("inf"))
    t = model.times[k]
    q = 1.0 - p
    m1 = float(model.M1[k])
    m2 = float(model.M2[k])
    e_j = (t * q + m1) / p
    e_j2 = (t**2) * q * (1.0 + q) / p**2 + 2.0 * t * q * m1 / p**2 + m2 / p
    return StrategyMoments(
        expectation=e_j, std=float(np.sqrt(max(0.0, e_j2 - e_j**2)))
    )


@dataclass(frozen=True, repr=False)
class SingleResubmission(Strategy):
    """Cancel-and-resubmit at timeout ``t∞`` (paper §4).

    Parameters
    ----------
    t_inf:
        Timeout after which the pending job is cancelled and resubmitted
        (seconds).
    """

    t_inf: float
    name = "single"

    def __post_init__(self) -> None:
        check_positive("t_inf", self.t_inf)

    def moments(self, model: GriddedLatencyModel) -> StrategyMoments:
        return single_moments(model, self.t_inf)

    def mean_parallel_jobs(self, model: GriddedLatencyModel) -> float:
        """Exactly one copy is ever in the system."""
        return 1.0

    def describe(self) -> str:
        return f"single resubmission (t_inf={self.t_inf:g}s)"
