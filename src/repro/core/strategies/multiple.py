"""Multiple (burst) submission strategy (paper §5, Eqs. 3–4).

For each task, ``b`` identical copies are submitted at once; as soon as
one starts running the others are cancelled.  If none starts before
``t∞``, the whole collection is cancelled and resubmitted.  The minimum of
``b`` i.i.d. latencies has sub-cdf::

    B(t) = 1 - (1 - F̃(t))^b

so Eqs. (3)–(4) are Eqs. (1)–(2) with ``F̃ → B`` — implemented here by
reusing the geometric-sum moments with the batch survival ``S^b`` and the
batch sub-density ``b·S^(b-1)·f̃``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.base import Strategy, StrategyMoments
from repro.util.validation import check_positive

__all__ = [
    "MultipleSubmission",
    "multiple_expectation_sweep",
    "multiple_std_sweep",
    "multiple_moments",
]


def _batch_arrays(
    model: GriddedLatencyModel, b: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batch survival ``S^b``, its cumulative integral and moment integrals.

    The truncated moments of the batch minimum are obtained by parts from
    the survival integrals (``m1 = A_b - t·S^b``, ``m2 = 2·∫u·S^b - t²·S^b``)
    so they stay exactly consistent with the Eq. (3) sweep.
    """
    if b < 1:
        raise ValueError(f"burst size b must be >= 1, got {b}")
    surv_b = model.S**b
    a_b = model.grid.cumint(surv_b)
    t = model.times
    m1_b = a_b - t * surv_b
    m2_b = 2.0 * model.grid.cumint(t * surv_b) - t**2 * surv_b
    return surv_b, a_b, m1_b, m2_b


def multiple_expectation_sweep(model: GriddedLatencyModel, b: int) -> np.ndarray:
    """``E_J(t∞)`` for burst size ``b`` at every grid timeout (Eq. 3)."""
    surv_b, a_b, _m1, _m2 = _batch_arrays(model, b)
    p = 1.0 - surv_b
    with np.errstate(divide="ignore", invalid="ignore"):
        e = a_b / p
    e = np.where(p > 0.0, e, np.inf)
    e[0] = np.inf
    return e


def multiple_std_sweep(model: GriddedLatencyModel, b: int) -> np.ndarray:
    """``σ_J(t∞)`` for burst size ``b`` at every grid timeout (Eq. 4)."""
    surv_b, _a_b, m1, m2 = _batch_arrays(model, b)
    t = model.times
    p = 1.0 - surv_b
    q = surv_b
    with np.errstate(divide="ignore", invalid="ignore"):
        e_j = (t * q + m1) / p
        e_j2 = (t**2) * q * (1.0 + q) / p**2 + 2.0 * t * q * m1 / p**2 + m2 / p
        var = e_j2 - e_j**2
    var = np.where(p > 0.0, np.maximum(var, 0.0), np.inf)
    var[0] = np.inf
    return np.sqrt(var)


def multiple_moments(
    model: GriddedLatencyModel, b: int, t_inf: float
) -> StrategyMoments:
    """``E_J`` and ``σ_J`` for burst size ``b`` at one timeout."""
    k = model.index_of(t_inf)
    surv_b, _a_b, m1_b, m2_b = _batch_arrays(model, b)
    p = float(1.0 - surv_b[k])
    if p <= 0.0:
        return StrategyMoments(expectation=float("inf"), std=float("inf"))
    t = model.times[k]
    q = 1.0 - p
    m1 = float(m1_b[k])
    m2 = float(m2_b[k])
    e_j = (t * q + m1) / p
    e_j2 = (t**2) * q * (1.0 + q) / p**2 + 2.0 * t * q * m1 / p**2 + m2 / p
    return StrategyMoments(
        expectation=e_j, std=float(np.sqrt(max(0.0, e_j2 - e_j**2)))
    )


@dataclass(frozen=True, repr=False)
class MultipleSubmission(Strategy):
    """Burst of ``b`` copies with collective timeout ``t∞`` (paper §5).

    Parameters
    ----------
    b:
        Number of identical copies submitted per burst (``b >= 1``;
        ``b = 1`` degenerates to single resubmission).
    t_inf:
        Collective timeout: if no copy started, the burst is cancelled
        and resubmitted (seconds).
    """

    b: int
    t_inf: float
    name = "multiple"

    def __post_init__(self) -> None:
        if int(self.b) != self.b or self.b < 1:
            raise ValueError(f"b must be a positive integer, got {self.b!r}")
        object.__setattr__(self, "b", int(self.b))
        check_positive("t_inf", self.t_inf)

    def moments(self, model: GriddedLatencyModel) -> StrategyMoments:
        return multiple_moments(model, self.b, self.t_inf)

    def mean_parallel_jobs(self, model: GriddedLatencyModel) -> float:
        """The paper counts ``N_// = b`` for burst submission (§7)."""
        return float(self.b)

    def describe(self) -> str:
        return f"multiple submission (b={self.b}, t_inf={self.t_inf:g}s)"
