"""Common strategy interface and result container."""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.model import GriddedLatencyModel, LatencyModel
from repro.util.grids import TimeGrid

__all__ = ["Strategy", "StrategyMoments"]


@dataclass(frozen=True)
class StrategyMoments:
    """First two moments of the total latency ``J`` under a strategy.

    Attributes
    ----------
    expectation:
        ``E_J`` — expected total latency including resubmissions (s).
    std:
        ``σ_J`` — standard deviation of the total latency (s).
    """

    expectation: float
    std: float


class Strategy(abc.ABC):
    """A parameterised client-side submission strategy.

    Concrete strategies are immutable parameter holders; all computation
    is delegated to the vectorised sweep functions so that optimisers and
    single-point evaluations share one code path.
    """

    #: short machine name, e.g. ``"single"``
    name: str = "strategy"

    @abc.abstractmethod
    def moments(self, model: GriddedLatencyModel) -> StrategyMoments:
        """``E_J`` and ``σ_J`` under this strategy for the given model."""

    @abc.abstractmethod
    def mean_parallel_jobs(self, model: GriddedLatencyModel) -> float:
        """Average number of identical jobs in the system (``N_//``).

        Per the paper: 1 for single resubmission, ``b`` for multiple
        submission, and the §6.1 piecewise value at ``l = E_J`` for the
        delayed strategy.
        """

    def expectation(self, model: GriddedLatencyModel) -> float:
        """``E_J`` only (convenience)."""
        return self.moments(model).expectation

    def delta_cost(
        self, model: GriddedLatencyModel, single_reference: float
    ) -> float:
        """Eq. (6): ``Δcost = N_// · E_J / E_J(single resub., optimal)``.

        Parameters
        ----------
        model:
            Gridded latency model.
        single_reference:
            ``E_J`` of the optimal single-resubmission strategy on the
            same model (the denominator of Eq. 6).
        """
        if single_reference <= 0:
            raise ValueError(
                f"single_reference must be > 0, got {single_reference!r}"
            )
        return (
            self.mean_parallel_jobs(model)
            * self.expectation(model)
            / single_reference
        )

    def gridded(
        self, model: LatencyModel | GriddedLatencyModel, grid: TimeGrid | None = None
    ) -> GriddedLatencyModel:
        """Coerce a model to its gridded form."""
        if isinstance(model, GriddedLatencyModel):
            return model
        return model.on_grid(grid)

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line human-readable description."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
