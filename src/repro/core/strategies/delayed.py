"""Delayed resubmission strategy (paper §6, Eq. 5 and §6.1).

A single job is submitted at ``t = 0``.  Every ``t0`` seconds a fresh copy
is submitted (job *k* at ``(k-1)·t0``) and every copy is cancelled when it
reaches age ``t∞``, so with ``t0 <= t∞ <= 2·t0`` at most two copies are in
flight.  The process stops when any copy starts running.

Writing ``q = 1 - F̃(t∞)`` and observing that copies are independent, the
survival function of the total latency ``J`` is piecewise explicit:

* ``t ∈ [0, t0)``:  ``P(J>t) = 1 - F̃(t)``
* ``t ∈ I0(n) = [n·t0, (n-1)·t0 + t∞)``:
  ``P(J>t) = q^(n-1) · (1-F̃(t-(n-1)t0)) · (1-F̃(t-n·t0))``  (two copies live)
* ``t ∈ I1(n) = [(n-1)·t0 + t∞, (n+1)·t0)``:
  ``P(J>t) = q^n · (1-F̃(t-n·t0))``  (one copy live)

Integrating ``E_J = ∫ P(J>t) dt`` and summing the geometric series gives
the compact closed form used here::

    E_J(t0, t∞) = ∫₀^{t0} S(u)du
                + (1/p)·∫_{t0}^{t∞} S(v)·S(v-t0) dv
                + (q/p)·∫_{t∞-t0}^{t0} S(u) du

with ``S = 1-F̃``, ``p = F̃(t∞)``.  This is algebraically what Eq. (5)
*should* evaluate to; the printed Eq. (5) contains a union-bound slip
(see DESIGN.md errata) reproduced literally in
:mod:`repro.core.paper_equations` for comparison.  ``E[J²]`` (not given in
the paper) follows the same route via ``∫ 2t·P(J>t) dt``.

§6.1's number of parallel jobs ``N_//(l)`` is implemented exactly as the
paper's piecewise formula, plus the exact expectation ``E[N_//(J)]`` as an
extension.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import GriddedLatencyModel
from repro.core.strategies.base import Strategy, StrategyMoments
from repro.util.grids import cumulative_trapezoid
from repro.util.validation import check_positive

__all__ = [
    "DelayedResubmission",
    "delayed_cost_bands",
    "delayed_expectation_for_t0",
    "delayed_expectation_bands",
    "delayed_expectation_surface",
    "delayed_moments",
    "delayed_survival",
    "n_parallel_for_latency",
    "mean_parallel_exact",
]

#: rows per vectorised pass of the surface kernel — bounds the temporary
#: 2-D blocks to a few MB even on full-resolution grids
_BLOCK_ROWS = 128

#: total float64 budget of the per-model surface-row cache (~64 MB);
#: oldest rows are evicted first once it is exceeded
_DELAYED_CACHE_BUDGET = 8_000_000


def _validate_indices(model: GriddedLatencyModel, k0: int) -> None:
    n = model.grid.n
    if not 1 <= k0 < n:
        raise ValueError(f"t0 index {k0} outside grid (1..{n - 1})")


def delayed_expectation_for_t0(
    model: GriddedLatencyModel, k0: int
) -> np.ndarray:
    """``E_J`` for fixed ``t0`` (grid index ``k0``) at every valid ``t∞``.

    Returns a full-grid array; entries outside the feasible window
    ``t0 <= t∞ <= min(2·t0, t_max)`` or with ``F̃(t∞) = 0`` are ``+inf``.
    The computation is one shifted product and one cumulative sum — O(n)
    for the whole ``t∞`` sweep.

    This is the unbatched reference kernel (and the property-test oracle);
    sweeps over many ``t0`` values should go through
    :func:`delayed_expectation_surface`, which evaluates blocks of rows in
    shared 2-D passes and caches them on the model.
    """
    _validate_indices(model, k0)
    n = model.grid.n
    S = model.S
    out = np.full(n, np.inf)

    hi = min(2 * k0, n - 1)
    ks = np.arange(k0, hi + 1)

    # G0(v) = S(v)·S(v - t0) on v >= t0 ; ∫_{t0}^{t_k} G0 = c[k] - c[k0]
    g0 = np.zeros(n)
    g0[k0:] = S[k0:] * S[: n - k0]
    c = model.grid.cumint(g0)

    a = model.A
    term0 = a[k0]
    d = a[k0] - a[ks - k0]  # ∫_{t∞-t0}^{t0} S(u) du
    p = model.F[ks]
    q = S[ks]
    with np.errstate(divide="ignore", invalid="ignore"):
        vals = term0 + ((c[ks] - c[k0]) + q * d) / p
    vals = np.where(p > 0.0, vals, np.inf)
    out[ks] = vals
    return out


def _compute_band_block(
    model: GriddedLatencyModel, k0v: np.ndarray
) -> list[np.ndarray]:
    """Feasible-band ``E_J`` rows for a block of ``t0`` indices, batched.

    This is the vectorised core of :func:`delayed_expectation_surface`: it
    evaluates, in a few 2-D passes shared by the whole block, exactly what
    :func:`delayed_expectation_for_t0` computes one row at a time — the
    shifted survival product ``G0(v) = S(v)·S(v-t0)``, its cumulative
    trapezoid integral, and the closed-form combination with the cached
    ``A``/``F``/``S`` tabulations.  Each arithmetic step mirrors the 1-D
    kernel operation for operation, so rows agree bit-for-bit with the
    per-``t0`` reference.

    Returns one band array per ``k0``, aligned with the feasible ``t∞``
    indices ``k0 .. min(2·k0, n-1)`` (``+inf`` where ``F̃(t∞) = 0``).
    """
    n = model.grid.n
    S = model.S
    F = model.F
    a = model.A
    dt = model.grid.dt

    k0v = np.asarray(k0v, dtype=np.intp)
    hiv = np.minimum(2 * k0v, n - 1)
    # columns 0..kmax cover every feasible t∞ of the block; the cumulative
    # integral over this prefix is bitwise the prefix of the full-grid one
    kmax = int(hiv.max())

    # G0[i, k] = S[k]·S[k - k0_i] on k >= k0_i, zero-padded below — the same
    # layout the 1-D kernel uses, filled per row over just the band each row
    # reads (entries past min(2·k0, kmax) never enter a c value we use)
    g0 = np.zeros((len(k0v), kmax + 1))
    for i in range(len(k0v)):
        k0 = int(k0v[i])
        hi = int(hiv[i])
        g0[i, k0 : hi + 1] = S[k0 : hi + 1] * S[: hi - k0 + 1]
    c = cumulative_trapezoid(g0, dt)

    # rectangular band: column j is the t∞ offset k - k0 in 0..max width
    j_off = np.arange(int((hiv - k0v).max()) + 1)
    kk = k0v[:, None] + j_off[None, :]
    valid = kk <= hiv[:, None]
    kkc = np.minimum(kk, kmax)  # safe gather index; junk columns masked below

    term0 = a[k0v][:, None]
    d = term0 - a[j_off][None, :]  # ∫_{t∞-t0}^{t0} S(u) du,  t∞-t0 = j·dt
    c_win = np.take_along_axis(c, kkc, axis=1) - np.take_along_axis(
        c, k0v[:, None], axis=1
    )
    p = F[kkc]
    q = S[kkc]
    with np.errstate(divide="ignore", invalid="ignore"):
        vals = term0 + (c_win + q * d) / p
    vals = np.where(valid & (p > 0.0), vals, np.inf)
    return [vals[i, : hiv[i] - k0v[i] + 1] for i in range(len(k0v))]


def _band_rows(
    model: GriddedLatencyModel, k0s: np.ndarray
) -> list[np.ndarray]:
    """Cached feasible-band rows for each requested ``t0`` index.

    Missing rows are computed in blocks of :data:`_BLOCK_ROWS` (ascending,
    so low-``t0`` blocks stay narrow) and stored on the model; the cache is
    trimmed oldest-first past :data:`_DELAYED_CACHE_BUDGET` floats.
    """
    cache = model._delayed_band_cache
    requested = {int(k0) for k0 in k0s}
    missing = sorted(k0 for k0 in requested if k0 not in cache)
    for start in range(0, len(missing), _BLOCK_ROWS):
        block = np.asarray(missing[start : start + _BLOCK_ROWS], dtype=np.intp)
        for k0, row in zip(block, _compute_band_block(model, block)):
            cache[int(k0)] = row
            model._delayed_band_cache_floats += row.size
    if model._delayed_band_cache_floats > _DELAYED_CACHE_BUDGET:
        # trim oldest-first (dicts iterate in insertion order), sparing the
        # rows this very call is about to hand back
        for key in list(cache):
            if model._delayed_band_cache_floats <= _DELAYED_CACHE_BUDGET:
                break
            if key in requested:
                continue
            model._delayed_band_cache_floats -= cache.pop(key).size
    return [cache[int(k0)] for k0 in k0s]


def delayed_expectation_bands(
    model: GriddedLatencyModel, k0s
) -> tuple[np.ndarray, np.ndarray]:
    """Feasible-band ``E_J`` rows as one inf-padded rectangle.

    Row ``i`` holds ``E_J(k0_i, k0_i + j)`` in column ``j``; columns past
    the row's feasible width ``min(2·k0, n-1) - k0`` are ``+inf``.  Returns
    the rectangle and the per-row band sizes.  This is the compact form the
    optimisers and cost-frontier sweeps consume — same cached rows as
    :func:`delayed_expectation_surface`, without materialising full-grid
    rows.
    """
    k0v = np.asarray(k0s, dtype=np.intp).ravel()
    for k0 in k0v:
        _validate_indices(model, int(k0))
    rows = _band_rows(model, k0v)
    widths = np.array([row.size for row in rows], dtype=np.intp)
    rect = np.full((len(rows), int(widths.max())), np.inf)
    for i, row in enumerate(rows):
        rect[i, : row.size] = row
    return rect, widths


def delayed_cost_bands(
    model: GriddedLatencyModel, k0s, e_j_single: float
) -> tuple[np.ndarray, np.ndarray]:
    """``Δcost`` and plug-in ``N_//`` over the feasible bands (Eq. 6).

    Aligned with :func:`delayed_expectation_bands`: row ``i``, column ``j``
    is the configuration ``(t0_i, t0_i + j·dt)``; infeasible cells are
    ``+inf`` in the cost rectangle (and carry no meaning in ``N_//``).
    Shared by the cost optimiser and the Fig. 8 cost frontier so the
    masking/clipping invariants live in one place.
    """
    if e_j_single <= 0:
        raise ValueError(f"e_j_single must be > 0, got {e_j_single!r}")
    k0v = np.asarray(k0s, dtype=np.intp).ravel()
    rect, _ = delayed_expectation_bands(model, k0v)
    finite = np.isfinite(rect)
    if not finite.any():
        return np.full(rect.shape, np.inf), np.ones(rect.shape)
    t0g = model.times[k0v][:, None]
    j_off = np.arange(rect.shape[1])
    ti = model.times[np.minimum(k0v[:, None] + j_off[None, :], model.grid.n - 1)]
    # clip junk columns into the kernel's domain; they stay masked out
    ti = np.clip(ti, t0g, 2.0 * t0g)
    n_par = _n_parallel_kernel(np.where(finite, rect, 0.0), t0g, ti)
    costs = np.where(finite, n_par * rect / e_j_single, np.inf)
    return costs, n_par


def delayed_expectation_surface(
    model: GriddedLatencyModel, k0s
) -> np.ndarray:
    """``E_J`` rows of the delayed surface for a block of ``t0`` indices.

    Row ``i`` equals ``delayed_expectation_for_t0(model, k0s[i])`` — a
    full-grid array whose entries outside the feasible window
    ``t0 <= t∞ <= min(2·t0, t_max)`` are ``+inf`` — but the whole block is
    evaluated in a few shared 2-D vectorised passes and the per-``t0`` rows
    are cached on ``model``, so optimisers and experiments sweeping many
    ``t0`` candidates pay the tabulation once.
    """
    k0v = np.asarray(k0s, dtype=np.intp).ravel()
    for k0 in k0v:
        _validate_indices(model, int(k0))
    n = model.grid.n
    rows = _band_rows(model, k0v)
    out = np.full((len(k0v), n), np.inf)
    for i, (k0, row) in enumerate(zip(k0v, rows)):
        out[i, k0 : k0 + row.size] = row
    return out


def delayed_moments(
    model: GriddedLatencyModel, t0: float, t_inf: float
) -> StrategyMoments:
    """``E_J`` and ``σ_J`` of the delayed strategy at ``(t0, t∞)``.

    ``σ_J`` is an extension over the paper (which reports it only for the
    single/multiple strategies); it follows from ``E[J²] = ∫ 2t·P(J>t) dt``
    with the same geometric-series summation as ``E_J``.
    """
    k0 = model.index_of(t0)
    k = model.index_of(t_inf)
    _validate_indices(model, k0)
    if not k0 <= k <= min(2 * k0, model.grid.n - 1):
        raise ValueError(
            f"need t0 <= t_inf <= 2·t0 on the grid, got t0={t0}, t_inf={t_inf}"
        )
    S = model.S
    n = model.grid.n
    p = float(model.F[k])
    if p <= 0.0:
        return StrategyMoments(expectation=float("inf"), std=float("inf"))
    q = 1.0 - p

    g0 = np.zeros(n)
    g0[k0:] = S[k0:] * S[: n - k0]
    c = model.grid.cumint(g0)
    cv = model.grid.cumint(model.times * g0)
    a = model.A
    a1 = model.A1
    t0g = model.times[k0]

    c_win = c[k] - c[k0]  # ∫_{t0}^{t∞} G0
    cv_win = cv[k] - cv[k0]  # ∫_{t0}^{t∞} v·G0
    e_j = a[k0] + (c_win + q * (a[k0] - a[k - k0])) / p
    e_j2 = (
        2.0 * a1[k0]
        + (2.0 / p) * cv_win
        + (2.0 * t0g * q / p**2) * c_win
        + (2.0 * q / p) * (a1[k0] - a1[k - k0])
        + (2.0 * t0g * q / p**2) * (a[k0] - a[k - k0])
    )
    var = max(0.0, e_j2 - e_j**2)
    return StrategyMoments(expectation=float(e_j), std=float(np.sqrt(var)))


def delayed_survival(
    model: GriddedLatencyModel, t0: float, t_inf: float
) -> np.ndarray:
    """``P(J > t_k)`` tabulated on the model grid (piecewise product form)."""
    k0 = model.index_of(t0)
    ki = model.index_of(t_inf)
    _validate_indices(model, k0)
    if not k0 <= ki <= min(2 * k0, model.grid.n - 1):
        raise ValueError(
            f"need t0 <= t_inf <= 2·t0 on the grid, got t0={t0}, t_inf={t_inf}"
        )
    n = model.grid.n
    S = model.S
    q = float(S[ki])
    out = np.zeros(n)
    out[:k0] = S[:k0]
    qn = 1.0  # q^(n-1)
    m = 1
    while m * k0 < n:
        # I0(m): two copies live
        lo = m * k0
        hi = min((m - 1) * k0 + ki, n - 1)
        if hi > lo:
            idx = np.arange(lo, hi)
            out[idx] = qn * S[idx - (m - 1) * k0] * S[idx - m * k0]
        # I1(m): one copy live
        lo1 = (m - 1) * k0 + ki
        hi1 = min((m + 1) * k0, n - 1)
        if hi1 > lo1 and lo1 < n:
            idx = np.arange(lo1, min(hi1, n))
            out[idx] = qn * q * S[idx - m * k0]
        qn *= q
        m += 1
        if qn < 1e-300:
            break
    # the final grid point: evaluate with whichever window contains it
    t_end = n - 1
    m_end = t_end // k0 if k0 else 0
    if m_end >= 1:
        qn_end = q ** (m_end - 1)
        if t_end < (m_end - 1) * k0 + ki:
            out[t_end] = qn_end * S[t_end - (m_end - 1) * k0] * S[t_end - m_end * k0]
        else:
            out[t_end] = qn_end * q * S[t_end - m_end * k0]
    return out


def _n_parallel_kernel(
    l: np.ndarray, t0: np.ndarray | float, t_inf: np.ndarray
) -> np.ndarray:
    """Broadcasting core of §6.1's piecewise ``N_//(l)`` (no validation).

    ``l``, ``t0`` and ``t_inf`` all broadcast against each other; the cost
    optimiser evaluates whole ``(t0, t∞)`` rectangles through this in one
    pass.
    """
    l, t0, t_inf = np.broadcast_arrays(
        np.asarray(l, dtype=np.float64),
        np.asarray(t0, dtype=np.float64),
        np.asarray(t_inf, dtype=np.float64),
    )
    out = np.ones(l.shape)
    n = np.floor(l / t0 + 1e-12)
    active = n >= 1.0
    if active.any():
        la = l[active]
        na = n[active]
        ta = t0[active]
        ti = t_inf[active]
        in_i0 = la < (na - 1.0) * ta + ti
        job_time_i0 = ta + (na - 1.0) * ti + 2.0 * (la - na * ta)
        job_time_i1 = (
            ta + (na - 1.0) * ti + 2.0 * (ti - ta) + (la - (na - 1.0) * ta - ti)
        )
        job_time = np.where(in_i0, job_time_i0, job_time_i1)
        out[active] = job_time / la
    return out


def n_parallel_for_latency(
    l: np.ndarray | float, t0: float, t_inf: np.ndarray | float
) -> np.ndarray | float:
    """§6.1: time-averaged number of parallel jobs for total latency ``l``.

    For a run whose first start occurs at ``l``, the submission schedule is
    deterministic, so the time-average of the number of in-flight copies
    over ``[0, l]`` is the piecewise expression of §6.1 (one general form
    for ``n >= 1``; the paper's ``n = 1`` cases are its specialisations).
    The paper evaluates this at ``l = E_J`` (verified against every entry
    of Tables 3–4).

    ``l`` and ``t_inf`` broadcast against each other; ``t0`` is scalar.
    """
    check_positive("t0", t0)
    t_inf_arr = np.asarray(t_inf, dtype=np.float64)
    if ((t_inf_arr < t0 - 1e-9) | (t_inf_arr > 2.0 * t0 + 1e-9)).any():
        raise ValueError(
            f"need t0 <= t_inf <= 2·t0, got t0={t0}, t_inf={t_inf}"
        )
    arr = np.asarray(l, dtype=np.float64)
    if (arr < 0).any():
        raise ValueError("latency must be non-negative")
    out = _n_parallel_kernel(arr, float(t0), t_inf_arr)
    if np.ndim(l) == 0 and np.ndim(t_inf) == 0:
        return float(out.reshape(-1)[0])
    return out


def mean_parallel_exact(
    model: GriddedLatencyModel,
    t0: float,
    t_inf: float,
    *,
    tail_tol: float = 1e-6,
) -> float:
    """Exact ``E[N_//(J)]`` by integrating §6.1 against the law of ``J``.

    Extension over the paper's plug-in estimate ``N_//(E_J)``.  Raises if
    the survival mass left beyond the grid exceeds ``tail_tol`` (the grid
    must be long enough for the chosen timeouts).
    """
    s_j = delayed_survival(model, t0, t_inf)
    if s_j[-1] > tail_tol:
        raise ValueError(
            f"P(J > t_max) = {s_j[-1]:.3g} > {tail_tol}: grid too short for "
            f"t0={t0}, t_inf={t_inf}"
        )
    d_f = -np.diff(s_j)  # mass of J in each grid cell
    d_f = np.maximum(d_f, 0.0)
    total = d_f.sum()
    if total <= 0.0:
        raise ValueError("law of J carries no mass on the grid")
    mids = 0.5 * (model.times[:-1] + model.times[1:])
    n_par = np.asarray(n_parallel_for_latency(mids, t0, t_inf))
    return float(np.dot(n_par, d_f) / total)


@dataclass(frozen=True, repr=False)
class DelayedResubmission(Strategy):
    """Staggered copies every ``t0`` with per-copy timeout ``t∞`` (paper §6).

    Parameters
    ----------
    t0:
        Delay before each additional copy is submitted (seconds).
    t_inf:
        Age at which each copy is cancelled (seconds).  Must satisfy
        ``t0 <= t∞ <= 2·t0``; the lower boundary degenerates to single
        resubmission, the upper maximises overlap.
    """

    t0: float
    t_inf: float
    name = "delayed"

    def __post_init__(self) -> None:
        check_positive("t0", self.t0)
        check_positive("t_inf", self.t_inf)
        if not self.t0 <= self.t_inf <= 2.0 * self.t0:
            raise ValueError(
                f"need t0 <= t_inf <= 2·t0, got t0={self.t0}, t_inf={self.t_inf}"
            )

    def moments(self, model: GriddedLatencyModel) -> StrategyMoments:
        return delayed_moments(model, self.t0, self.t_inf)

    def mean_parallel_jobs(self, model: GriddedLatencyModel) -> float:
        """Paper's plug-in estimate: ``N_//`` of §6.1 evaluated at ``E_J``."""
        e_j = self.expectation(model)
        if not np.isfinite(e_j):
            return float("nan")
        return float(n_parallel_for_latency(e_j, self.t0, self.t_inf))

    def mean_parallel_jobs_exact(self, model: GriddedLatencyModel) -> float:
        """Exact ``E[N_//(J)]`` (extension, see :func:`mean_parallel_exact`)."""
        return mean_parallel_exact(model, self.t0, self.t_inf)

    def survival(self, model: GriddedLatencyModel) -> np.ndarray:
        """``P(J > t)`` on the model grid."""
        return delayed_survival(model, self.t0, self.t_inf)

    def describe(self) -> str:
        return (
            f"delayed resubmission (t0={self.t0:g}s, t_inf={self.t_inf:g}s, "
            f"ratio={self.t_inf / self.t0:.3g})"
        )

    def describe_timeline(self, width: int = 60) -> str:
        """ASCII rendition of the Fig. 4 schedule (three submissions)."""
        span = 2.0 * self.t0 + self.t_inf
        scale = (width - 1) / span

        def bar(start: float, end: float, label: str) -> str:
            pad = " " * int(round(start * scale))
            body = "#" * max(1, int(round((end - start) * scale)))
            return f"{pad}{body}  {label}"

        lines = [
            f"delayed schedule: t0={self.t0:g}s, t_inf={self.t_inf:g}s",
            bar(0.0, self.t_inf, "job 1 (0 .. t_inf)"),
            bar(self.t0, self.t0 + self.t_inf, "job 2 (t0 .. t0+t_inf)"),
            bar(2.0 * self.t0, span, "job 3 (2*t0 .. )"),
        ]
        return "\n".join(lines)
