"""The three submission strategies modelled in the paper.

* :class:`SingleResubmission` — §4: cancel and resubmit at timeout ``t∞``.
* :class:`MultipleSubmission` — §5: burst of ``b`` copies, cancel the rest
  when one runs, resubmit the whole burst at ``t∞``.
* :class:`DelayedResubmission` — §6: staggered copies every ``t0`` with
  per-job cancellation at age ``t∞``, constraint ``t0 <= t∞ <= 2·t0``.

Module-level ``*_sweep`` functions are the vectorised computational core
(expectations over all candidate timeouts at once); the classes are the
user-facing parameterised strategies.
"""

from repro.core.strategies.base import Strategy, StrategyMoments
from repro.core.strategies.single import (
    SingleResubmission,
    single_expectation_sweep,
    single_moments,
    single_std_sweep,
)
from repro.core.strategies.multiple import (
    MultipleSubmission,
    multiple_expectation_sweep,
    multiple_moments,
    multiple_std_sweep,
)
from repro.core.strategies.delayed import (
    DelayedResubmission,
    delayed_cost_bands,
    delayed_expectation_bands,
    delayed_expectation_for_t0,
    delayed_expectation_surface,
    delayed_moments,
    delayed_survival,
    n_parallel_for_latency,
)

__all__ = [
    "Strategy",
    "StrategyMoments",
    "SingleResubmission",
    "single_expectation_sweep",
    "single_std_sweep",
    "single_moments",
    "MultipleSubmission",
    "multiple_expectation_sweep",
    "multiple_std_sweep",
    "multiple_moments",
    "DelayedResubmission",
    "delayed_cost_bands",
    "delayed_expectation_bands",
    "delayed_expectation_for_t0",
    "delayed_expectation_surface",
    "delayed_moments",
    "delayed_survival",
    "n_parallel_for_latency",
]
