"""Population specifications: who submits what, when, through which broker.

A :class:`PopulationSpec` is a declarative description of a grid's user
workload: fleets of users per VO, each fleet running one of the paper's
client strategies over a submission window, optionally modulated by a
shared :class:`~repro.traces.generator.DiurnalProfile` (users submit
when they are awake).  Launch instants are drawn by inverse-CDF sampling
of the modulated intensity — one block of uniforms per fleet — so a
population is fully reproducible given a seed and cheap to synthesise
even at 10⁴ tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategies import Strategy
from repro.traces.generator import DiurnalProfile
from repro.util.validation import check_positive

__all__ = ["FleetSpec", "PopulationSpec", "adoption_population"]

#: resolution of the inverse-CDF grid for diurnal launch sampling
_CDF_GRID = 2048


@dataclass(frozen=True)
class FleetSpec:
    """One fleet: ``n_tasks`` tasks run under a strategy on behalf of a VO.

    Attributes
    ----------
    vo:
        VO label stamped on every submitted copy (fair-share sites
        account them to this VO).
    strategy:
        A paper strategy instance (single / multiple / delayed).
    n_tasks:
        Tasks the fleet launches inside the population window.
    runtime:
        Payload runtime once a copy starts (s).
    broker:
        Home broker on federated grids — an index, a broker name, or
        ``None`` for the grid's default routing (round-robin).
    label:
        Display label (defaults to ``"<vo>/<strategy class>"``).
    """

    vo: str
    strategy: Strategy
    n_tasks: int
    runtime: float = 600.0
    broker: int | str | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if not self.vo:
            raise ValueError("fleet vo must be non-empty")
        if self.n_tasks < 0:
            # zero is allowed: sweeps that carve adopters out of a VO's
            # volume can leave an empty fleet, which simply contributes
            # nothing (the driver returns empty outcome arrays for it)
            raise ValueError(f"n_tasks must be >= 0, got {self.n_tasks}")
        check_positive("runtime", self.runtime)
        if not self.label:
            object.__setattr__(
                self, "label", f"{self.vo}/{type(self.strategy).__name__}"
            )


@dataclass(frozen=True)
class PopulationSpec:
    """A full user population: fleets + their shared submission window.

    Attributes
    ----------
    fleets:
        The fleets submitting concurrently.
    window:
        Length (s) of the submission window all fleets spread their
        launches over.
    diurnal:
        Optional activity profile: launch intensity is modulated by
        ``1 + amplitude·sin(...)`` — users submit during their day.
    """

    fleets: tuple[FleetSpec, ...]
    window: float = 86_400.0
    diurnal: DiurnalProfile | None = None

    def __post_init__(self) -> None:
        # an empty fleet tuple is legal: run_population returns an
        # empty result without advancing the grid (degenerate sweeps)
        check_positive("window", self.window)

    @property
    def total_tasks(self) -> int:
        """Tasks across all fleets."""
        return sum(f.n_tasks for f in self.fleets)

    def launch_times(
        self, fleet: FleetSpec, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted launch instants for one fleet (relative to window start).

        Uniform order statistics over the window, warped through the
        inverse CDF of the diurnal intensity when a profile is set — the
        standard inhomogeneous-Poisson construction, vectorised.
        """
        u = np.sort(rng.random(fleet.n_tasks))
        if self.diurnal is None or self.diurnal.amplitude == 0.0:
            return u * self.window
        grid = np.linspace(0.0, self.window, _CDF_GRID + 1)
        intensity = np.asarray(self.diurnal.factor(grid), dtype=np.float64)
        cdf = np.concatenate(([0.0], np.cumsum((intensity[1:] + intensity[:-1]))))
        cdf /= cdf[-1]
        return np.interp(u, cdf, grid)


def adoption_population(
    *,
    vo_tasks: dict[str, int],
    strategies: dict[str, Strategy],
    adopter_vo: str,
    adopted: Strategy,
    adoption: float,
    window: float = 86_400.0,
    runtime: float = 600.0,
    diurnal: DiurnalProfile | None = None,
    brokers: dict[str, int | str] | None = None,
) -> PopulationSpec:
    """The §8-style sweep point: a fraction of one VO adopts a strategy.

    Every VO in ``vo_tasks`` runs its baseline strategy from
    ``strategies``; inside ``adopter_vo``, ``adoption`` of the tasks
    switch to ``adopted`` (the aggressive strategy whose fleet-level
    feedback the sweep measures).  Task totals per VO are preserved
    exactly — adopters are carved out of the VO's own volume.
    """
    if not 0.0 <= adoption <= 1.0:
        raise ValueError(f"adoption must be in [0, 1], got {adoption}")
    if adopter_vo not in vo_tasks:
        raise ValueError(f"adopter VO {adopter_vo!r} not in vo_tasks")
    fleets = []
    for vo, n in vo_tasks.items():
        broker = None if brokers is None else brokers.get(vo)
        baseline = strategies[vo]
        if vo == adopter_vo:
            n_adopt = int(round(n * adoption))
            if n - n_adopt >= 1:
                fleets.append(
                    FleetSpec(
                        vo, baseline, n - n_adopt, runtime=runtime, broker=broker
                    )
                )
            if n_adopt >= 1:
                fleets.append(
                    FleetSpec(
                        vo,
                        adopted,
                        n_adopt,
                        runtime=runtime,
                        broker=broker,
                        label=f"{vo}/adopters",
                    )
                )
        else:
            fleets.append(
                FleetSpec(vo, baseline, n, runtime=runtime, broker=broker)
            )
    return PopulationSpec(
        fleets=tuple(fleets), window=window, diurnal=diurnal
    )
