"""Canonical fleet-scale workload presets.

The 16-site / 4096-core fair-share grid and the four-fleet diurnal day
used by the population benchmarks, the ``repro population`` CLI and
``examples/population_1m.py``.  One definition keeps the 20k bench, the
100k bench, the ``population-1m`` milestone run and the sharded CLI all
measuring the same workload — only ``scale`` (and the shard count)
varies.
"""

from __future__ import annotations

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.gridsim.grid import GridConfig, SiteConfig
from repro.population.spec import FleetSpec, PopulationSpec
from repro.traces.generator import DiurnalProfile

__all__ = ["fleet_grid_config", "fleet_population_spec", "fleet_sites_for"]

# the 100k day's regime: 16 sites x 256 cores absorb ~6250 tasks per
# site-day with zero give-ups; a larger population needs a
# proportionally larger grid or the day saturates (retries then grow
# the job count superlinearly and most tasks exhaust the horizon)
_TASKS_PER_SITE_DAY = 6250


def fleet_sites_for(scale: int) -> int:
    """Site count that keeps ``scale`` tasks in the 100k day's regime.

    16 sites up to the 10^5 day, then linear: the ``population-1m``
    milestone runs on 160 sites / 40960 cores so the per-site load —
    and therefore the fair-share/dispatch behaviour being measured —
    matches the smaller benches instead of saturating.
    """
    return max(16, -(-scale // _TASKS_PER_SITE_DAY))


def fleet_grid_config(n_sites: int = 16, n_cores: int = 256) -> GridConfig:
    """The fair-share grid of the population day (16 x 256 cores)."""
    sites = tuple(
        SiteConfig(
            name=f"big{i:02d}",
            n_cores=n_cores,
            utilization=0.8,
            runtime_median=1800.0,
            vo_shares=(("biomed", 0.5), ("atlas", 0.3), ("cms", 0.2)),
        )
        for i in range(n_sites)
    )
    return GridConfig(sites=sites)


def fleet_population_spec(scale: int) -> PopulationSpec:
    """Four fleets totalling ``scale`` short tasks across a diurnal day."""

    def n(frac: float) -> int:
        return int(scale * frac)

    return PopulationSpec(
        fleets=(
            FleetSpec(
                "biomed", SingleResubmission(t_inf=4000.0), n(0.35), runtime=120.0
            ),
            FleetSpec(
                "biomed",
                MultipleSubmission(b=3, t_inf=4000.0),
                n(0.15),
                runtime=120.0,
                label="biomed/adopters",
            ),
            FleetSpec(
                "atlas", SingleResubmission(t_inf=4000.0), n(0.30), runtime=120.0
            ),
            FleetSpec(
                "cms", SingleResubmission(t_inf=4000.0), n(0.20), runtime=120.0
            ),
        ),
        window=86_400.0,
        diurnal=DiurnalProfile(amplitude=0.4),
    )
