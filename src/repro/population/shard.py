"""Sharded population runtime: site-partitioned worker processes.

The struct-of-arrays pool (:mod:`repro.population.soa`) removes the
per-task object machinery, which leaves the grid itself — fair-share
commits, dispatch buckets, site reconciliation — as the wall.  Those
costs are per *site*, so this module partitions the sites of one
:class:`~repro.gridsim.grid.GridConfig` round-robin across ``N`` worker
processes.  Each shard owns a site subset, a full grid simulator over
it (background load, fair-share, faults — all from per-shard RNG
streams derived from the root seed), a :class:`ShardBroker`, and the
slice ``[k::N]`` of every fleet's launch schedule.

Cross-shard traffic rides the same windowed trick the batched WMS uses
in-process: brokers resolve dispatch buckets at sub-window boundaries
(``info_refresh / 16``), and a copy ranked onto a remote shard's site
becomes a *message* stamped with that boundary instead of an enqueue.
Workers advance in lockstep epochs of one ``info_refresh`` window;
between epochs the parent routes each shard's outbox and broadcasts
per-site load tables.  A message stamped with boundary ``b`` is applied
on the receiving shard at ``b + epoch`` — every message is delayed by
exactly one epoch, grouped per sub-window, which is the federation
layer's ``info_lag`` idiom applied to the process fabric.  Load tables
lag the same way, so remote-site rankings work from a one-epoch-stale
view (a production information system's staleness, not an artifact).

The protocol (all payloads are plain tuples):

``sub``
    Origin ranked a copy onto a remote site: the host shard mints a
    mirror job and enqueues it there (batched per site per sub-window).
``start``
    A mirror started on its host: the origin settles the task at the
    *remote* start instant, so the fabric's delivery lag never inflates
    the measured latency ``J``.  If the task has meanwhile settled or
    timed out at the origin, the reply is a ``cancel``.
``cancel``
    The origin cancelled a shipped copy (timeout or sibling settle):
    the host kills the mirror wherever it is (queued or running).

A timeout can race a remote start across the one-epoch fabric lag
(the origin resubmits a copy whose mirror had already started); the
race resolves deterministically — the in-flight ``start`` is answered
with a ``cancel`` — and is part of the sharded runtime's law, exactly
like dispatch-boundary alignment is part of the batched WMS's law.

Determinism: for a fixed ``(config, spec, seed, grid_seed, shards)``
every run produces identical outcome tables — per-shard grid seeds come
from ``SeedSequence(grid_seed).generate_state(shards)``, launch slices
are computed once in the parent, and message application orders by
(boundary, source shard, generation order).  Changing ``shards``
changes the partition and therefore the law, like changing any other
engine constant.  ``shards=1`` degenerates to a single warmed grid and
:func:`~repro.population.driver.run_population` — law-identical to the
legacy driver wherever the SoA pool is (pinned by the oracle suite).
"""

from __future__ import annotations

import math
import multiprocessing as mp
import pickle
from dataclasses import replace
from functools import partial

import numpy as np

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim.client import _bump_job_ids_past
from repro.gridsim.grid import GridConfig, warmed_grid, warmed_snapshot
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.wms import BatchedWorkloadManager
from repro.population.driver import (
    FleetOutcome,
    PopulationResult,
    run_population,
)
from repro.population.soa import _ACTIVE, TaskPool
from repro.population.spec import PopulationSpec
from repro.util.rng import as_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = ["ShardBroker", "run_population_sharded", "shard_configs"]

_SUPPORTED = (SingleResubmission, MultipleSubmission, DelayedResubmission)


class ShardBroker(BatchedWorkloadManager):
    """A batched WMS whose ranking table extends past its own shard.

    Grafted onto a restored shard grid's broker (``__class__`` swap —
    the instance keeps its RNG stream, buckets and dispatch books), it
    appends one column per *remote* site to the load snapshot: local
    columns refresh from the owned sites on the normal cadence, remote
    columns hold the last load table the parent broadcast (one epoch
    stale, ``inf`` until the first exchange so the opening epoch stays
    shard-local).  Ranking noise is drawn over the full width, so the
    per-shard stream's law is fixed by the *global* site count.  A
    bucket winner ranked into a remote column leaves through the ship
    callback as a ``sub`` message instead of an enqueue; the dispatch
    is counted here, at the ranking broker, exactly once.
    """

    def _init_shard(self, remote, ship) -> None:
        """Wire the remote columns: ``remote`` is ``(name, shard, idx)``
        per foreign site (deterministic order), ``ship(job, shard, idx)``
        the runtime's message hook."""
        self._remote = list(remote)
        self._remote_est = [math.inf] * len(remote)
        self._ship_cb = ship
        self._n_local = len(self.sites)
        self._measure_loads()
        self._snapshot_time = self.sim.now

    def _measure_loads(self) -> np.ndarray:
        loads = [s.estimated_wait(self.runtime_guess) for s in self.sites]
        remote = getattr(self, "_remote_est", None)
        if remote is not None:
            loads = loads + remote
        self._snapshot_list = loads
        self._snapshot = np.asarray(loads)
        if self._health_aware:
            self._refresh_health(range(len(self.sites)))
        return self._snapshot

    def set_remote_estimates(self, est) -> None:
        """Install the freshly broadcast remote load columns."""
        self._remote_est = [float(x) for x in est]
        nl = self._n_local
        self._snapshot_list[nl:] = self._remote_est
        self._snapshot = np.asarray(self._snapshot_list)

    def _place(self, idx: int, job: Job, then) -> None:
        """Dispatch one ranked winner: local enqueue or remote ship."""
        if idx < self._n_local:
            self.dispatch_count += self.sites[idx].enqueue_many([job])
            if then is not None and job.state is not JobState.CANCELLED:
                then(job)
            return
        name, shard, local_idx = self._remote[idx - self._n_local]
        self.dispatch_count += 1
        job.state = JobState.QUEUED
        job.site = name
        self._ship_cb(job, shard, local_idx)
        if then is not None:
            then(job)

    def _resolve_bucket(self, boundary: float) -> None:
        # the base resolver with every enqueue routed through _place();
        # health penalties are structurally absent (sharded runs reject
        # health configs), so the penalised branches are dropped
        entries = self._buckets.pop(boundary)
        MATCHING = JobState.MATCHING
        if len(entries) == 1:
            _, job, then = entries[0]
            if job.state is not MATCHING:
                return
            self.current_snapshot()
            self._place(self._select_index(), job, then)
            return
        live = [
            (ready, k, job, then)
            for k, (ready, job, then) in enumerate(entries)
            if job.state is MATCHING
        ]
        if not live:
            return
        live.sort()
        self.current_snapshot()
        k = len(live)
        if k < self._VECTORISE_MIN:
            for _, _, job, then in live:
                if job.state is not MATCHING:
                    continue  # cancelled by an earlier job's callback
                self._place(self._select_index(), job, then)
            return
        est = self._snapshot
        if self.ranking_noise > 0.0:
            noise = self.rng.lognormal(
                0.0, self.ranking_noise, size=(k, est.size)
            )
            choices = ((est + self.matchmaking_median) * noise).argmin(axis=1)
        else:
            choices = np.full(k, int(np.argmin(est)))
        groups: dict[int, list] = {}
        for (_, _, job, then), site_i in zip(live, choices.tolist()):
            groups.setdefault(site_i, []).append((job, then))
        nl = self._n_local
        for site_i, bunch in groups.items():
            todo = [(job, then) for job, then in bunch if job.state is MATCHING]
            if not todo:
                continue
            if site_i < nl:
                site = self.sites[site_i]
                self.dispatch_count += site.enqueue_many(
                    [job for job, _ in todo]
                )
                for job, then in todo:
                    if then is not None and job.state is not JobState.CANCELLED:
                        then(job)
            else:
                for job, then in todo:
                    self._place(site_i, job, then)


class _ShardRuntime:
    """Worker-side state: one shard grid, its pool, and the fabric."""

    def __init__(
        self, conn, wid, n_shards, grid, spec, times, start, partition
    ) -> None:
        self.conn = conn
        self.wid = wid
        self.grid = grid
        self.sim = grid.sim
        broker = grid.wms
        broker.__class__ = ShardBroker
        remote = []
        for j in range(n_shards):
            if j == wid:
                continue
            for idx, name in enumerate(partition[j]):
                remote.append((name, j, idx))
        broker._init_shard(remote, self._ship)
        self.broker = broker
        self.epoch = float(grid.config.info_refresh)
        self.quantum = broker.dispatch_quantum
        self._outbox: list = []
        self._shipped: dict[int, Job] = {}  # key -> origin-side stub
        self._jobkey: dict[Job, tuple[int, int]] = {}  # stub -> (key, host)
        self._hosted: dict[tuple[int, int], Job] = {}  # (origin, key) -> mirror
        self._next_key = 0
        self._d0 = broker.dispatch_count
        self._lost0 = grid.jobs_lost
        self._stuck0 = grid.jobs_stuck
        self._start_t = start
        self.pool = TaskPool(grid, spec.fleets, times, start=start, ops=self)

    # -- ops surface for the TaskPool ---------------------------------

    def cancel(self, job: Job) -> None:
        ks = self._jobkey.pop(job, None)
        if ks is None:
            self.grid.cancel(job)
            return
        key, host = ks
        self._shipped.pop(key, None)
        job.on_start = None
        job.state = JobState.CANCELLED
        self._buffer(host, "cancel", (key,))

    def cancel_many(self, jobs) -> None:
        local = []
        for job in jobs:
            if job in self._jobkey:
                self.cancel(job)
            else:
                local.append(job)
        if local:
            self.grid.cancel_many(local)

    def report_failed(self, jobs) -> None:
        # health machinery is structurally absent on sharded grids
        # (rejected at validation), so failure reports have no observer
        return

    # -- message fabric ------------------------------------------------

    def _boundary(self, t: float) -> float:
        q = self.quantum
        return math.ceil(t / q) * q

    def _buffer(self, dest: int, kind: str, payload: tuple) -> None:
        self._outbox.append(
            (dest, kind, self._boundary(self.sim.now), payload)
        )

    def _ship(self, job: Job, host: int, local_idx: int) -> None:
        # called by the broker at a bucket boundary (already a quantum
        # multiple); the stub stays in the pool's live set so timeouts
        # and sibling settles keep governing it at the origin
        key = self._next_key
        self._next_key += 1
        self._shipped[key] = job
        self._jobkey[job] = (key, host)
        self._outbox.append(
            (host, "sub", self.sim.now, (key, local_idx, job.runtime, job.vo))
        )

    def _schedule_inbox(self, inbox) -> None:
        if not inbox:
            return
        batches: dict[float, list] = {}
        for msg in inbox:
            batches.setdefault(msg[2], []).append(msg)
        E = self.epoch
        for b in sorted(batches):
            self.sim.schedule_at(b + E, partial(self._apply_batch, batches[b]))

    def _apply_batch(self, batch) -> None:
        # mirrors first, batched per site (one enqueue_many per site per
        # sub-window), then starts/cancels in arrival order — a cancel
        # for a sub in the same batch always finds its mirror minted
        subs: dict[int, list[Job]] = {}
        rest = []
        for origin, kind, _b, payload in batch:
            if kind == "sub":
                key, site_idx, runtime, vo = payload
                job = Job(runtime=runtime, tag="task", vo=vo)
                job.on_start = partial(self._hosted_started, origin, key)
                self._hosted[(origin, key)] = job
                subs.setdefault(site_idx, []).append(job)
            else:
                rest.append((origin, kind, payload))
        sites = self.grid.sites
        for site_idx, jobs in subs.items():
            sites[site_idx].enqueue_many(jobs)
        for origin, kind, payload in rest:
            if kind == "start":
                self._remote_started(origin, *payload)
            else:  # "cancel"
                self._cancel_hosted(origin, payload[0])

    def _hosted_started(self, origin: int, key: int, job: Job) -> None:
        # a mirror started on this shard: report the exact instant home
        self._buffer(origin, "start", (key, self.sim.now))

    def _remote_started(self, host: int, key: int, t_started: float) -> None:
        stub = self._shipped.pop(key, None)
        if stub is None or stub.on_start is None:
            # the task settled or timed out while the start message was
            # in flight — kill the mirror (it may already be running)
            self._buffer(host, "cancel", (key,))
            return
        self._jobkey.pop(stub, None)
        cb = stub.on_start
        stub.on_start = None
        stub.state = JobState.RUNNING
        stub.start_time = t_started
        # the pool's start watcher is partial(TaskPool._start, i):
        # recover the pool index and settle at the *remote* start
        # instant, so fabric delivery lag never inflates measured J
        i = cb.args[0]
        if self.pool.state[i] == _ACTIVE:
            self.pool.settle(i, stub, t_started)

    def _cancel_hosted(self, origin: int, key: int) -> None:
        job = self._hosted.pop((origin, key), None)
        if job is not None:
            self.grid.cancel(job)
        # an unknown key is already terminal here (completed mirror or
        # duplicate cancel); a mirror racing its cancel cleans itself up
        # through the start/cancel round-trip

    def _prune_hosted(self) -> None:
        live = (JobState.QUEUED, JobState.RUNNING)
        self._hosted = {
            k: j for k, j in self._hosted.items() if j.state in live
        }

    # -- epoch loop ----------------------------------------------------

    def _apply_loads(self, tables) -> None:
        b = self.broker
        b.set_remote_estimates(
            tables[shard][idx] for _name, shard, idx in b._remote
        )

    def _local_loads(self) -> list[float]:
        guess = self.broker.runtime_guess
        return [float(s.estimated_wait(guess)) for s in self.grid.sites]

    def run(self) -> None:
        conn = self.conn
        while True:
            msg = conn.recv()
            if msg[0] == "finish":
                conn.send(("result", self._result()))
                return
            _tag, t_end, inbox, loads_tables = msg
            if loads_tables is not None:
                self._apply_loads(loads_tables)
            self._schedule_inbox(inbox)
            self.grid.run_until(t_end)
            self._prune_hosted()
            out = self._outbox
            self._outbox = []
            conn.send(("sync", int(self.pool.pending), out, self._local_loads()))

    def _result(self) -> dict:
        grid, pool = self.grid, self.pool
        fleets = []
        for f in range(len(pool.fleets)):
            j, jobs = pool.fleet_results(f)
            n_here = int(pool.offsets[f + 1] - pool.offsets[f])
            fleets.append((j, jobs, n_here - j.size))
        usage = {
            s.name: s.usage_shares()
            for s in grid.sites
            if hasattr(s, "usage_shares")
        }
        return {
            "fleets": fleets,
            "jobs_lost": grid.jobs_lost - self._lost0,
            "jobs_stuck": grid.jobs_stuck - self._stuck0,
            "dispatches": self.broker.dispatch_count - self._d0,
            "usage": usage,
            "weather": grid.weather_report(),
            "metrics": grid.metrics.snapshot(),
            "duration": grid.now - self._start_t,
        }


def _shard_worker(
    conn, wid, n_shards, payload, spec, times, start, partition
) -> None:
    try:
        grid = pickle.loads(payload)
        _bump_job_ids_past(grid)
        _ShardRuntime(
            conn, wid, n_shards, grid, spec, times, start, partition
        ).run()
    except BaseException:
        import traceback

        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
        raise
    finally:
        conn.close()


def shard_configs(
    config: GridConfig, shards: int
) -> tuple[list[GridConfig], list[tuple[str, ...]]]:
    """Partition a grid config round-robin into per-shard configs.

    Returns ``(configs, partition)`` where ``partition[k]`` is the
    tuple of global site names shard ``k`` owns (``sites[k::shards]``
    — round-robin, so heterogeneous site lists spread evenly).
    """
    if not isinstance(shards, int) or shards < 1:
        raise ValueError(f"shards must be a positive int, got {shards!r}")
    if shards > len(config.sites):
        raise ValueError(
            f"shards={shards} exceeds the {len(config.sites)} configured "
            "site(s) — each shard needs at least one site"
        )
    cfgs, partition = [], []
    for k in range(shards):
        owned = config.sites[k::shards]
        cfgs.append(replace(config, sites=owned))
        partition.append(tuple(sc.name for sc in owned))
    return cfgs, partition


def _check_shardable(config: GridConfig, spec: PopulationSpec) -> None:
    """Reject grid features the message fabric does not carry (yet)."""
    if config.brokers:
        raise ValueError(
            "sharded runs partition sites across per-shard brokers; "
            "configure a broker-free grid (config.brokers must be empty)"
        )
    if config.wms_engine != "batched":
        raise ValueError(
            "sharded runs require wms_engine='batched' — cross-shard "
            "messages are batched per dispatch sub-window, which the "
            "per-job oracle engine does not define"
        )
    unsupported = [
        name
        for name, value in (
            ("weather", config.weather),
            ("health", config.health),
            ("resubmit", config.resubmit),
            ("submit_faults", config.submit_faults),
            ("retry", config.retry),
        )
        if value is not None
    ]
    if config.tracing:
        unsupported.append("tracing")
    if unsupported:
        raise ValueError(
            "sharded runs do not carry these grid features across the "
            f"process fabric: {', '.join(unsupported)}"
        )
    for f in spec.fleets:
        if f.broker is not None:
            raise ValueError(
                f"fleet {f.label!r} pins a broker; sharded runs own one "
                "broker per shard (fleet.broker must be None)"
            )
        if not isinstance(f.strategy, _SUPPORTED):
            raise ValueError(
                f"fleet {f.label!r} uses {type(f.strategy).__name__}, "
                "which the struct-of-arrays pool does not support"
            )


def _merge_telemetry(a, b):
    """Best-effort merge of per-shard telemetry trees.

    Counters and nested dicts merge additively/recursively; same-length
    lists merge elementwise; anything else keeps the first shard's
    value (derived statistics like histogram means are approximate
    across shards — the counters underneath them are exact).
    """
    if isinstance(a, dict) and isinstance(b, dict):
        out = dict(a)
        for k, v in b.items():
            out[k] = _merge_telemetry(out[k], v) if k in out else v
        return out
    if isinstance(a, bool) or isinstance(b, bool):
        return a or b
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return a + b
    if isinstance(a, list) and isinstance(b, list) and len(a) == len(b):
        return [_merge_telemetry(x, y) for x, y in zip(a, b)]
    return a


def run_population_sharded(
    config: GridConfig,
    spec: PopulationSpec,
    *,
    shards: int,
    seed: int = 0,
    grid_seed: int = 0,
    warm: float = 6 * 3600.0,
    horizon_slack: float = 100_000.0,
) -> PopulationResult:
    """Run a population across ``shards`` site-partitioned processes.

    Takes a *config* (not a grid): each shard warms its own grid over
    its site subset, seeded from ``SeedSequence(grid_seed)``.  Fleet
    launch schedules are synthesised once from ``seed`` exactly like
    :func:`~repro.population.driver.run_population` and sliced
    ``[k::shards]`` per worker.  Results are deterministic for a fixed
    shard count; ``shards=1`` is law-identical to the single-process
    driver.  See the module docstring for the fabric's law.
    """
    check_positive("horizon_slack", horizon_slack)
    check_positive("warm", warm)
    if not isinstance(grid_seed, int):
        raise TypeError(
            "run_population_sharded needs an integer grid_seed (it keys "
            f"the per-shard warm cache), got {type(grid_seed).__name__}"
        )
    cfgs, partition = shard_configs(config, shards)
    if shards == 1:
        grid = warmed_grid(config, grid_seed, warm)
        return run_population(
            grid, spec, seed=seed, horizon_slack=horizon_slack
        )
    _check_shardable(config, spec)

    rngs = spawn_rngs(as_rng(seed), len(spec.fleets))
    all_times = [
        spec.launch_times(fleet, rng)
        for fleet, rng in zip(spec.fleets, rngs)
    ]
    if sum(t.size for t in all_times) == 0:
        return PopulationResult(
            fleets=tuple(
                FleetOutcome(
                    spec=fleet,
                    j=np.array([]),
                    jobs_submitted=np.array([], dtype=np.int64),
                    gave_up=0,
                )
                for fleet in spec.fleets
            ),
            duration=0.0,
            jobs_lost=0,
            jobs_stuck=0,
            broker_dispatches=(0,) * shards,
            site_usage_shares={},
        )

    shard_seeds = np.random.SeedSequence(grid_seed).generate_state(shards)
    payloads = []
    for cfg, s in zip(cfgs, shard_seeds):
        snap = warmed_snapshot(cfg, int(s), warm)
        if snap._payload is None:
            raise RuntimeError(
                "shard grid state is not picklable and cannot cross the "
                "process boundary"
            )
        payloads.append(snap._payload)
    start = float(warm)
    epoch = float(config.info_refresh)
    max_epochs = math.ceil((spec.window + horizon_slack) / epoch)

    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    conns, procs = [], []
    try:
        for k in range(shards):
            parent_conn, child_conn = ctx.Pipe()
            times_k = [t[k::shards] for t in all_times]
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    child_conn, k, shards, payloads[k], spec, times_k,
                    start, partition,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        def _recv(conn):
            msg = conn.recv()
            if msg[0] == "error":
                raise RuntimeError(f"shard worker failed:\n{msg[1]}")
            return msg

        inboxes: list[list] = [[] for _ in range(shards)]
        loads_tables = None
        for e in range(max_epochs):
            t_end = start + (e + 1) * epoch
            for k, conn in enumerate(conns):
                conn.send(("run", t_end, inboxes[k], loads_tables))
            inboxes = [[] for _ in range(shards)]
            pending = 0
            in_flight = False
            loads_tables = []
            for k, conn in enumerate(conns):
                _tag, pend_k, out_k, loads_k = _recv(conn)
                pending += pend_k
                loads_tables.append(loads_k)
                for dest, kind, boundary, payload in out_k:
                    inboxes[dest].append((k, kind, boundary, payload))
                    in_flight = True
            if pending == 0 and not in_flight:
                break
        results = []
        for conn in conns:
            conn.send(("finish",))
            results.append(_recv(conn)[1])
    finally:
        for conn in conns:
            conn.close()
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():  # pragma: no cover - cleanup path
                proc.terminate()
                proc.join()

    outcomes = []
    for f, fleet in enumerate(spec.fleets):
        j = np.concatenate([r["fleets"][f][0] for r in results])
        jobs = np.concatenate([r["fleets"][f][1] for r in results])
        gave_up = sum(r["fleets"][f][2] for r in results)
        outcomes.append(
            FleetOutcome(spec=fleet, j=j, jobs_submitted=jobs, gave_up=gave_up)
        )
    usage: dict = {}
    for r in results:
        usage.update(r["usage"])
    weather: dict = {}
    metrics: dict = {}
    for r in results:
        weather = _merge_telemetry(weather, r["weather"])
        metrics = _merge_telemetry(metrics, r["metrics"])
    return PopulationResult(
        fleets=tuple(outcomes),
        duration=max(r["duration"] for r in results),
        jobs_lost=sum(r["jobs_lost"] for r in results),
        jobs_stuck=sum(r["jobs_stuck"] for r in results),
        broker_dispatches=tuple(r["dispatches"] for r in results),
        site_usage_shares=usage,
        weather=weather,
        metrics=metrics,
    )
