"""User-population workload driver for the multi-tenant grid.

The paper models one user against aggregate EGEE latency; production
grids multiplex *thousands* of users across VOs through several brokers.
This package instantiates that workload structure mechanistically on the
:mod:`repro.gridsim` substrate:

* :class:`FleetSpec` / :class:`PopulationSpec` describe fleets of
  paper-strategy users per VO (single / multiple / delayed mixes), their
  task volume, payloads, home brokers and a shared diurnal activity
  profile;
* :func:`run_population` executes every fleet concurrently on **one**
  grid, so cross-VO and cross-fleet load feedback — the effect the
  paper's §3.3 no-feedback assumption ignores — is captured, and
  returns per-fleet outcome statistics plus grid-side telemetry;
* :func:`adoption_population` builds the §8-style sweeps where a growing
  fraction of one VO adopts an aggressive strategy;
* :func:`run_population_sharded` partitions the grid's sites across
  worker processes (:mod:`repro.population.shard`) for population-scale
  runs (10⁶ tasks and up), with cross-shard WMS traffic batched per
  dispatch sub-window.

The ``multi-vo`` experiment (:mod:`repro.experiments.multi_vo`) and the
``repro federation`` / ``repro population`` CLIs drive these; at 10⁴
tasks a full sweep runs in seconds on the vectorised site engine, and
the struct-of-arrays pool (:mod:`repro.population.soa`) plus sharding
carry fleet runs to the ``population-1m`` scale.
"""

from repro.population.spec import FleetSpec, PopulationSpec, adoption_population
from repro.population.driver import (
    FleetOutcome,
    PopulationResult,
    run_population,
)
from repro.population.shard import run_population_sharded

__all__ = [
    "FleetSpec",
    "PopulationSpec",
    "FleetOutcome",
    "PopulationResult",
    "adoption_population",
    "run_population",
    "run_population_sharded",
]
