"""Struct-of-arrays population runtime: fleets as index ranges, no objects.

The legacy population driver allocates one :class:`~repro.gridsim.client.TaskCore`
per task — at 10⁵ tasks that is 10⁵ slotted objects, 10⁵ bound-method
watchers, and a few 10⁵ pooled timers armed and cancelled one at a time.
:class:`TaskPool` replaces all of it with one numpy record pool: task
state, launch/finish instants, completion order and jobs-used live in
flat columns, fleets are contiguous index ranges, the per-task start
watcher is one reusable ``partial``, and timeout expiry is batched
through a pool-owned wheel that arms **one** kernel timer per bucket
boundary and walks its due index block at fire time (dead entries are
skipped by a state check instead of being cancelled individually).

The pool is a *law-identical* replacement for the TaskCore path on the
grids fleet runs actually use — calm middleware (no retry/fault domain,
no resubmission agent, no tracing, no task ledger; see
:func:`pool_supported`).  Every grid interaction happens in exactly the
order the legacy executors performed it (same Job mint order, same
fault-channel draws, same broker round-robin, same cancel batches), so
a pool run reproduces the legacy driver bit-for-bit on all four
site×WMS engine corners; ``tests/test_population_soa.py`` pins that.

Sharded runs (:mod:`repro.population.shard`) reuse the pool unchanged:
the worker passes an ``ops`` adapter that reroutes cancellations and
failure reports of copies shipped to remote shards, and settles tasks
whose winning copy started remotely via :meth:`TaskPool.settle`.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim.jobs import Job

__all__ = ["TaskPool", "pool_supported"]

#: task lifecycle states (the ``state`` column)
_PENDING, _ACTIVE, _DONE = 0, 1, 2

#: strategy kinds (per-fleet, fleets are homogeneous)
_SINGLE, _MULTIPLE, _DELAYED = 0, 1, 2

#: wheel entry codes — what an expired slot means for its task
_EXP_SINGLE = 0  # single-resubmission t_inf: cancel + resubmit
_EXP_MULTIPLE = 1  # multiple-submission t_inf: cancel batch + resubmit batch
_EXP_DCANCEL = 2  # delayed t_inf: cancel one aged copy, task keeps going
_EXP_DSUBMIT = 3  # delayed t0: submit the next staggered copy


def pool_supported(grid, fleets) -> bool:
    """Whether the SoA pool reproduces the legacy path on this run.

    The pool bypasses the per-task object surface the optional
    subsystems hook into (middleware retry sagas, the resubmission
    agent's watch list, trace task ids, the chaos ledger), so it only
    engages when all of them are off — which is every fleet-scale
    benchmark configuration.  Anything else falls back to the legacy
    TaskCore driver, which remains the behavioural oracle.
    """
    if (
        grid._mw is not None
        or grid._agent is not None
        or grid._tr is not None
        or grid.task_ledger is not None
    ):
        return False
    return all(
        isinstance(
            f.strategy,
            (SingleResubmission, MultipleSubmission, DelayedResubmission),
        )
        for f in fleets
    )


class TaskPool:
    """One numpy record pool running every task of a population.

    Parameters
    ----------
    grid:
        The (warmed) grid to run against.
    fleets:
        The :class:`~repro.population.spec.FleetSpec` list; fleet ``f``
        owns pool indices ``offsets[f]:offsets[f+1]``.
    launch_times:
        Per-fleet launch instants relative to ``start`` (the arrays
        :meth:`PopulationSpec.launch_times` synthesises).  The pool
        merges them into one chained launch walker exactly like the
        legacy driver (fleet-major stable sort).
    start:
        Absolute instant the window opens (``grid.now`` at call time).
    on_all_done:
        Called once, the instant the pool's last task settles (the
        driver passes ``grid.sim.stop``; shard workers pass ``None``
        and poll :attr:`pending` at epoch boundaries instead).
    ops:
        Optional cancellation/failure-report surface (``cancel``,
        ``cancel_many``, ``report_failed``).  Defaults to the grid
        itself; shard workers pass an adapter that routes copies
        shipped to remote shards through the message fabric.
    """

    __slots__ = (
        "grid", "_sim", "fleets", "offsets", "n", "fid",
        "state", "t_start", "done_t", "done_seq", "jobs_used",
        "_live", "_cb", "_seq", "pending", "on_all_done",
        "_kind", "_t_inf", "_t0", "_b", "_runtime", "_vo",
        "_fleet_broker", "_rr_broker", "_via",
        "_cancel", "_cancel_many", "_rf", "_calm",
        "_pooled", "_wheel",
        "_sorted_t", "_sorted_i", "_cursor",
    )

    def __init__(
        self,
        grid,
        fleets,
        launch_times,
        *,
        start: float,
        on_all_done=None,
        ops=None,
    ) -> None:
        self.grid = grid
        sim = grid.sim
        self._sim = sim
        self.fleets = list(fleets)
        sizes = [int(t.size) for t in launch_times]
        offsets = np.zeros(len(sizes) + 1, dtype=np.intp)
        np.cumsum(sizes, out=offsets[1:])
        self.offsets = offsets
        n = int(offsets[-1])
        self.n = n

        # -- per-fleet parameter tables (fleets are index ranges) --------
        self._kind: list[int] = []
        self._t_inf: list[float] = []
        self._t0: list[float] = []
        self._b: list[int] = []
        self._runtime: list[float] = []
        self._vo: list[str] = []
        self._via: list = []
        for f in self.fleets:
            s = f.strategy
            if isinstance(s, SingleResubmission):
                self._kind.append(_SINGLE)
                self._t0.append(0.0)
                self._b.append(1)
            elif isinstance(s, MultipleSubmission):
                self._kind.append(_MULTIPLE)
                self._t0.append(0.0)
                self._b.append(int(s.b))
            elif isinstance(s, DelayedResubmission):
                self._kind.append(_DELAYED)
                self._t0.append(float(s.t0))
                self._b.append(1)
            else:
                raise TypeError(
                    f"unsupported strategy type {type(s).__name__}"
                )
            self._t_inf.append(float(s.t_inf))
            self._runtime.append(float(f.runtime))
            self._vo.append(f.vo)
            self._via.append(f.broker)

        # -- SoA columns --------------------------------------------------
        # Hot columns are plain Python containers, not numpy arrays: the
        # launch/settle path does ~10 scalar element accesses per task,
        # and a numpy scalar read/write costs ~10x a list index (boxing
        # a fresh np.float64 each time).  fleet_results converts to
        # arrays once, at readout.
        self.state = bytearray(n)
        self.t_start = [0.0] * n
        self.done_t = [0.0] * n
        #: global completion counter per task — per-fleet results are
        #: read back in completion order, like the legacy sink appends
        self.done_seq = [0] * n
        self.jobs_used = [0] * n
        self.fid = np.repeat(
            np.arange(len(sizes), dtype=np.intp), sizes
        ).tolist()
        #: in-flight copies per task: a Job (single) or a list of Jobs
        self._live = [None] * n
        #: the reusable per-task start watcher (minted once, at launch)
        self._cb = [None] * n
        self._seq = 0
        self.pending = n
        self.on_all_done = on_all_done

        # -- grid surface -------------------------------------------------
        if ops is None:
            ops = grid
        self._cancel = ops.cancel
        self._cancel_many = ops.cancel_many
        # legacy timeouts always call grid.report_failed, which is a
        # no-op without a health machine — skip the call entirely then
        # (shard adapters must always see it: they filter remote copies)
        self._rf = (
            ops.report_failed
            if (ops is not grid or grid._health is not None)
            else None
        )
        faults = grid.config.faults
        self._calm = faults.p_lost == 0.0 and faults.p_stuck == 0.0
        # fixed broker per fleet where resolution is stateless; None
        # means the round-robin default, resolved per submission like
        # the legacy path (grid.broker_for(None) mutates the cursor)
        brokers = grid.brokers
        fleet_broker = []
        for f in self.fleets:
            if f.broker is not None:
                fleet_broker.append(grid.broker_for(f.broker))
            elif len(brokers) == 1:
                fleet_broker.append(brokers[0])
            else:
                fleet_broker.append(None)
        self._fleet_broker = fleet_broker
        self._rr_broker = grid.broker_for

        # -- pool timer wheel --------------------------------------------
        #: batched engine: one kernel timer per boundary fires a whole
        #: index block; event engine: exact per-entry heap events, so
        #: the oracle corner keeps the historical timer stream
        self._pooled = grid._pooled_timers
        self._wheel: dict[float, list] = {}

        # -- chained launch walker (same merged order as the driver) ------
        if n:
            cat = np.concatenate(launch_times)
            order = np.argsort(cat, kind="stable")
            self._sorted_t = (cat[order] + start).tolist()
            self._sorted_i = order.tolist()
            self._cursor = 0
            sim.schedule_at(self._sorted_t[0], self._fire_launches)
        else:
            self._sorted_t = []
            self._sorted_i = []
            self._cursor = 0

    # -- launch ----------------------------------------------------------

    def _fire_launches(self) -> None:
        i = self._cursor
        st = self._sorted_t
        si = self._sorted_i
        n = self.n
        t = st[i]
        launch = self._launch
        launch(si[i])
        i += 1
        while i < n and st[i] == t:
            launch(si[i])
            i += 1
        self._cursor = i
        if i < n:
            self._sim.schedule_at(st[i], self._fire_launches)

    def _launch(self, i: int) -> None:
        f = self.fid[i]
        self.state[i] = _ACTIVE
        self.t_start[i] = self._sim._now
        cb = partial(self._start, i)
        self._cb[i] = cb
        k = self._kind[f]
        if k == _SINGLE:
            job = Job(runtime=self._runtime[f], tag="task", vo=self._vo[f])
            self.jobs_used[i] = 1
            self._live[i] = job
            self._submit1(f, job, cb)
            self._arm(self._t_inf[f], _EXP_SINGLE, i, None)
        elif k == _MULTIPLE:
            self._round_multiple(i, f)
        else:
            self._live[i] = []
            self._round_delayed(i, f)

    # -- strategy rounds -------------------------------------------------

    def _round_multiple(self, i: int, f: int) -> None:
        runtime = self._runtime[f]
        vo = self._vo[f]
        batch = [
            Job(runtime=runtime, tag="task", vo=vo)
            for _ in range(self._b[f])
        ]
        self.jobs_used[i] += len(batch)
        self._live[i] = batch
        self._submit_many(f, batch, self._cb[i])
        self._arm(self._t_inf[f], _EXP_MULTIPLE, i, None)

    def _round_delayed(self, i: int, f: int) -> None:
        job = Job(runtime=self._runtime[f], tag="task", vo=self._vo[f])
        self.jobs_used[i] += 1
        self._live[i].append(job)
        self._submit1(f, job, self._cb[i])
        self._arm(self._t_inf[f], _EXP_DCANCEL, i, job)
        self._arm(self._t0[f], _EXP_DSUBMIT, i, None)

    # -- submission fast path --------------------------------------------

    def _submit1(self, f: int, job: Job, cb) -> None:
        grid = self.grid
        if not self._calm:
            grid.submit(job, cb, via=self._via[f])
            return
        # inlined calm-grid tail of GridSimulator.submit: no middleware,
        # no tracing, no fault channels (gated by pool_supported/_calm)
        broker = self._fleet_broker[f]
        if broker is None:
            broker = self._rr_broker(None)
        job.submit_time = self._sim._now
        grid.jobs_submitted += 1
        job.on_start = cb
        broker.submit(job)

    def _submit_many(self, f: int, jobs: list, cb) -> None:
        grid = self.grid
        if not self._calm:
            grid.submit_many(jobs, cb, via=self._via[f])
            return
        now = self._sim._now
        for job in jobs:
            job.submit_time = now
            job.on_start = cb
        grid.jobs_submitted += len(jobs)
        broker = self._fleet_broker[f]
        if broker is None:
            # legacy submit_many advances the round-robin once per burst
            broker = self._rr_broker(None)
        broker.submit_many(jobs)

    # -- timeout wheel ----------------------------------------------------

    def _arm(self, delay: float, code: int, i: int, payload) -> None:
        if self._pooled:
            sim = self._sim
            boundary = sim.pooled_boundary(delay)
            block = self._wheel.get(boundary)
            if block is None:
                self._wheel[boundary] = block = []
                sim.schedule_pooled(
                    delay, partial(self._expire_block, boundary)
                )
            block.append((code, i, payload))
        else:
            self._sim.schedule(
                delay, partial(self._expire_one, code, i, payload)
            )

    def _expire_block(self, boundary: float) -> None:
        entries = self._wheel.pop(boundary)
        state = self.state
        expire = self._expire
        for code, i, payload in entries:
            # settled tasks just leave dead entries behind — skipping
            # them here replaces 10⁵ individual timer cancellations
            if state[i] == _ACTIVE:
                expire(code, i, payload)

    def _expire_one(self, code: int, i: int, payload) -> None:
        if self.state[i] == _ACTIVE:
            self._expire(code, i, payload)

    def _expire(self, code: int, i: int, payload) -> None:
        f = self.fid[i]
        rf = self._rf
        if code == _EXP_SINGLE:
            job = self._live[i]
            if rf is not None:
                rf([job])
            self._cancel(job)
            job = Job(runtime=self._runtime[f], tag="task", vo=self._vo[f])
            self.jobs_used[i] += 1
            self._live[i] = job
            self._submit1(f, job, self._cb[i])
            self._arm(self._t_inf[f], _EXP_SINGLE, i, None)
        elif code == _EXP_MULTIPLE:
            batch = self._live[i]
            if rf is not None:
                rf(batch)
            self._cancel_many(batch)
            self._round_multiple(i, f)
        elif code == _EXP_DCANCEL:
            if rf is not None:
                rf([payload])
            self._cancel(payload)
            # unlike TaskCore.active_jobs, the live list stays tight:
            # cancelled copies leave it (grid.cancel_many skips them
            # anyway, so the settle-time batch is identical)
            try:
                self._live[i].remove(payload)
            except ValueError:
                pass
        else:  # _EXP_DSUBMIT
            self._round_delayed(i, f)

    # -- settle ----------------------------------------------------------

    def _start(self, i: int, winner: Job) -> None:
        if self.state[i] != _ACTIVE:
            # a sibling copy started in the same instant: kill the extra
            self._cancel(winner)
            return
        self.settle(i, winner, self._sim._now)

    def settle(self, i: int, winner: Job, t_done: float) -> None:
        """Mark task ``i`` done at ``t_done``; cancel every other copy.

        ``winner`` is the copy that started (for sharded runs, the local
        stub of a copy that started on a remote shard, with ``t_done``
        the remote start instant).
        """
        self.state[i] = _DONE
        live = self._live[i]
        self._live[i] = None
        self._cb[i] = None
        if live is not winner:
            if type(live) is list:
                others = [j for j in live if j is not winner]
                if others:
                    self._cancel_many(others)
            elif live is not None:
                self._cancel(live)
        self.done_t[i] = t_done
        self.done_seq[i] = self._seq
        self._seq += 1
        self.pending -= 1
        if self.pending == 0 and self.on_all_done is not None:
            self.on_all_done()

    # -- results ----------------------------------------------------------

    def fleet_results(self, f: int) -> tuple[np.ndarray, np.ndarray]:
        """``(j, jobs_used)`` of fleet ``f``'s finished tasks.

        Ordered by completion instant (the ``done_seq`` counter), which
        is exactly the order the legacy driver's per-fleet sink appended
        in — so the arrays compare bit-for-bit against the oracle.
        """
        sl = slice(int(self.offsets[f]), int(self.offsets[f + 1]))
        state = np.frombuffer(self.state, dtype=np.uint8)[sl]
        done = np.nonzero(state == _DONE)[0]
        seq = np.asarray(self.done_seq[sl], dtype=np.int64)
        done = done[np.argsort(seq[done], kind="stable")]
        j = (
            np.asarray(self.done_t[sl], dtype=np.float64)[done]
            - np.asarray(self.t_start[sl], dtype=np.float64)[done]
        )
        jobs = np.asarray(self.jobs_used[sl], dtype=np.int64)[done]
        return j, jobs
