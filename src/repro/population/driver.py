"""Executes a :class:`~repro.population.spec.PopulationSpec` on one grid.

All fleets share the grid, so the driver captures every feedback channel
the single-user analysis ignores: adopters of aggressive strategies
lengthen the queues their own VO (and everyone else) waits in,
fair-share re-prioritises VOs as their usage grows, and federated
brokers dispatch on views the fleet load itself is ageing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.gridsim.client import launch_task
from repro.gridsim.grid import GridSimulator
from repro.population.spec import FleetSpec, PopulationSpec
from repro.util.rng import RngLike, as_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = ["FleetOutcome", "PopulationResult", "run_population"]


@dataclass(frozen=True)
class FleetOutcome:
    """Realised statistics of one fleet.

    Attributes
    ----------
    spec:
        The fleet that produced these numbers.
    j:
        Realised total latencies of finished tasks (s).
    jobs_submitted:
        Grid jobs per finished task (copies + resubmissions).
    gave_up:
        Tasks unfinished at the horizon.
    """

    spec: FleetSpec
    j: np.ndarray
    jobs_submitted: np.ndarray
    gave_up: int

    @property
    def mean_j(self) -> float:
        """Mean realised total latency (NaN when nothing finished)."""
        return float(self.j.mean()) if self.j.size else float("nan")

    @property
    def median_j(self) -> float:
        """Median realised total latency (NaN when nothing finished)."""
        return float(np.median(self.j)) if self.j.size else float("nan")

    @property
    def mean_jobs(self) -> float:
        """Mean grid jobs per task (NaN when nothing finished)."""
        return float(self.jobs_submitted.mean()) if self.j.size else float("nan")


@dataclass(frozen=True)
class PopulationResult:
    """Everything one population run produced.

    Attributes
    ----------
    fleets:
        Per-fleet outcomes, in spec order.
    duration:
        Virtual seconds the run spanned (launch window + drain).
    jobs_lost, jobs_stuck:
        Middleware faults during this run (deltas, not the grid's
        lifetime counters).
    broker_dispatches:
        Dispatches per broker during this run, in broker order.
    site_usage_shares:
        Per-site decayed VO usage fractions at the end of the run
        (fair-share sites only).
    weather:
        Grid weather/health/self-healing telemetry at the end of the run
        (:meth:`~repro.gridsim.grid.GridSimulator.weather_report` —
        cumulative grid-lifetime counters, all zero on calm grids).  On
        grids with a middleware fault domain this includes the
        ``"brokers"`` section (per-broker submits/rejects/failovers,
        outage and breaker counters) and the ``"duplicates"``
        created/reconciled ledger.
    metrics:
        Full :meth:`~repro.gridsim.registry.MetricsRegistry.snapshot`
        of the grid's registry at the end of the run — every counter,
        gauge and histogram any subsystem published, as plain data.
    """

    fleets: tuple[FleetOutcome, ...]
    duration: float
    jobs_lost: int
    jobs_stuck: int
    broker_dispatches: tuple[int, ...]
    site_usage_shares: dict[str, dict[str, float]]
    weather: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def total_finished(self) -> int:
        """Tasks that finished across all fleets."""
        return sum(f.j.size for f in self.fleets)

    @property
    def total_gave_up(self) -> int:
        """Tasks still pending at the horizon across all fleets."""
        return sum(f.gave_up for f in self.fleets)

    def by_vo(self) -> dict[str, np.ndarray]:
        """Realised latencies pooled per VO."""
        pools: dict[str, list[np.ndarray]] = {}
        for f in self.fleets:
            pools.setdefault(f.spec.vo, []).append(f.j)
        return {vo: np.concatenate(js) for vo, js in pools.items()}


def run_population(
    grid: GridSimulator,
    spec: PopulationSpec,
    *,
    seed: RngLike = 0,
    horizon_slack: float = 100_000.0,
    step: float = 3600.0,
) -> PopulationResult:
    """Run every fleet of ``spec`` concurrently on ``grid``.

    Launch instants are synthesised per fleet (seeded independently via
    stream spawning, so adding a fleet never perturbs another fleet's
    schedule), all tasks are scheduled onto the shared event loop, and
    the simulation advances until every task finished or the horizon
    (``window + horizon_slack``) is reached.

    Parameters
    ----------
    grid:
        A (warmed) grid; fair-share and federation behaviour come from
        its config.
    spec:
        The population to run.
    seed:
        Seed for launch-time synthesis only (the grid owns its own
        streams).
    horizon_slack:
        Extra virtual time after the window for stragglers to finish.
    step:
        Unused — kept for call-site compatibility.  The run is
        event-driven: the last task's completion stops the simulator at
        that exact instant instead of an advance loop polling every
        ``step`` seconds.
    """
    check_positive("horizon_slack", horizon_slack)
    del step  # retained for call-site compatibility only
    rngs = spawn_rngs(as_rng(seed), len(spec.fleets))
    start = grid.now
    lost_before, stuck_before = grid.jobs_lost, grid.jobs_stuck
    dispatched_before = [b.dispatch_count for b in grid.brokers]
    results: list[list[tuple[float, int]]] = [[] for _ in spec.fleets]
    pending = [spec.total_tasks]

    def on_done() -> None:
        pending[0] -= 1
        if pending[0] == 0:
            grid.sim.stop()

    launchers: list[partial] = []
    all_times: list[np.ndarray] = []
    for fleet, rng, sink in zip(spec.fleets, rngs, results):
        all_times.append(spec.launch_times(fleet, rng))
        launchers.append(
            partial(
                launch_task,
                grid,
                fleet.strategy,
                fleet.runtime,
                sink,
                vo=fleet.vo,
                via=fleet.broker,
                on_done=on_done,
            )
        )

    # One self-rechaining event walks the merged launch schedule instead
    # of pre-loading one heap entry per task: a 100k-task run keeps the
    # kernel heap at steady-state size (completions + timers), which
    # makes every sift cheaper.  The fleet-major stable sort reproduces
    # the old per-event order exactly: equal launch instants fire
    # back-to-back inside one event body, just like their consecutive
    # insertion seqs made them do.
    total = sum(t.size for t in all_times)
    if total:
        cat = np.concatenate(all_times)
        fid = np.repeat(
            np.arange(len(all_times), dtype=np.intp),
            [t.size for t in all_times],
        )
        order = np.argsort(cat, kind="stable")
        sorted_t = (cat[order] + start).tolist()
        sorted_f = fid[order].tolist()
        sim = grid.sim
        cursor = [0]

        def fire() -> None:
            i = cursor[0]
            t = sorted_t[i]
            launchers[sorted_f[i]]()
            i += 1
            while i < total and sorted_t[i] == t:
                launchers[sorted_f[i]]()
                i += 1
            cursor[0] = i
            if i < total:
                sim.schedule_at(sorted_t[i], fire)

        sim.schedule_at(sorted_t[0], fire)

    grid.run_until(start + spec.window + horizon_slack)

    outcomes = []
    for fleet, sink in zip(spec.fleets, results):
        j = np.array([r[0] for r in sink])
        jobs = np.array([r[1] for r in sink], dtype=np.int64)
        outcomes.append(
            FleetOutcome(
                spec=fleet,
                j=j,
                jobs_submitted=jobs,
                gave_up=fleet.n_tasks - j.size,
            )
        )
    usage = {
        site.name: site.usage_shares()
        for site in grid.sites
        if hasattr(site, "usage_shares")
    }
    return PopulationResult(
        fleets=tuple(outcomes),
        duration=grid.now - start,
        jobs_lost=grid.jobs_lost - lost_before,
        jobs_stuck=grid.jobs_stuck - stuck_before,
        broker_dispatches=tuple(
            b.dispatch_count - d0
            for b, d0 in zip(grid.brokers, dispatched_before)
        ),
        site_usage_shares=usage,
        weather=grid.weather_report(),
        metrics=grid.metrics.snapshot(),
    )
