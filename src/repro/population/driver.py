"""Executes a :class:`~repro.population.spec.PopulationSpec` on one grid.

All fleets share the grid, so the driver captures every feedback channel
the single-user analysis ignores: adopters of aggressive strategies
lengthen the queues their own VO (and everyone else) waits in,
fair-share re-prioritises VOs as their usage grows, and federated
brokers dispatch on views the fleet load itself is ageing.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.gridsim.client import launch_task
from repro.gridsim.grid import GridSimulator
from repro.population.soa import TaskPool, pool_supported
from repro.population.spec import FleetSpec, PopulationSpec
from repro.util.rng import RngLike, as_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = ["FleetOutcome", "PopulationResult", "run_population"]

#: run_population engines — "soa" is the struct-of-arrays pool
#: (:mod:`repro.population.soa`), "legacy" the per-task TaskCore oracle,
#: "auto" picks the pool whenever :func:`~repro.population.soa.pool_supported`
#: says it is law-identical on this grid
_ENGINES = ("auto", "soa", "legacy")


@dataclass(frozen=True)
class FleetOutcome:
    """Realised statistics of one fleet.

    Attributes
    ----------
    spec:
        The fleet that produced these numbers.
    j:
        Realised total latencies of finished tasks (s).
    jobs_submitted:
        Grid jobs per finished task (copies + resubmissions).
    gave_up:
        Tasks unfinished at the horizon.
    """

    spec: FleetSpec
    j: np.ndarray
    jobs_submitted: np.ndarray
    gave_up: int

    @property
    def mean_j(self) -> float:
        """Mean realised total latency (NaN when nothing finished)."""
        return float(self.j.mean()) if self.j.size else float("nan")

    @property
    def median_j(self) -> float:
        """Median realised total latency (NaN when nothing finished)."""
        return float(np.median(self.j)) if self.j.size else float("nan")

    @property
    def mean_jobs(self) -> float:
        """Mean grid jobs per task (NaN when nothing finished)."""
        return float(self.jobs_submitted.mean()) if self.j.size else float("nan")


@dataclass(frozen=True)
class PopulationResult:
    """Everything one population run produced.

    Attributes
    ----------
    fleets:
        Per-fleet outcomes, in spec order.
    duration:
        Virtual seconds the run spanned (launch window + drain).
    jobs_lost, jobs_stuck:
        Middleware faults during this run (deltas, not the grid's
        lifetime counters).
    broker_dispatches:
        Dispatches per broker during this run, in broker order.
    site_usage_shares:
        Per-site decayed VO usage fractions at the end of the run
        (fair-share sites only).
    weather:
        Grid weather/health/self-healing telemetry at the end of the run
        (:meth:`~repro.gridsim.grid.GridSimulator.weather_report` —
        cumulative grid-lifetime counters, all zero on calm grids).  On
        grids with a middleware fault domain this includes the
        ``"brokers"`` section (per-broker submits/rejects/failovers,
        outage and breaker counters) and the ``"duplicates"``
        created/reconciled ledger.
    metrics:
        Full :meth:`~repro.gridsim.registry.MetricsRegistry.snapshot`
        of the grid's registry at the end of the run — every counter,
        gauge and histogram any subsystem published, as plain data.
    """

    fleets: tuple[FleetOutcome, ...]
    duration: float
    jobs_lost: int
    jobs_stuck: int
    broker_dispatches: tuple[int, ...]
    site_usage_shares: dict[str, dict[str, float]]
    weather: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    @property
    def total_finished(self) -> int:
        """Tasks that finished across all fleets."""
        return sum(f.j.size for f in self.fleets)

    @property
    def total_gave_up(self) -> int:
        """Tasks still pending at the horizon across all fleets."""
        return sum(f.gave_up for f in self.fleets)

    def by_vo(self) -> dict[str, np.ndarray]:
        """Realised latencies pooled per VO."""
        pools: dict[str, list[np.ndarray]] = {}
        for f in self.fleets:
            pools.setdefault(f.spec.vo, []).append(f.j)
        return {vo: np.concatenate(js) for vo, js in pools.items()}


def _resolve_engine(engine: str | None, grid: GridSimulator, spec) -> str:
    """Pick the execution engine (see :func:`run_population`)."""
    if engine is None:
        engine = os.environ.get("REPRO_POPULATION_ENGINE", "auto")
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown population engine {engine!r}; "
            f"available: {', '.join(_ENGINES)}"
        )
    if engine == "legacy":
        return "legacy"
    supported = pool_supported(grid, spec.fleets)
    if engine == "soa":
        if not supported:
            raise ValueError(
                "engine='soa' needs a calm grid (no middleware fault "
                "domain, resubmission agent, tracing or task ledger) and "
                "the three paper strategies; use engine='auto' to fall "
                "back to the legacy driver automatically"
            )
        return "soa"
    return "soa" if supported else "legacy"


def _assemble_result(
    grid: GridSimulator,
    outcomes: list[FleetOutcome],
    *,
    duration: float,
    lost_before: int,
    stuck_before: int,
    dispatched_before: list[int],
) -> PopulationResult:
    """Wrap per-fleet outcomes with the grid's telemetry deltas."""
    usage = {
        site.name: site.usage_shares()
        for site in grid.sites
        if hasattr(site, "usage_shares")
    }
    return PopulationResult(
        fleets=tuple(outcomes),
        duration=duration,
        jobs_lost=grid.jobs_lost - lost_before,
        jobs_stuck=grid.jobs_stuck - stuck_before,
        broker_dispatches=tuple(
            b.dispatch_count - d0
            for b, d0 in zip(grid.brokers, dispatched_before)
        ),
        site_usage_shares=usage,
        weather=grid.weather_report(),
        metrics=grid.metrics.snapshot(),
    )


def run_population(
    grid: GridSimulator,
    spec: PopulationSpec,
    *,
    seed: RngLike = 0,
    horizon_slack: float = 100_000.0,
    step: float = 3600.0,
    engine: str | None = None,
) -> PopulationResult:
    """Run every fleet of ``spec`` concurrently on ``grid``.

    Launch instants are synthesised per fleet (seeded independently via
    stream spawning, so adding a fleet never perturbs another fleet's
    schedule), all tasks are scheduled onto the shared event loop, and
    the simulation advances until every task finished or the horizon
    (``window + horizon_slack``) is reached.

    Parameters
    ----------
    grid:
        A (warmed) grid; fair-share and federation behaviour come from
        its config.
    spec:
        The population to run.
    seed:
        Seed for launch-time synthesis only (the grid owns its own
        streams).
    horizon_slack:
        Extra virtual time after the window for stragglers to finish.
    step:
        Unused — kept for call-site compatibility.  The run is
        event-driven: the last task's completion stops the simulator at
        that exact instant instead of an advance loop polling every
        ``step`` seconds.
    engine:
        ``"soa"`` runs the struct-of-arrays task pool
        (:mod:`repro.population.soa`), ``"legacy"`` the per-task
        TaskCore oracle, ``"auto"`` (default, or
        ``REPRO_POPULATION_ENGINE``) the pool whenever it is
        law-identical on this grid — both produce bit-for-bit the same
        result wherever the pool engages, pinned by
        ``tests/test_population_soa.py``.
    """
    check_positive("horizon_slack", horizon_slack)
    del step  # retained for call-site compatibility only
    resolved = _resolve_engine(engine, grid, spec)
    rngs = spawn_rngs(as_rng(seed), len(spec.fleets))
    start = grid.now
    lost_before, stuck_before = grid.jobs_lost, grid.jobs_stuck
    dispatched_before = [b.dispatch_count for b in grid.brokers]
    all_times = [
        spec.launch_times(fleet, rng) for fleet, rng in zip(spec.fleets, rngs)
    ]
    total = sum(t.size for t in all_times)

    if total == 0:
        # nothing to launch (no fleets, or every fleet has n_tasks=0):
        # an empty result, without burning the horizon on a dead grid
        outcomes = [
            FleetOutcome(
                spec=fleet,
                j=np.array([]),
                jobs_submitted=np.array([], dtype=np.int64),
                gave_up=0,
            )
            for fleet in spec.fleets
        ]
        return _assemble_result(
            grid,
            outcomes,
            duration=0.0,
            lost_before=lost_before,
            stuck_before=stuck_before,
            dispatched_before=dispatched_before,
        )

    if resolved == "soa":
        pool = TaskPool(
            grid,
            spec.fleets,
            all_times,
            start=start,
            on_all_done=grid.sim.stop,
        )
        grid.run_until(start + spec.window + horizon_slack)
        outcomes = []
        for f, fleet in enumerate(spec.fleets):
            j, jobs = pool.fleet_results(f)
            outcomes.append(
                FleetOutcome(
                    spec=fleet,
                    j=j,
                    jobs_submitted=jobs,
                    gave_up=fleet.n_tasks - j.size,
                )
            )
        return _assemble_result(
            grid,
            outcomes,
            duration=grid.now - start,
            lost_before=lost_before,
            stuck_before=stuck_before,
            dispatched_before=dispatched_before,
        )

    results: list[list[tuple[float, int]]] = [[] for _ in spec.fleets]
    pending = [total]

    def on_done() -> None:
        pending[0] -= 1
        if pending[0] == 0:
            grid.sim.stop()

    launchers: list[partial] = []
    for fleet, sink in zip(spec.fleets, results):
        launchers.append(
            partial(
                launch_task,
                grid,
                fleet.strategy,
                fleet.runtime,
                sink,
                vo=fleet.vo,
                via=fleet.broker,
                on_done=on_done,
            )
        )

    # One self-rechaining event walks the merged launch schedule instead
    # of pre-loading one heap entry per task: a 100k-task run keeps the
    # kernel heap at steady-state size (completions + timers), which
    # makes every sift cheaper.  The fleet-major stable sort reproduces
    # the old per-event order exactly: equal launch instants fire
    # back-to-back inside one event body, just like their consecutive
    # insertion seqs made them do.
    cat = np.concatenate(all_times)
    fid = np.repeat(
        np.arange(len(all_times), dtype=np.intp),
        [t.size for t in all_times],
    )
    order = np.argsort(cat, kind="stable")
    sorted_t = (cat[order] + start).tolist()
    sorted_f = fid[order].tolist()
    sim = grid.sim
    cursor = [0]

    def fire() -> None:
        i = cursor[0]
        t = sorted_t[i]
        launchers[sorted_f[i]]()
        i += 1
        while i < total and sorted_t[i] == t:
            launchers[sorted_f[i]]()
            i += 1
        cursor[0] = i
        if i < total:
            sim.schedule_at(sorted_t[i], fire)

    sim.schedule_at(sorted_t[0], fire)

    grid.run_until(start + spec.window + horizon_slack)

    outcomes = []
    for fleet, sink in zip(spec.fleets, results):
        j = np.array([r[0] for r in sink])
        jobs = np.array([r[1] for r in sink], dtype=np.int64)
        outcomes.append(
            FleetOutcome(
                spec=fleet,
                j=j,
                jobs_submitted=jobs,
                gave_up=fleet.n_tasks - j.size,
            )
        )
    return _assemble_result(
        grid,
        outcomes,
        duration=grid.now - start,
        lost_before=lost_before,
        stuck_before=stuck_before,
        dispatched_before=dispatched_before,
    )
