"""repro — reproduction of *Modeling User Submission Strategies on
Production Grids* (Lingrand, Montagnat, Glatard; HPDC 2009).

The library models the latency experienced by grid jobs as a heavy-tailed
random variable with a fault ratio, and evaluates three client-side
submission strategies — single resubmission, multiple (burst) submission
and delayed resubmission — by their expected total latency, its standard
deviation, the mean number of parallel copies and the §7 ``Δcost``
criterion.  Substrates include heavy-tailed distribution fitting, trace
containers with GWF/SWF archive support, synthetic EGEE-like trace
calibration, Monte-Carlo strategy replay and a discrete-event grid
simulator.

Quickstart::

    import repro

    traces = repro.synthesize_all(seed=42)
    model = traces["2006-IX"].to_latency_model().on_grid()
    single = repro.optimize_single(model)
    print(f"optimal timeout {single.t_inf:.0f}s -> E_J = {single.e_j:.0f}s")
"""

from repro._version import __version__
from repro.core import (
    DelayedOptimum,
    DelayedResubmission,
    GriddedLatencyModel,
    LatencyModel,
    MultipleSubmission,
    SingleOptimum,
    SingleResubmission,
    Strategy,
    StrategyMoments,
    delta_cost,
    optimize_delayed,
    optimize_delayed_cost,
    optimize_delayed_ratio,
    optimize_multiple,
    optimize_single,
)
from repro.distributions import (
    EmpiricalDistribution,
    Exponential,
    Gamma,
    LatencyDistribution,
    LogLogistic,
    LogNormal,
    MixtureDistribution,
    Pareto,
    ShiftedDistribution,
    TruncatedDistribution,
    Weibull,
    fit_distribution,
    select_model,
)
from repro.traces import (
    PAPER_TABLE1,
    TraceSet,
    characterize,
    read_gwf,
    read_swf,
    synthesize_all,
    synthesize_week,
    write_gwf,
    write_swf,
)
from repro.util import TimeGrid
from repro.workflow import plan_submissions

__all__ = [
    "__version__",
    # core
    "LatencyModel",
    "GriddedLatencyModel",
    "Strategy",
    "StrategyMoments",
    "SingleResubmission",
    "MultipleSubmission",
    "DelayedResubmission",
    "SingleOptimum",
    "DelayedOptimum",
    "optimize_single",
    "optimize_multiple",
    "optimize_delayed",
    "optimize_delayed_ratio",
    "optimize_delayed_cost",
    "delta_cost",
    # distributions
    "LatencyDistribution",
    "LogNormal",
    "Weibull",
    "Gamma",
    "Exponential",
    "Pareto",
    "LogLogistic",
    "ShiftedDistribution",
    "TruncatedDistribution",
    "MixtureDistribution",
    "EmpiricalDistribution",
    "fit_distribution",
    "select_model",
    # traces
    "TraceSet",
    "PAPER_TABLE1",
    "synthesize_all",
    "synthesize_week",
    "characterize",
    "read_gwf",
    "write_gwf",
    "read_swf",
    "write_swf",
    # util
    "TimeGrid",
    # workflow
    "plan_submissions",
]
