"""Bootstrap uncertainty of trace-fitted strategy optima.

The paper optimises timeouts on finite traces (~800 probes per week)
without quantifying estimation noise.  This module resamples the trace
with replacement, refits the empirical model and re-optimises, yielding
confidence intervals for the optimal timeout and its ``E_J`` — the error
bars Table 5's deployment decision actually rests on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LatencyModel
from repro.core.optimize import optimize_single
from repro.traces.dataset import TraceSet
from repro.util.grids import TimeGrid
from repro.util.rng import RngLike, as_rng

__all__ = ["BootstrapResult", "bootstrap_single_optimum"]


@dataclass(frozen=True)
class BootstrapResult:
    """Bootstrap distribution of the single-resubmission optimum.

    Attributes
    ----------
    t_inf_samples, e_j_samples:
        Per-replicate optimal timeout and expected latency.
    t_inf_point, e_j_point:
        The point estimates on the original trace.
    """

    t_inf_samples: np.ndarray
    e_j_samples: np.ndarray
    t_inf_point: float
    e_j_point: float

    def e_j_interval(self, level: float = 0.9) -> tuple[float, float]:
        """Percentile confidence interval for ``E_J``."""
        return self._interval(self.e_j_samples, level)

    def t_inf_interval(self, level: float = 0.9) -> tuple[float, float]:
        """Percentile confidence interval for the optimal timeout."""
        return self._interval(self.t_inf_samples, level)

    @staticmethod
    def _interval(samples: np.ndarray, level: float) -> tuple[float, float]:
        if not 0.0 < level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {level}")
        alpha = 0.5 * (1.0 - level)
        lo, hi = np.quantile(samples, [alpha, 1.0 - alpha])
        return float(lo), float(hi)

    @property
    def e_j_std(self) -> float:
        """Bootstrap standard error of ``E_J``."""
        return float(self.e_j_samples.std(ddof=1))

    def summary(self) -> str:
        """One-line report."""
        lo, hi = self.e_j_interval()
        tlo, thi = self.t_inf_interval()
        return (
            f"E_J = {self.e_j_point:.0f}s (90% CI [{lo:.0f}, {hi:.0f}]), "
            f"t_inf = {self.t_inf_point:.0f}s (90% CI [{tlo:.0f}, {thi:.0f}])"
        )


def bootstrap_single_optimum(
    trace: TraceSet,
    *,
    n_boot: int = 200,
    grid: TimeGrid | None = None,
    rng: RngLike = None,
) -> BootstrapResult:
    """Bootstrap the optimal single-resubmission configuration of a trace.

    Each replicate resamples the probe population (successes *and*
    outliers, so ρ fluctuates realistically), rebuilds the ECDF model and
    re-runs the timeout sweep.

    Parameters
    ----------
    trace:
        The measured trace set.
    n_boot:
        Number of bootstrap replicates (200 gives ~5% CI noise).
    grid:
        Evaluation grid (default: 2 s resolution for speed).
    rng:
        Seed or generator.
    """
    if n_boot < 10:
        raise ValueError(f"n_boot must be >= 10, got {n_boot}")
    gen = as_rng(rng)
    grid = grid or TimeGrid(t_max=10_000.0, dt=2.0)

    point = optimize_single(trace.to_latency_model().on_grid(grid))

    lat = trace.latencies
    n = lat.size
    t_infs = np.empty(n_boot)
    e_js = np.empty(n_boot)
    for i in range(n_boot):
        sample = lat[gen.integers(0, n, size=n)]
        finite = sample[np.isfinite(sample)]
        n_out = n - finite.size
        if finite.size < 2:
            raise ValueError(
                "bootstrap replicate has no successful probes; trace too small"
            )
        model = LatencyModel.from_samples(
            finite, n_outliers=n_out, name=f"{trace.name}*"
        ).on_grid(grid)
        opt = optimize_single(model)
        t_infs[i] = opt.t_inf
        e_js[i] = opt.e_j
    return BootstrapResult(
        t_inf_samples=t_infs,
        e_j_samples=e_js,
        t_inf_point=point.t_inf,
        e_j_point=point.e_j,
    )
