"""Higher-level analyses built on the strategy models.

* :mod:`repro.analysis.stability` — §7.1's robustness study: how much
  does ``Δcost`` degrade when the optimal ``(t0, t∞)`` are perturbed by a
  few seconds (Table 5's ±5 s radius).
* :mod:`repro.analysis.transfer` — §7.2's practicality study: apply the
  timeouts optimised on one week's traces to another week's latency law
  (Table 6), the "estimate parameters from last week" workflow.
"""

from repro.analysis.bootstrap import BootstrapResult, bootstrap_single_optimum
from repro.analysis.stability import StabilityReport, stability_analysis
from repro.analysis.transfer import TransferCell, transfer_matrix

__all__ = [
    "BootstrapResult",
    "bootstrap_single_optimum",
    "StabilityReport",
    "stability_analysis",
    "TransferCell",
    "transfer_matrix",
]
