"""Perturbation stability of delayed-strategy optima (§7.1, Table 5).

The paper checks that the ``Δcost`` minimum is usable in practice by
perturbing the optimal integer ``(t0, t∞)`` within a ±5 s box and
reporting the worst ``Δcost`` and its relative distance from the
optimum.  A flat neighbourhood means a client can deploy slightly wrong
timeouts safely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cost import delta_cost
from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import (
    delayed_expectation_bands,
    n_parallel_for_latency,
)

__all__ = ["StabilityReport", "stability_analysis"]


@dataclass(frozen=True)
class StabilityReport:
    """Worst-case Δcost in a box around an optimum.

    Attributes
    ----------
    t0, t_inf:
        The centre point (the optimum under study, s).
    cost_center:
        ``Δcost`` at the centre.
    cost_max:
        Worst ``Δcost`` over the perturbation box.
    relative_diff:
        ``(cost_max - cost_center) / cost_center``.
    n_evaluated:
        Number of feasible perturbed points.
    """

    t0: float
    t_inf: float
    cost_center: float
    cost_max: float
    relative_diff: float
    n_evaluated: int


def stability_analysis(
    model: GriddedLatencyModel,
    t0: float,
    t_inf: float,
    e_j_single: float,
    *,
    radius: int = 5,
) -> StabilityReport:
    """Evaluate ``Δcost`` over the ±``radius`` integer box around ``(t0, t∞)``.

    Infeasible perturbations (violating ``t0 <= t∞ <= 2·t0`` or leaving
    the grid) are skipped, matching the paper's integer-second study.

    Parameters
    ----------
    model:
        Gridded latency model of the period.
    t0, t_inf:
        Centre point (seconds; should lie on the grid).
    e_j_single:
        Optimal single-resubmission ``E_J`` of the same period (Eq. 6
        denominator).
    radius:
        Box half-width in grid steps (the paper uses 5 s).
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius}")
    if e_j_single <= 0:
        raise ValueError(f"e_j_single must be > 0, got {e_j_single}")
    grid = model.grid
    k0_c = grid.index_of(t0)
    ki_c = grid.index_of(t_inf)

    # the whole box reads from the cached E_J surface rows — one batched
    # request for the ±radius t0 values, then O(1) lookups per point
    k0_lo = max(1, k0_c - radius)
    k0_hi = min(grid.n - 1, k0_c + radius)
    box_k0 = list(range(k0_lo, k0_hi + 1))
    rect, _ = delayed_expectation_bands(model, box_k0)

    def cost_at(k0: int, ki: int) -> float | None:
        if not (1 <= k0 < grid.n and k0 <= ki <= min(2 * k0, grid.n - 1)):
            return None
        e_j = float(rect[k0 - k0_lo, ki - k0]) if k0_lo <= k0 <= k0_hi else None
        if e_j is None or not (e_j > 0 and e_j < float("inf")):
            return None
        n_par = float(n_parallel_for_latency(e_j, grid.time_of(k0), grid.time_of(ki)))
        return delta_cost(n_par, e_j, e_j_single)

    center = cost_at(k0_c, ki_c)
    if center is None:
        raise ValueError(
            f"centre point (t0={t0}, t_inf={t_inf}) is infeasible on this grid"
        )
    worst = center
    n_eval = 0
    for dk0 in range(-radius, radius + 1):
        for dki in range(-radius, radius + 1):
            value = cost_at(k0_c + dk0, ki_c + dki)
            if value is None:
                continue
            n_eval += 1
            worst = max(worst, value)
    return StabilityReport(
        t0=t0,
        t_inf=t_inf,
        cost_center=center,
        cost_max=worst,
        relative_diff=(worst - center) / center,
        n_evaluated=n_eval,
    )
