"""Cross-period transfer of optimised timeouts (§7.2, Table 6).

In practice a user must pick ``(t0, t∞)`` *before* submitting, using the
previous period's traces.  This module evaluates a set of parameter pairs
(each optimal for some period) against every period's latency model and
reports the ``E_J`` / ``Δcost`` each pair would have achieved — the
paper's argument that last week's optimum is at most a few percent off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.cost import delta_cost
from repro.core.model import GriddedLatencyModel
from repro.core.strategies.delayed import delayed_moments, n_parallel_for_latency

__all__ = ["TransferCell", "transfer_matrix"]


@dataclass(frozen=True)
class TransferCell:
    """Outcome of applying one period's timeouts to another period.

    Attributes
    ----------
    target:
        Period whose latency model is evaluated.
    source:
        Period whose optimal ``(t0, t∞)`` was applied.
    t0, t_inf:
        The applied timeouts (s).
    e_j:
        Expected total latency achieved (s).
    cost:
        ``Δcost`` against the *target* period's optimal single
        resubmission.
    """

    target: str
    source: str
    t0: float
    t_inf: float
    e_j: float
    cost: float


def transfer_matrix(
    models: Mapping[str, GriddedLatencyModel],
    params: Mapping[str, tuple[float, float]],
    singles: Mapping[str, float],
    *,
    targets: Sequence[str] | None = None,
) -> list[TransferCell]:
    """Evaluate every (target period × source parameters) combination.

    Parameters
    ----------
    models:
        Gridded latency model per period name.
    params:
        ``(t0, t∞)`` per source period (its own optimum).
    singles:
        Optimal single-resubmission ``E_J`` per period (for Eq. 6).
    targets:
        Subset of periods to evaluate (default: all in ``models``).

    Returns
    -------
    list[TransferCell]
        Cells in (target, source) iteration order; infeasible
        combinations (timeouts outside a period's grid) are skipped.
    """
    if not params:
        raise ValueError("need at least one source parameter pair")
    chosen = list(targets) if targets is not None else list(models)
    cells: list[TransferCell] = []
    for target in chosen:
        model = models[target]
        reference = singles[target]
        for source, (t0, t_inf) in params.items():
            try:
                moments = delayed_moments(model, t0, t_inf)
            except ValueError:
                continue
            e_j = moments.expectation
            n_par = float(n_parallel_for_latency(e_j, t0, t_inf))
            cells.append(
                TransferCell(
                    target=target,
                    source=source,
                    t0=t0,
                    t_inf=t_inf,
                    e_j=e_j,
                    cost=delta_cost(n_par, e_j, reference),
                )
            )
    if not cells:
        raise ValueError("no feasible (target, source) combination")
    return cells
