"""High-level planning API: from a trace to a recommended strategy.

Wraps the full pipeline the examples walk through manually — model the
trace, optimise every strategy family, apply the user's constraints
(infrastructure budget, deadline quantile) and rank the feasible
candidates — into one call::

    plan = repro.workflow.plan_submissions(trace, max_parallel=2.0)
    print(plan.render())
    strategy = plan.best.strategy      # ready-to-deploy parameters

This is the "integrated in the client side of the middleware to release
the users of this burden" endpoint the paper's introduction argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.distribution_of_j import strategy_quantile
from repro.core.model import GriddedLatencyModel
from repro.core.optimize import (
    optimize_delayed,
    optimize_delayed_cost,
    optimize_multiple,
    optimize_single,
)
from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    Strategy,
)
from repro.traces.dataset import TraceSet
from repro.util.grids import TimeGrid
from repro.util.tables import Table, format_float, format_seconds
from repro.util.validation import check_in_range

__all__ = ["StrategyCandidate", "SubmissionPlan", "plan_submissions"]


@dataclass(frozen=True)
class StrategyCandidate:
    """One evaluated strategy configuration.

    Attributes
    ----------
    name:
        Short label (``"single"``, ``"multiple b=3"``, …).
    strategy:
        The parameterised strategy object, ready to deploy.
    e_j:
        Expected total latency (s).
    sigma_j:
        Standard deviation of the total latency (s).
    n_parallel:
        Mean number of identical copies in flight.
    cost:
        ``Δcost`` against the optimal single resubmission.
    deadline:
        The requested quantile of ``J`` (s), if a deadline level was
        given (else ``nan``).
    """

    name: str
    strategy: Strategy
    e_j: float
    sigma_j: float
    n_parallel: float
    cost: float
    deadline: float = float("nan")


@dataclass
class SubmissionPlan:
    """Ranked feasible strategies plus the rejected ones (with reasons)."""

    candidates: list[StrategyCandidate]
    rejected: list[tuple[StrategyCandidate, str]] = field(default_factory=list)
    objective: str = "e_j"

    @property
    def best(self) -> StrategyCandidate:
        """The top-ranked feasible candidate."""
        if not self.candidates:
            raise ValueError(
                "no strategy satisfies the constraints; relax max_parallel "
                "or max_cost"
            )
        return self.candidates[0]

    def render(self) -> str:
        """Monospace comparison table (feasible first, then rejected)."""
        table = Table(
            title=f"submission plan (objective: minimise {self.objective})",
            columns=[
                "rank", "strategy", "E_J", "sigma_J", "N_//", "cost", "note",
            ],
        )
        for i, cand in enumerate(self.candidates, start=1):
            table.add_row(
                i,
                cand.strategy.describe(),
                format_seconds(cand.e_j),
                format_seconds(cand.sigma_j),
                format_float(cand.n_parallel, 2),
                format_float(cand.cost, 2),
                "",
            )
        for cand, reason in self.rejected:
            table.add_row(
                "-",
                cand.strategy.describe(),
                format_seconds(cand.e_j),
                format_seconds(cand.sigma_j),
                format_float(cand.n_parallel, 2),
                format_float(cand.cost, 2),
                f"rejected: {reason}",
            )
        return table.render()


def plan_submissions(
    trace: TraceSet | GriddedLatencyModel,
    *,
    max_parallel: float = 3.0,
    max_cost: float | None = None,
    objective: str = "e_j",
    deadline_quantile: float | None = None,
    b_values: tuple[int, ...] = (2, 3, 5),
    grid: TimeGrid | None = None,
    t0_window: tuple[float, float] = (60.0, 2500.0),
) -> SubmissionPlan:
    """Evaluate and rank the paper's strategies for a workload.

    Parameters
    ----------
    trace:
        A :class:`TraceSet` (modelled empirically) or an already gridded
        latency model.
    max_parallel:
        Infrastructure budget: candidates with mean parallel jobs above
        this are rejected.
    max_cost:
        Optional ``Δcost`` ceiling (e.g. 1.0 to demand win-win
        configurations only).
    objective:
        ``"e_j"`` (fastest), ``"cost"`` (lightest) or ``"sigma"``
        (most predictable).
    deadline_quantile:
        If given (e.g. 0.95), each candidate also reports that quantile
        of ``J`` and the ranking can use ``objective="deadline"``.
    b_values:
        Burst sizes to consider for the multiple strategy.
    grid:
        Evaluation grid (default: the paper's 1 s × 10,000 s).
    t0_window:
        Search window for the delayed strategy's ``t0``.
    """
    objectives = {"e_j", "cost", "sigma", "deadline"}
    if objective not in objectives:
        raise ValueError(f"objective must be one of {sorted(objectives)}")
    if objective == "deadline" and deadline_quantile is None:
        raise ValueError("objective='deadline' requires deadline_quantile")
    if deadline_quantile is not None:
        check_in_range(
            "deadline_quantile", deadline_quantile, 0.0, 1.0,
            inclusive=(False, False),
        )
    if max_parallel < 1.0:
        raise ValueError(f"max_parallel must be >= 1, got {max_parallel}")

    model = (
        trace
        if isinstance(trace, GriddedLatencyModel)
        else trace.to_latency_model().on_grid(grid)
    )

    single = optimize_single(model)
    candidates: list[StrategyCandidate] = []

    def evaluate(name: str, strategy: Strategy) -> StrategyCandidate:
        moments = strategy.moments(model)
        n_par = strategy.mean_parallel_jobs(model)
        deadline = (
            strategy_quantile(model, strategy, deadline_quantile)
            if deadline_quantile is not None
            else float("nan")
        )
        return StrategyCandidate(
            name=name,
            strategy=strategy,
            e_j=moments.expectation,
            sigma_j=moments.std,
            n_parallel=n_par,
            cost=n_par * moments.expectation / single.e_j,
            deadline=deadline,
        )

    candidates.append(
        evaluate("single", SingleResubmission(t_inf=single.t_inf))
    )
    for b in b_values:
        opt = optimize_multiple(model, b)
        candidates.append(
            evaluate(f"multiple b={b}", MultipleSubmission(b=b, t_inf=opt.t_inf))
        )
    fastest = optimize_delayed(
        model, t0_min=t0_window[0], t0_max=t0_window[1], e_j_single=single.e_j
    )
    candidates.append(
        evaluate(
            "delayed (fast)",
            DelayedResubmission(t0=fastest.t0, t_inf=fastest.t_inf),
        )
    )
    lightest = optimize_delayed_cost(
        model, single.e_j, t0_min=t0_window[0], t0_max=t0_window[1]
    )
    candidates.append(
        evaluate(
            "delayed (cheap)",
            DelayedResubmission(t0=lightest.t0, t_inf=lightest.t_inf),
        )
    )

    feasible: list[StrategyCandidate] = []
    rejected: list[tuple[StrategyCandidate, str]] = []
    for cand in candidates:
        if cand.n_parallel > max_parallel + 1e-9:
            rejected.append(
                (cand, f"N_// {cand.n_parallel:.2f} > budget {max_parallel}")
            )
        elif max_cost is not None and cand.cost > max_cost + 1e-9:
            rejected.append(
                (cand, f"cost {cand.cost:.2f} > ceiling {max_cost}")
            )
        else:
            feasible.append(cand)

    keyfuncs = {
        "e_j": lambda c: c.e_j,
        "cost": lambda c: c.cost,
        "sigma": lambda c: c.sigma_j,
        "deadline": lambda c: c.deadline if np.isfinite(c.deadline) else np.inf,
    }
    feasible.sort(key=keyfuncs[objective])
    return SubmissionPlan(
        candidates=feasible, rejected=rejected, objective=objective
    )
