"""Validation — analytic strategy moments vs Monte-Carlo replay.

Not a paper artifact: this experiment certifies our implementation by
replaying each strategy mechanically against sampled latencies and
comparing means/stds/N_// with the closed forms (Eqs. 1–5, §6.1).
"""

from __future__ import annotations

from repro.core.optimize import optimize_delayed, optimize_multiple
from repro.core.strategies import delayed_moments, multiple_moments, single_moments
from repro.core.strategies.delayed import mean_parallel_exact
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.montecarlo import (
    agreement_zscore,
    simulate_delayed,
    simulate_multiple,
    simulate_single,
)
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "val-mc"
TITLE = "Validation: analytic moments vs Monte-Carlo strategy replay"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    n_tasks: int = 30_000,
    seed: int = 77,
) -> ExperimentResult:
    """Replay all three strategies and compare with the closed forms."""
    if n_tasks < 100:
        raise ValueError(f"n_tasks must be >= 100, got {n_tasks}")
    ctx = ctx or get_context()
    gridded = ctx.model(week)
    model = gridded.model
    single = ctx.single_optimum(week)

    table = Table(
        title=TITLE,
        columns=[
            "strategy",
            "analytic E_J",
            "MC E_J",
            "z",
            "analytic sigma",
            "MC sigma",
            "analytic N_//",
            "MC N_//",
        ],
    )

    # single at its optimum
    mom = single_moments(gridded, single.t_inf)
    run_s = simulate_single(model, single.t_inf, n_tasks, rng=seed)
    table.add_row(
        f"single (t_inf={single.t_inf:.0f})",
        format_seconds(mom.expectation),
        format_seconds(run_s.mean_j),
        format_float(agreement_zscore(mom.expectation, run_s.j), 2),
        format_seconds(mom.std),
        format_seconds(run_s.std_j),
        "1.00",
        format_float(run_s.mean_parallel, 2),
    )

    zs = [agreement_zscore(mom.expectation, run_s.j)]
    for b in (2, 5):
        opt = optimize_multiple(gridded, b)
        mom = multiple_moments(gridded, b, opt.t_inf)
        run_m = simulate_multiple(model, b, opt.t_inf, n_tasks, rng=seed + b)
        z = agreement_zscore(mom.expectation, run_m.j)
        zs.append(z)
        table.add_row(
            f"multiple b={b} (t_inf={opt.t_inf:.0f})",
            format_seconds(mom.expectation),
            format_seconds(run_m.mean_j),
            format_float(z, 2),
            format_seconds(mom.std),
            format_seconds(run_m.std_j),
            format_float(float(b), 2),
            format_float(run_m.mean_parallel, 2),
        )

    opt_d = optimize_delayed(gridded, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1])
    mom = delayed_moments(gridded, opt_d.t0, opt_d.t_inf)
    exact_n = mean_parallel_exact(gridded, opt_d.t0, opt_d.t_inf)
    run_d = simulate_delayed(model, opt_d.t0, opt_d.t_inf, n_tasks, rng=seed + 100)
    z = agreement_zscore(mom.expectation, run_d.j)
    zs.append(z)
    table.add_row(
        f"delayed (t0={opt_d.t0:.0f}, t_inf={opt_d.t_inf:.0f})",
        format_seconds(mom.expectation),
        format_seconds(run_d.mean_j),
        format_float(z, 2),
        format_seconds(mom.std),
        format_seconds(run_d.std_j),
        format_float(exact_n, 3),
        format_float(run_d.mean_parallel, 3),
    )

    notes = [
        f"max |z| across strategies: {max(zs):.2f} (all < 4 at "
        f"n = {n_tasks} replays — the closed forms are exact)",
        "delayed N_// uses the exact E[N_//(J)] (our extension); the MC "
        "column replays the paper's time-average definition",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
