"""Extension — the strategy frontier when the *middleware* is the fault.

The paper's fault model (and every prior extension here) breaks jobs
and sites; the submission path itself is assumed reliable.  Production
incident logs say otherwise: WMS instances go down with the machine
rooms that host them, and gLite's at-least-once submission semantics
mean a retried submit can silently land twice.  This experiment throws
a middleware storm regime — every storm downs a broker (black-hole
mode) *together with* a site subset, on top of a flaky submission path
— at the single / multiple / delayed frontier, and crosses it with the
client-side answer: a retry policy with capped jittered backoff and
per-broker circuit breakers failing over across the federation.

The headline question mirrors :mod:`repro.experiments.grid_weather`,
one layer down the stack: does *client-side* resilience change which
*user-side* strategy is optimal?  Without retries, a swallowed submit
costs the user a full ``t_inf`` timeout — burst submission hedges that.
With failover landing the copy on the surviving broker within seconds,
the burst's job bill may stop paying for itself.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.experiments.base import ExperimentResult
from repro.gridsim import (
    BrokerConfig,
    FaultModel,
    GridConfig,
    RetryPolicy,
    SiteConfig,
    StormConfig,
    SubmitFaultConfig,
    WeatherConfig,
    run_strategy_on_grid,
    warmed_snapshot,
)
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run", "broker_storm_grid_config"]

EXPERIMENT_ID = "broker-storm"
TITLE = "Extension: submission strategies under middleware storms and failover"


def broker_storm_grid_config() -> GridConfig:
    """A 6-site, 140-core grid federated across two brokers.

    Same site fabric as the grid-weather experiment, split between two
    brokers so failover has somewhere to go; zero ranking noise for the
    same worst-case reasons.  Weather and resilience are layered on by
    the regime loop, not baked in here.
    """
    cores = (8, 12, 16, 24, 32, 48)
    sites = tuple(
        SiteConfig(
            f"ce{i}",
            c,
            utilization=0.80,
            runtime_median=3600.0,
            runtime_sigma=0.8,
        )
        for i, c in enumerate(cores)
    )
    return GridConfig(
        sites=sites,
        matchmaking_median=45.0,
        ranking_noise=0.0,
        faults=FaultModel(p_lost=0.03, p_stuck=0.03),
        brokers=(
            BrokerConfig(name="wms-a", sites=("ce0", "ce1", "ce2")),
            BrokerConfig(name="wms-b", sites=("ce3", "ce4", "ce5")),
        ),
    )


#: the middleware storm: every storm downs one broker (black-hole mode)
#: with the site subset — a shared machine-room failure
_STORM_WEATHER = WeatherConfig(
    storm=StormConfig(
        mean_interval=3 * 3600.0,
        mean_duration=1800.0,
        subset_size=2,
        kill_running=0.5,
        broker_prob=1.0,
        broker_mode="black-hole",
    )
)

#: flaky submission path rode along with the storms: 15% of attempts
#: error client-side, and half of those actually landed (duplicates on
#: retry)
_STORM_FAULTS = SubmitFaultConfig(p_fail=0.15, p_landed=0.5)

#: the client-side answer: 4 attempts, 30s..600s jittered backoff, 120s
#: submit timeout, breakers tripping after 2 failures for 15 min
_RETRY = RetryPolicy(
    max_attempts=4,
    backoff_base=30.0,
    backoff_max=600.0,
    submit_timeout=120.0,
    breaker_threshold=2,
    breaker_reset=900.0,
)


def run(
    ctx=None,
    *,
    seed: int = 47,
    n_tasks: int = 400,
    runtime: float = 600.0,
    task_interval: float = 20.0,
    job_cost: float = 60.0,
    warm: float = 6 * 3600.0,
) -> ExperimentResult:
    """Cross the strategy frontier with middleware storms and failover.

    2×2 cells — (calm, broker-storm) × (retry off, retry on) — each
    restoring its config's warmed snapshot so strategies within a cell
    face bit-identical grids.  Note the calm×retry cell is *not* a
    no-op on this federated grid: resilient clients take one attempt
    per copy, so bursts spread round-robin across the brokers instead
    of pinning to one (the exact zero-fault parity law holds on
    single-broker grids — see ``tests/test_chaos.py``).
    """
    if n_tasks < 10:
        raise ValueError(f"n_tasks must be >= 10, got {n_tasks}")
    if not job_cost >= 0.0:
        raise ValueError(f"job_cost must be >= 0, got {job_cost!r}")
    base = broker_storm_grid_config()
    strategies = (
        ("single", SingleResubmission(t_inf=4000.0)),
        ("multiple b=3", MultipleSubmission(b=3, t_inf=4000.0)),
        ("delayed", DelayedResubmission(t0=1500.0, t_inf=3000.0)),
    )

    frontier = Table(
        title=TITLE,
        columns=[
            "regime",
            "resilience",
            *(f"{name} J (jobs)" for name, _ in strategies),
            "best U",
        ],
    )
    telemetry = Table(
        title="Middleware telemetry (single-submission campaign)",
        columns=[
            "regime",
            "resilience",
            "broker outages",
            "submits",
            "rejects",
            "failovers",
            "breaker trips",
            "dups (reconciled)",
        ],
    )
    regimes = (
        ("calm", None, None),
        ("broker storm", _STORM_WEATHER, _STORM_FAULTS),
    )
    best_by: dict[tuple[str, bool], str] = {}
    for regime, weather, submit_faults in regimes:
        for resilient in (False, True):
            config = replace(
                base,
                weather=weather,
                submit_faults=submit_faults,
                retry=_RETRY if resilient else None,
            )
            snap = warmed_snapshot(config, seed=seed, duration=warm)
            utility: dict[str, float] = {}
            cells: list[str] = []
            for name, strategy in strategies:
                grid = snap.restore()
                out = run_strategy_on_grid(
                    grid,
                    strategy,
                    n_tasks,
                    task_interval=task_interval,
                    runtime=runtime,
                )
                mean_j = out.mean_j if out.j.size else float("inf")
                utility[name] = mean_j + job_cost * out.mean_jobs
                cells.append(
                    f"{format_seconds(mean_j)} ({format_float(out.mean_jobs, 2)})"
                )
                if name == "single":
                    report = grid.weather_report()
            best = min(utility, key=utility.get)
            best_by[(regime, resilient)] = best
            frontier.add_row(
                regime,
                "retry+failover" if resilient else "off",
                *cells,
                f"{best} ({utility[best]:.0f}s)",
            )
            brokers = report.get("brokers", {})
            dups = report.get("duplicates", {})
            telemetry.add_row(
                regime,
                "retry+failover" if resilient else "off",
                sum(b.get("outages", 0) for b in brokers.values()),
                sum(b.get("submits", 0) for b in brokers.values()),
                sum(b.get("rejects", 0) for b in brokers.values()),
                sum(b.get("failovers", 0) for b in brokers.values()),
                sum(b.get("breaker_trips", 0) for b in brokers.values()),
                f"{dups.get('created', 0)} ({dups.get('reconciled', 0)})",
            )

    flips = [
        regime
        for regime, _, _ in regimes
        if best_by[(regime, False)] != best_by[(regime, True)]
    ]
    notes = [
        f"{n_tasks} tasks per cell, payload {runtime:.0f}s, launches every "
        f"{task_interval:.0f}s; every cell forks its config's "
        f"{warm / 3600.0:.0f}h-warmed snapshot, so strategies within a cell "
        "face bit-identical grids",
        f"U = E(J) + c*E(jobs/task) with c = {job_cost:.0f}s per-job "
        "handling charge, as in the grid-weather frontier",
        "broker-storm regime: storms every ~3h down 2 sites plus one "
        "broker together (black-hole mode: submissions vanish until the "
        "client's submit timeout) for ~30min, and 15% of submit attempts "
        "error client-side with half of those silently landing — "
        "duplicates on retry, reconciled by sibling-cancel",
        "resilience: <=4 attempts per copy, 30-600s jittered backoff, "
        "120s submit timeout, per-broker breakers (trip after 2 "
        "failures, 15min reset) failing over to the surviving broker",
        "calm/retry differs from calm/off by design: resilient clients "
        "attempt each copy separately, so bursts spread round-robin "
        "across both brokers instead of pinning to one — already a "
        "frontier shift before any fault fires",
    ]
    if flips:
        notes.append(
            "client-side resilience changes the optimal user-side "
            "strategy under: "
            + "; ".join(
                f"{regime} ({best_by[(regime, False)]} -> "
                f"{best_by[(regime, True)]})"
                for regime in flips
            )
        )
    else:
        notes.append(
            "no regime flipped its optimal strategy under client-side "
            "resilience at these settings"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[frontier, telemetry],
        notes=notes,
    )
