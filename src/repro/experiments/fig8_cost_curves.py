"""Figure 8 — ``Δcost`` vs mean parallel jobs for both strategies (§7).

The paper's Fig. 8 (2006-IX): the multiple-submission cost rises with
``b`` (all values > 1 beyond b=1), while the delayed-submission curve
dips *below 1* at small N_// — the existence of win-win configurations
(faster for the user **and** lighter for the infrastructure).

Three curves are regenerated:

* ``multiple`` — Δcost at the E_J-optimal timeout per burst size;
* ``delayed (min-E_J per ratio)`` — the paper's Table-3 path: for each
  imposed ratio, the E_J-minimising ``(t0, t∞)``;
* ``delayed (cost frontier)`` — the minimal Δcost achievable at each
  N_// level (full 2-D sweep, binned by N_//), which exposes the sub-1
  dip even when the min-E_J path misses it (a shape difference between
  our synthetic body and the EGEE ECDF, see notes).
"""

from __future__ import annotations

import numpy as np

from repro.core.cost import cost_curve_delayed, cost_curve_multiple
from repro.core.strategies.delayed import delayed_cost_bands
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.experiments.table3_delayed_ratio import RATIOS
from repro.util.series import Series, SeriesBundle

__all__ = ["run", "delayed_cost_frontier"]

EXPERIMENT_ID = "fig8"
TITLE = "Figure 8: delta_cost vs mean number of parallel jobs"


def delayed_cost_frontier(
    model,
    e_j_single: float,
    *,
    t0_min: float = T0_WINDOW[0],
    t0_max: float = T0_WINDOW[1],
    stride: int = 8,
    bin_width: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Minimal ``Δcost`` per ``N_//`` bin over the full (t0, t∞) sweep.

    Returns (bin centres, minimal cost per bin) for non-empty bins.
    """
    grid = model.grid
    lo = max(2, grid.index_of(t0_min))
    hi = min(grid.n - 1, grid.index_of(t0_max))
    k0v = np.arange(lo, hi + 1, max(1, stride))
    # the whole (t0, t∞) sweep in one batched surface request
    costs, n_par = delayed_cost_bands(model, k0v, e_j_single)
    finite = np.isfinite(costs)
    if not finite.any():
        return np.empty(0), np.empty(0)
    keys = (n_par[finite] / bin_width).astype(np.int64)
    vals = costs[finite]
    order = np.argsort(keys, kind="stable")
    keys, vals = keys[order], vals[order]
    starts = np.flatnonzero(np.r_[True, np.diff(keys) > 0])
    y = np.minimum.reduceat(vals, starts)
    x = (keys[starts] + 0.5) * bin_width
    return x, y


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    b_max: int = 5,
) -> ExperimentResult:
    """Regenerate Fig. 8's cost curves."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    single = ctx.single_optimum(week)

    delayed_points = cost_curve_delayed(model, list(RATIOS), single.e_j)
    delayed_points.sort(key=lambda p: p.n_parallel)
    dx = np.array([p.n_parallel for p in delayed_points])
    dy = np.array([p.cost for p in delayed_points])

    fx, fy = delayed_cost_frontier(model, single.e_j)

    multi_points = cost_curve_multiple(
        model, list(range(1, b_max + 1)), single.e_j
    )
    mx = np.array([p.n_parallel for p in multi_points])
    my = np.array([p.cost for p in multi_points])

    bundle = SeriesBundle(
        title=f"{TITLE} [{week}]",
        x_label="nb. of jobs in parallel (N_//)",
        y_label="delta_cost",
    )
    bundle.add(Series("delayed (min-E_J per ratio)", dx, dy))
    bundle.add(Series("delayed (cost frontier)", fx, fy))
    bundle.add(Series("multiple submissions strategy", mx, my))

    notes = [
        f"multiple-submission costs increase with b and exceed 1 for "
        f"b >= 2: {my[1]:.2f} at b=2 (paper: 1.3)",
        f"the delayed cost frontier dips to {float(fy.min()):.2f} < 1 at "
        f"N_// = {float(fx[int(np.argmin(fy))]):.2f} — the paper's "
        "win-win region (paper minimum: 0.94 on the ratio path, 0.93 "
        "globally)",
        f"on the min-E_J-per-ratio path our synthetic model stays at "
        f"{float(dy.min()):.2f} (paper: 0.94): our calibrated body makes "
        "the E_J-optimal t0 smaller than E_J, so N_// > 1 on that path — "
        "a shape difference, not a qualitative one (the frontier shows "
        "the sub-1 region exists and is reached at t0 ≈ E_J, exactly "
        "like the paper's global optimum t0 = 439s ≈ E_J = 439s)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, figures=[bundle], notes=notes
    )
