"""Table 1 — per-period latency statistics and single-resubmission moments.

For each of the 13 trace sets: the trace statistics (non-outlier mean,
bounded mean, σ_R) and the Eq. (1)–(2) moments at the optimal timeout
(E_J, σ_J, Δσ = σ_J/σ_R - 1).  Paper reference values are carried along
for the E_J/σ columns so drift is visible at a glance.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.traces.paper import PAPER_TABLE1
from repro.util.tables import Table, format_percent, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "table1"
TITLE = "Table 1: mean and standard deviation of latency (R) and of J"


def run(ctx: ReproContext | None = None) -> ExperimentResult:
    """Regenerate Table 1 over all synthesized trace sets."""
    ctx = ctx or get_context()
    table = Table(
        title=TITLE,
        columns=[
            "week",
            "mean <10^5",
            "mean with 10^5",
            "E_J",
            "sigma_R",
            "sigma_J",
            "d_sigma",
            "paper E_J",
            "paper sigma_J",
        ],
    )
    worst_rel_err = 0.0
    for week in ctx.weeks:
        trace = ctx.traces[week]
        opt = ctx.single_optimum(week)
        sigma_r = trace.std_latency()
        d_sigma = opt.sigma_j / sigma_r - 1.0
        ref = PAPER_TABLE1[week]
        worst_rel_err = max(worst_rel_err, abs(opt.e_j - ref.e_j) / ref.e_j)
        table.add_row(
            week,
            format_seconds(trace.mean_latency()),
            format_seconds(trace.bounded_mean_latency()),
            format_seconds(opt.e_j),
            format_seconds(sigma_r),
            format_seconds(opt.sigma_j),
            format_percent(d_sigma, 0),
            format_seconds(ref.e_j),
            format_seconds(ref.sigma_j),
        )
    notes = [
        "E_J is Eq.(1) at the optimal timeout; the paper's key qualitative "
        "findings hold: E_J is of the order of the non-outlier mean and "
        "far below the bounded mean, and sigma_J < sigma_R for every "
        "period with meaningful variability.",
        f"worst relative E_J deviation from the paper: {worst_rel_err:.1%} "
        "(driven by the synthetic body shape, see DESIGN.md).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
