"""Common experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.series import SeriesBundle
from repro.util.tables import Table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Everything a reproduced table/figure produces.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"table2"``.
    title:
        Human-readable description referencing the paper artifact.
    tables:
        Regenerated tables (paper-style rows, possibly with reference
        columns).
    figures:
        Regenerated figure data as labelled series bundles.
    notes:
        Free-form observations (paper-vs-measured commentary).
    """

    experiment_id: str
    title: str
    tables: list[Table] = field(default_factory=list)
    figures: list[SeriesBundle] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Monospace report: all tables, figure summaries and notes."""
        parts = [f"=== {self.experiment_id}: {self.title} ==="]
        for table in self.tables:
            parts.append(table.render())
        for fig in self.figures:
            parts.append(fig.render())
        if self.notes:
            parts.append("notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n\n".join(parts)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
