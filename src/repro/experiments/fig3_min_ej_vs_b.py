"""Figure 3 — minimal ``E_J`` and associated ``σ_J`` vs b, all datasets.

Both panels of the paper's Fig. 3: for every trace set, the optimal-
timeout ``E_J`` and its ``σ_J`` as functions of the burst size b = 1…10.
All curves must decrease with b and flatten — the multi-dataset
confirmation of Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimize import optimize_multiple
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.util.series import Series, SeriesBundle

__all__ = ["run"]

EXPERIMENT_ID = "fig3"
TITLE = "Figure 3: minimal E_J and sigma_J vs number of parallel jobs"


def run(ctx: ReproContext | None = None, *, b_max: int = 10) -> ExperimentResult:
    """Regenerate both Fig. 3 panels over all trace sets."""
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    ctx = ctx or get_context()
    bs = np.arange(1, b_max + 1, dtype=np.float64)

    ej_bundle = SeriesBundle(
        title=f"{TITLE} — E_J panel",
        x_label="number of jobs in parallel (b)",
        y_label="minimal E_J (s)",
    )
    sj_bundle = SeriesBundle(
        title=f"{TITLE} — sigma_J panel",
        x_label="number of jobs in parallel (b)",
        y_label="sigma_J at the optimum (s)",
    )
    for week in ctx.weeks:
        model = ctx.model(week)
        optima = [optimize_multiple(model, int(b)) for b in bs]
        ej_bundle.add(Series(week, bs, np.array([o.e_j for o in optima])))
        sj_bundle.add(Series(week, bs, np.array([o.sigma_j for o in optima])))

    decreasing = all(
        np.all(np.diff(s.y) <= 1e-9) for s in ej_bundle.series
    )
    notes = [
        f"all {len(ej_bundle)} E_J curves are monotonically decreasing in b: "
        f"{decreasing} (paper: 'the decreasing curves confirm the previous "
        "observations').",
        "sigma_J decreases with b for every dataset — redundancy "
        "concentrates J around its mean.",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=[ej_bundle, sj_bundle],
        notes=notes,
    )
