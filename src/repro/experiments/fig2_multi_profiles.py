"""Figure 2 — ``E_J(t∞)`` profiles of the multiple submission, b = 1…10.

The paper's Fig. 2 (2006-IX) shows: higher ``b`` lowers the whole
profile, the minimum shifts, and the post-minimum slope flattens with
``b``.  We regenerate the ten profiles from Eq. (3).
"""

from __future__ import annotations

import numpy as np

from repro.core.strategies import multiple_expectation_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.util.series import Series, SeriesBundle

__all__ = ["run"]

EXPERIMENT_ID = "fig2"
TITLE = "Figure 2: expectation of execution time vs timeout, b=1..10"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    b_max: int = 10,
    t_cap: float = 2000.0,
) -> ExperimentResult:
    """Regenerate Fig. 2: one ``E_J(t∞)`` series per burst size."""
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    ctx = ctx or get_context()
    model = ctx.model(week)
    keep = model.times <= t_cap
    t = model.times[keep]

    bundle = SeriesBundle(
        title=f"{TITLE} [{week}]",
        x_label="timeout value t_inf (s)",
        y_label="E_J (s)",
    )
    minima: list[str] = []
    for b in range(1, b_max + 1):
        sweep = multiple_expectation_sweep(model, b)[keep]
        finite = np.where(np.isfinite(sweep), sweep, np.nan)
        bundle.add(Series(f"b={b}", t, finite))
        k = int(np.nanargmin(finite))
        minima.append(f"b={b}: min E_J = {finite[k]:.0f}s at t_inf = {t[k]:.0f}s")

    notes = [
        "profiles shift down and flatten past the minimum as b grows "
        "(paper: same qualitative structure).",
        *minima[:4],
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, figures=[bundle], notes=notes
    )
