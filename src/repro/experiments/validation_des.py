"""Validation — the modeling pipeline against the discrete-event grid.

The full production workflow: measure probe latencies on the simulated
grid (the §3.2 protocol), fit the empirical latency model, optimise the
strategies analytically, then *execute* each strategy mechanically on a
fresh grid with the same seed and compare realised vs predicted ``E_J``.
The analytic model sees only probe data, the executor sees only the grid
— agreement means the paper's methodology (model from probes → deploy
strategy) is sound on a mechanistic substrate.
"""

from __future__ import annotations

from repro.core.optimize import optimize_multiple, optimize_single
from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.experiments.base import ExperimentResult
from repro.gridsim import (
    ProbeExperiment,
    default_grid_config,
    run_strategy_batch,
    warmed_grid,
    warmed_snapshot,
)
from repro.util.grids import TimeGrid
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "val-des"
TITLE = "Validation: analytic predictions vs strategies executed on the DES grid"


def run(
    ctx=None,
    *,
    seed: int = 17,
    probe_days: float = 2.0,
    n_tasks: int = 120,
    jobs: int | None = None,
) -> ExperimentResult:
    """Probe the grid, model it, predict strategy gains, verify by execution.

    ``jobs`` fans the three independent strategy executions out over a
    process pool (default: ``REPRO_INTRA_JOBS`` or sequential); every
    execution forks the same warmed snapshot, so the rendered output is
    byte-identical either way.
    """
    if n_tasks < 10:
        raise ValueError(f"n_tasks must be >= 10, got {n_tasks}")
    config = default_grid_config()

    # 1. measurement campaign (paper §3.2) on a warmed-up grid; the
    # 12-hour warm-up is paid once — the strategy executions below fork
    # bit-identical clones of the same warmed master
    grid = warmed_grid(config, seed=seed, duration=12 * 3600.0)
    trace = ProbeExperiment(grid, n_slots=20, timeout=6000.0).run(
        probe_days * 86_400.0
    )
    model = trace.to_latency_model().on_grid(TimeGrid(t_max=6000.0, dt=1.0))

    # 2. analytic optimisation on the fitted model
    single = optimize_single(model)
    multi3 = optimize_multiple(model, 3)
    t0_d = model.grid.time_of(model.index_of(max(single.t_inf * 0.8, 60.0)))
    delayed = DelayedResubmission(t0=t0_d, t_inf=min(2 * t0_d, 1.5 * t0_d + 100))
    strategies = {
        "single": (SingleResubmission(t_inf=single.t_inf), single.e_j),
        "multiple b=3": (
            MultipleSubmission(b=3, t_inf=multi3.t_inf),
            multi3.e_j,
        ),
        "delayed": (delayed, delayed.expectation(model)),
    }

    # 3. mechanical execution on fresh same-seed grids (identical
    # workload): the three executions are independent forks of the same
    # warmed snapshot, so they fan out over a process pool when asked
    table = Table(
        title=TITLE,
        columns=[
            "strategy",
            "predicted E_J",
            "realised E_J",
            "ratio",
            "jobs/task",
            "gave up",
        ],
    )
    snap = warmed_snapshot(config, seed=seed, duration=12 * 3600.0)
    outcomes = run_strategy_batch(
        snap,
        [
            (strategy, n_tasks, dict(task_interval=400.0, runtime=120.0))
            for strategy, _ in strategies.values()
        ],
        jobs=jobs,
    )
    ratios = []
    for (name, (_, predicted)), (outcome, _) in zip(strategies.items(), outcomes):
        ratio = outcome.mean_j / predicted
        ratios.append((name, ratio))
        table.add_row(
            name,
            format_seconds(predicted),
            format_seconds(outcome.mean_j),
            format_float(ratio, 2),
            format_float(outcome.mean_jobs, 2),
            outcome.gave_up,
        )

    notes = [
        f"probe campaign: {len(trace)} probes, rho = "
        f"{trace.outlier_ratio:.3f}, mean latency "
        f"{trace.mean_latency():.0f}s",
        "predicted/realised ratios near 1 validate the paper's workflow "
        "(probe-based model -> client-side strategy) on a mechanistic "
        "grid; residual gaps reflect the grid's nonstationarity, which "
        "the stationary model cannot capture",
        "ordering check: "
        + ", ".join(f"{n}: x{r:.2f}" for n, r in ratios),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
