"""Table 3 — delayed strategy with the ratio ``t∞/t0`` imposed (§6.2).

For each ratio in 1.1 … 2.0: the optimal ``(t0, t∞)``, the minimal
``E_J``, the plug-in ``N_//`` and the improvement over single
resubmission.  The paper's qualitative claims: every ratio improves on
single resubmission, and the best E_J sits at an intermediate ratio.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimize import optimize_delayed_ratio_sweep
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.util.tables import Table, format_float, format_percent, format_seconds

__all__ = ["run", "RATIOS", "PAPER_TABLE3"]

EXPERIMENT_ID = "table3"
TITLE = "Table 3: delayed resubmission with imposed ratio t_inf/t0 (2006-IX)"

#: the ratios studied in the paper's Table 3
RATIOS: tuple[float, ...] = (1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7, 1.8, 1.9, 2.0)

#: paper values: ratio -> (N_//, best t_inf, best t0, min E_J, delta vs 471s)
PAPER_TABLE3: dict[float, tuple[float, float, float, float, float]] = {
    1.1: (1.0, 556.0, 505.0, 458.0, -0.027),
    1.2: (1.0, 556.0, 463.0, 447.0, -0.050),
    1.3: (1.07, 528.0, 406.0, 438.0, -0.069),
    1.4: (1.18, 496.0, 354.0, 432.0, -0.082),
    1.5: (1.32, 445.0, 297.0, 434.0, -0.077),
    1.6: (1.37, 435.0, 272.0, 444.0, -0.056),
    1.7: (1.39, 431.0, 254.0, 457.0, -0.029),
    1.8: (1.41, 426.0, 237.0, 462.0, -0.019),
    1.9: (1.47, 425.0, 224.0, 466.0, -0.010),
    2.0: (1.45, 423.0, 211.0, 469.0, -0.005),
}


def run(ctx: ReproContext | None = None, *, week: str = "2006-IX") -> ExperimentResult:
    """Regenerate Table 3 for the given trace set."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    single = ctx.single_optimum(week)

    table = Table(
        title=TITLE,
        columns=[
            "t_inf/t0",
            "N_//",
            "best t_inf",
            "best t0",
            "min E_J",
            "delta vs single",
            "paper E_J",
        ],
    )
    deltas = []
    optima = optimize_delayed_ratio_sweep(  # whole ratio column, one surface
        model,
        RATIOS,
        t0_min=T0_WINDOW[0],
        t0_max=T0_WINDOW[1],
        e_j_single=single.e_j,
    )
    for ratio, opt in zip(RATIOS, optima):
        delta = opt.e_j / single.e_j - 1.0
        deltas.append(delta)
        ref = PAPER_TABLE3.get(ratio)
        table.add_row(
            f"{ratio:.1f}",
            format_float(opt.n_parallel, 2),
            format_seconds(opt.t_inf),
            format_seconds(opt.t0),
            format_seconds(opt.e_j),
            format_percent(delta, 1),
            format_seconds(ref[3]) if ref else "",
        )

    all_below = all(d < 0 for d in deltas)
    best_ratio = RATIOS[int(np.argmin(deltas))]
    notes = [
        f"single resubmission reference: E_J = {single.e_j:.0f}s "
        "(paper: 471s)",
        f"every imposed ratio improves on single resubmission: {all_below} "
        "(paper: 'All E_J values are below E_J from the single "
        "resubmission strategy')",
        f"best ratio by E_J: {best_ratio:.1f} "
        "(paper's E_J minimum sits at ratio 1.4)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
