"""Figure 5 — ``E_J(t0, t∞)`` surface of the delayed strategy (2006-IX).

The paper plots the surface and reports its minimum at
``t0 = 339 s, t∞ = 485 s, E_J = 431 s``.  We regenerate the surface as a
family of ``t0``-slices plus the global minimum found by the sweep
optimiser.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimize import optimize_delayed
from repro.core.strategies import delayed_expectation_surface
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.util.series import Series, SeriesBundle

__all__ = ["run"]

EXPERIMENT_ID = "fig5"
TITLE = "Figure 5: E_J(t0, t_inf) surface, delayed resubmission"

#: the paper's reported optimum on 2006-IX
PAPER_OPTIMUM = {"t0": 339.0, "t_inf": 485.0, "e_j": 431.0}


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    n_slices: int = 8,
) -> ExperimentResult:
    """Regenerate the Fig. 5 surface (as ``t0`` slices) and its minimum."""
    if n_slices < 2:
        raise ValueError(f"n_slices must be >= 2, got {n_slices}")
    ctx = ctx or get_context()
    model = ctx.model(week)
    single = ctx.single_optimum(week)

    opt = optimize_delayed(
        model, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1], e_j_single=single.e_j
    )

    bundle = SeriesBundle(
        title=f"{TITLE} [{week}]",
        x_label="t_inf (s)",
        y_label="E_J (s)",
    )
    t0_values = np.linspace(
        max(100.0, 0.5 * opt.t0), min(2.5 * opt.t0, T0_WINDOW[1]), n_slices
    )
    k0s = [model.index_of(float(t0)) for t0 in t0_values]
    surface = delayed_expectation_surface(model, k0s)  # all slices, one call
    for k0, sweep in zip(k0s, surface):
        ks = np.arange(k0, min(2 * k0, model.grid.n - 1) + 1)
        bundle.add(
            Series(
                f"t0={model.grid.time_of(k0):.0f}s",
                model.times[ks],
                sweep[ks],
            )
        )

    notes = [
        f"surface minimum: t0 = {opt.t0:.0f}s, t_inf = {opt.t_inf:.0f}s, "
        f"E_J = {opt.e_j:.0f}s "
        f"(paper: t0 = {PAPER_OPTIMUM['t0']:.0f}s, "
        f"t_inf = {PAPER_OPTIMUM['t_inf']:.0f}s, "
        f"E_J = {PAPER_OPTIMUM['e_j']:.0f}s)",
        f"the minimum beats single resubmission ({single.e_j:.0f}s) by "
        f"{1 - opt.e_j / single.e_j:.1%} (paper: 8.3%) while keeping "
        f"N_// = {opt.n_parallel:.2f} (paper: 1.2)",
        "the surface is bowl-shaped with a shallow valley along "
        "t_inf — matching the paper's Fig. 5 profile",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, figures=[bundle], notes=notes
    )
