"""Extension — what if many users adopt the same strategy? (paper §8)

The paper's stated future work: "the impact of all grid users exploiting
the same strategy can be simulated in a controlled environment."  This
experiment does exactly that on the DES grid: fleets of increasing size
all run the multiple-submission strategy concurrently on a *small* grid
(so the client-induced load is material), and we measure how the
realised latency responds — the feedback loop the analytic model
deliberately ignores (§3.3 assumes additional jobs have no measurable
impact on the grid workload).
"""

from __future__ import annotations

from repro.core.optimize import optimize_delayed
from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW
from repro.gridsim import (
    FaultModel,
    GridConfig,
    SiteConfig,
    run_strategy_batch,
    warmed_snapshot,
)
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run", "adoption_grid_config"]

EXPERIMENT_ID = "abl-adopt"
TITLE = "Extension: fleet adoption of the multiple-submission strategy"


def adoption_grid_config() -> GridConfig:
    """A deliberately small grid (~100 cores) so fleet load is material."""
    return GridConfig(
        sites=(
            SiteConfig("a", 16, utilization=0.85, runtime_median=2400.0),
            SiteConfig("b", 24, utilization=0.85, runtime_median=3600.0),
            SiteConfig("c", 32, utilization=0.80, runtime_median=1800.0),
            SiteConfig("d", 16, utilization=0.90, runtime_median=3000.0),
            SiteConfig("e", 12, utilization=0.85, runtime_median=2400.0),
        ),
        matchmaking_median=45.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )


def run(
    ctx=None,
    *,
    seed: int = 23,
    fleet_sizes: tuple[int, ...] = (25, 100, 400),
    b: int = 3,
    runtime: float = 1800.0,
    window: float = 6 * 3600.0,
    jobs: int | None = None,
) -> ExperimentResult:
    """Sweep the number of tasks concurrently using burst submission.

    Each fleet size runs on a fresh same-seed grid; tasks arrive inside a
    fixed window, so larger fleets inject proportionally more load.  A
    single-submission fleet of the largest size is the control.

    All fleets fork the same 4-hour-warmed snapshot (identical to warming
    a fresh same-seed grid, paid once) and are fully independent, so with
    ``jobs > 1`` (default: ``REPRO_INTRA_JOBS``) they fan out over a
    process pool with byte-identical output.
    """
    if b < 1:
        raise ValueError(f"b must be >= 1, got {b}")
    config = adoption_grid_config()

    table = Table(
        title=TITLE,
        columns=[
            "fleet",
            "strategy",
            "mean J",
            "jobs/task",
            "queued at end",
            "gave up",
        ],
    )

    fleets: list[tuple[int, object, str]] = [
        (fleet_sizes[-1], SingleResubmission(t_inf=4000.0), "single (control)")
    ]
    fleets += [
        (n, MultipleSubmission(b=b, t_inf=4000.0), f"multiple b={b}")
        for n in fleet_sizes
    ]
    if ctx is not None:
        # paper-calibrated delayed fleet: the whole (t0, t∞) surface of the
        # 2006-IX analytic model in one batched request, scaled to this
        # grid's latency regime, executed mechanistically at the top fleet
        opt = optimize_delayed(
            ctx.model("2006-IX"), t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
        )
        scale = max(1.0, 4000.0 / opt.t_inf)
        fleets.append(
            (
                fleet_sizes[-1],
                DelayedResubmission(t0=scale * opt.t0, t_inf=scale * opt.t_inf),
                f"delayed (t0={scale * opt.t0:.0f}s)",
            )
        )

    snap = warmed_snapshot(config, seed=seed, duration=4 * 3600.0)
    outcomes = run_strategy_batch(
        snap,
        [
            (
                strategy,
                n_tasks,
                dict(
                    task_interval=window / n_tasks,
                    runtime=runtime,
                    horizon=window + 100_000.0,
                ),
            )
            for n_tasks, strategy, _ in fleets
        ],
        jobs=jobs,
    )
    for (n_tasks, _, label), (outcome, queued_at_end) in zip(fleets, outcomes):
        table.add_row(
            n_tasks,
            label,
            format_seconds(outcome.mean_j),
            format_float(outcome.mean_jobs, 2),
            queued_at_end,
            outcome.gave_up,
        )

    control = outcomes[0][0].mean_j
    means = [o.mean_j for o, _ in outcomes[1 : 1 + len(fleet_sizes)]]

    erosion = means[-1] / means[0]
    notes = [
        f"burst users beat the same-size single-submission fleet "
        f"(control mean J = {control:.0f}s vs {means[-1]:.0f}s for "
        f"burst at fleet {fleet_sizes[-1]})",
        f"but the advantage erodes with adoption: mean J grows x{erosion:.1f} "
        f"from fleet {fleet_sizes[0]} to fleet {fleet_sizes[-1]} "
        "(" + ", ".join(f"fleet {n}: {m:.0f}s" for n, m in zip(fleet_sizes, means)) + ") "
        "— the §3.3 no-feedback assumption breaks once adopters are a "
        "material share of the workload",
        "consistent with Casanova's observation that redundant requests "
        "penalise the infrastructure and non-adopters [3]",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
