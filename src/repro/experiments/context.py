"""Shared experiment context: synthesized traces and cached models.

Most experiments operate on the same 13 trace sets and their gridded
models; the context synthesizes them once per (seed, dt) and caches the
derived models and single-resubmission optima (the Eq. 6 reference used
everywhere in §7).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.model import GriddedLatencyModel
from repro.core.optimize import SingleOptimum, optimize_single
from repro.traces.dataset import TraceSet
from repro.traces.paper import synthesize_all
from repro.util.grids import TimeGrid

__all__ = ["ReproContext", "get_context"]

#: default t0 search window for delayed optimisations (s) — generous
#: around the observed latency scale, far cheaper than the whole grid
T0_WINDOW = (60.0, 2500.0)


class ReproContext:
    """Synthesized datasets + cached per-week models and optima."""

    def __init__(self, seed: int = 2009, dt: float = 1.0) -> None:
        self.seed = seed
        self.grid = TimeGrid(t_max=10_000.0, dt=dt)
        self.traces: dict[str, TraceSet] = synthesize_all(seed=seed)
        self._models: dict[str, GriddedLatencyModel] = {}
        self._singles: dict[str, SingleOptimum] = {}

    @property
    def weeks(self) -> list[str]:
        """All trace-set names in Table 1 display order."""
        return list(self.traces)

    def model(self, week: str) -> GriddedLatencyModel:
        """Gridded empirical latency model of one trace set (cached)."""
        if week not in self._models:
            self._models[week] = (
                self.traces[week].to_latency_model().on_grid(self.grid)
            )
        return self._models[week]

    def single_optimum(self, week: str) -> SingleOptimum:
        """Optimal single resubmission for one trace set (cached)."""
        if week not in self._singles:
            self._singles[week] = optimize_single(self.model(week))
        return self._singles[week]


@lru_cache(maxsize=4)
def get_context(seed: int = 2009, dt: float = 1.0) -> ReproContext:
    """Process-wide cached context (experiments and benches share it)."""
    return ReproContext(seed=seed, dt=dt)
