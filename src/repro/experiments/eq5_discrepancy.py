"""Ablation — how wrong is the printed Eq. (5)?

DESIGN.md documents a union-bound slip in the paper's derivation of the
delayed-strategy ``F_J``.  This experiment quantifies the resulting
``E_J`` error over a grid of ``(t0, ratio)`` configurations: small (a few
percent) but systematic — enough to matter for the third decimal of
``Δcost``, not for any qualitative conclusion.
"""

from __future__ import annotations

import numpy as np

from repro.core.paper_equations import eq5_union_expectation
from repro.core.strategies import delayed_moments
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.util.tables import Table, format_percent, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "abl-eq5"
TITLE = "Ablation: printed Eq.(5) union-form vs exact survival-form E_J"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    t0_values: tuple[float, ...] = (250.0, 350.0, 450.0, 600.0),
    ratios: tuple[float, ...] = (1.0, 1.2, 1.5, 1.8, 2.0),
) -> ExperimentResult:
    """Tabulate the relative E_J error of the union form."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    table = Table(
        title=TITLE,
        columns=["t0", "t_inf", "ratio", "exact E_J", "union E_J", "rel err"],
    )
    errors = []
    for t0 in t0_values:
        for ratio in ratios:
            t_inf = model.grid.time_of(
                min(
                    model.grid.index_of(t0 * ratio),
                    2 * model.grid.index_of(t0),
                    model.grid.n - 1,
                )
            )
            exact = delayed_moments(model, t0, t_inf).expectation
            union = eq5_union_expectation(model, t0, t_inf)
            rel = union / exact - 1.0
            errors.append(abs(rel))
            table.add_row(
                format_seconds(t0),
                format_seconds(t_inf),
                f"{ratio:.1f}",
                format_seconds(exact),
                format_seconds(union),
                format_percent(rel, 2),
            )
    notes = [
        f"max |relative error| = {max(errors):.2%}, mean = "
        f"{np.mean(errors):.2%}",
        "the error vanishes at ratio 1 (no overlap window) and grows "
        "steeply with the overlap — consistent with the spurious "
        "F~(t0)·F~(u) term identified in DESIGN.md",
        "consequence: the exact E_J is provably non-increasing in t_inf "
        "at fixed t0 (raising t_inf only gives every copy more time), "
        "but the union form inflates E_J at large ratios — the paper's "
        "Table-3 observation that E_J *rises* beyond ratio 1.4 is "
        "therefore likely an artifact of the printed derivation, not a "
        "property of the strategy",
        "the strategy's qualitative story (delayed beats single at "
        "N_// < 2; cost dips below 1 near t0 ≈ E_J) is unaffected",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
