"""Table 6 — transferring ``(t0, t∞)`` across weeks (§7.2).

Practical deployment estimates the timeouts from *earlier* traces.  For
every target week we apply every week's cost-optimal ``(t0, t∞)`` pair
and report the ``E_J`` / ``Δcost`` obtained; the key columns are the
worst in-column variation ("Max diff") and the penalty of using the
*previous* week's parameters ("diff/prev") — the paper finds ≤ 13% and
≤ 6% respectively.
"""

from __future__ import annotations

from repro.analysis.transfer import transfer_matrix
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.experiments.table5_weekly_cost import TABLE5_WEEKS, weekly_cost_optima
from repro.traces.paper import AGGREGATE
from repro.util.tables import Table, format_float, format_percent, format_seconds

__all__ = ["run", "TABLE6_TARGETS"]

EXPERIMENT_ID = "table6"
TITLE = "Table 6: E_J and delta_cost under transferred (t0, t_inf)"

#: the paper's Table 6 targets: the last 6 weeks plus the aggregate
TABLE6_TARGETS: tuple[str, ...] = (
    "2007-51",
    "2007-52",
    "2007-53",
    "2008-01",
    "2008-02",
    "2008-03",
    AGGREGATE,
)


def run(ctx: ReproContext | None = None) -> ExperimentResult:
    """Regenerate Table 6: cross-week application of optimal timeouts."""
    ctx = ctx or get_context()
    optima = weekly_cost_optima(ctx)
    params = {
        week: (optima[week].t0, optima[week].t_inf) for week in TABLE5_WEEKS
    }
    models = {week: ctx.model(week) for week in TABLE6_TARGETS}
    singles = {week: ctx.single_optimum(week).e_j for week in TABLE6_TARGETS}

    # only transfer parameters from the Table-6 source weeks, as the paper
    # does (its 7 parameter rows per block)
    sources = [w for w in TABLE6_TARGETS]
    cells = transfer_matrix(
        models,
        {w: params[w] for w in sources},
        singles,
        targets=list(TABLE6_TARGETS),
    )

    table = Table(
        title=TITLE,
        columns=[
            "target week",
            "params from",
            "t0",
            "t_inf",
            "E_J",
            "delta_cost",
        ],
    )
    max_diffs: dict[str, float] = {}
    prev_diffs: dict[str, float] = {}
    by_target: dict[str, list] = {}
    for cell in cells:
        by_target.setdefault(cell.target, []).append(cell)

    for target in TABLE6_TARGETS:
        rows = by_target.get(target, [])
        if not rows:
            continue
        own = next((c for c in rows if c.source == target), None)
        best_cost = min(c.cost for c in rows)
        max_diffs[target] = max(c.cost for c in rows) / best_cost - 1.0
        # previous week in the Table-6 ordering (the paper's last column)
        idx = TABLE6_TARGETS.index(target)
        if idx > 0:
            prev = TABLE6_TARGETS[idx - 1]
            prev_cell = next((c for c in rows if c.source == prev), None)
            if prev_cell is not None and own is not None:
                prev_diffs[target] = prev_cell.cost / own.cost - 1.0
        for cell in rows:
            table.add_row(
                target,
                cell.source,
                format_seconds(cell.t0),
                format_seconds(cell.t_inf),
                format_seconds(cell.e_j),
                format_float(cell.cost, 3),
            )

    worst_any = max(max_diffs.values())
    worst_prev = max(prev_diffs.values()) if prev_diffs else float("nan")
    notes = [
        f"worst in-week variation when using any week's parameters: "
        f"{worst_any:.1%} (paper: max 13%, mean 9%)",
        f"worst penalty when using the previous week's parameters: "
        f"{worst_prev:.1%} (paper: never larger than 6%)",
        "conclusion (as in the paper): optimising on last week's traces "
        "is good enough for deployment",
    ]
    summary = Table(
        title="Table 6 summary: per-target worst-case variations",
        columns=["target week", "max diff (any source)", "diff (prev week)"],
    )
    for target in TABLE6_TARGETS:
        summary.add_row(
            target,
            format_percent(max_diffs.get(target), 1),
            format_percent(prev_diffs.get(target), 1)
            if target in prev_diffs
            else "",
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[table, summary],
        notes=notes,
    )
