"""Table 2 — optimal timeout and best ``E_J`` per burst size b = 1…20.

Regenerates the full Table 2 structure: optimal ``t∞``, best ``E_J``,
``σ_J``, the improvement over b=1 (with its job-count overhead) and the
marginal improvement over b-1 — the paper's diminishing-returns argument
for small b.
"""

from __future__ import annotations

from repro.core.optimize import optimize_multiple
from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.util.tables import Table, format_percent, format_seconds

__all__ = ["run", "PAPER_TABLE2"]

EXPERIMENT_ID = "table2"
TITLE = "Table 2: multiple submission, b = 1..20 (2006-IX)"

#: paper values for selected rows: b -> (optimal t_inf, best E_J, sigma_J)
PAPER_TABLE2: dict[int, tuple[float, float, float]] = {
    1: (596.0, 471.0, 331.0),
    2: (880.0, 314.0, 148.0),
    3: (881.0, 268.0, 92.0),
    4: (881.0, 245.0, 73.0),
    5: (887.0, 230.0, 63.0),
    6: (1071.0, 220.0, 57.0),
    7: (1071.0, 212.0, 51.0),
    8: (1071.0, 205.0, 47.0),
    9: (1071.0, 200.0, 43.0),
    10: (1247.0, 196.0, 40.0),
    11: (1247.0, 192.0, 38.0),
    12: (1247.0, 189.0, 35.0),
    13: (2643.0, 186.0, 33.0),
    14: (1740.0, 184.0, 32.0),
    15: (1199.0, 182.0, 30.0),
    16: (980.0, 180.0, 29.0),
    17: (853.0, 178.0, 27.0),
    18: (792.0, 177.0, 26.0),
    19: (730.0, 175.0, 25.0),
    20: (688.0, 174.0, 24.0),
}


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    b_max: int = 20,
) -> ExperimentResult:
    """Regenerate Table 2 for burst sizes 1..``b_max``."""
    if b_max < 1:
        raise ValueError(f"b_max must be >= 1, got {b_max}")
    ctx = ctx or get_context()
    model = ctx.model(week)
    table = Table(
        title=TITLE,
        columns=[
            "b",
            "opt t_inf",
            "best E_J",
            "sigma_J",
            "dE_J/(b=1)",
            "db/(b=1)",
            "dE_J/(b-1)",
            "db/(b-1)",
            "paper E_J",
        ],
    )
    prev_e = None
    base_e = None
    for b in range(1, b_max + 1):
        opt = optimize_multiple(model, b)
        if base_e is None:
            base_e = opt.e_j
        d_base = opt.e_j / base_e - 1.0 if b > 1 else None
        d_prev = opt.e_j / prev_e - 1.0 if prev_e is not None else None
        ref = PAPER_TABLE2.get(b)
        table.add_row(
            b,
            format_seconds(opt.t_inf),
            format_seconds(opt.e_j),
            format_seconds(opt.sigma_j),
            format_percent(d_base, 0) if d_base is not None else "",
            f"{b * 100}%" if b > 1 else "",
            format_percent(d_prev, 1) if d_prev is not None else "",
            f"{100 / (b - 1):.1f}%" if b > 1 else "",
            format_seconds(ref[1]) if ref else "",
        )
        prev_e = opt.e_j

    e2 = optimize_multiple(model, 2).e_j
    e5 = optimize_multiple(model, 5).e_j
    notes = [
        f"b=2 already cuts E_J by {1 - e2 / base_e:.0%} (paper: 33%); "
        f"b=5 by {1 - e5 / base_e:.0%} (paper: 51%) — "
        "significant speed-up at low b with diminishing returns, the "
        "paper's central Table-2 observation.",
        "the large-b asymptote approaches the latency floor "
        "(paper reaches 174s at b=20 on a ~150s floor).",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
