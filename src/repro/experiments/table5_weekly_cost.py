"""Table 5 — per-week minimal ``Δcost`` and its ±5 s stability (§7.1).

For every weekly trace set (and the 2007/08 aggregate): the ``(t0, t∞)``
minimising ``Δcost``, the minimum itself, the ``E_J`` achieved, and —
when the minimum is below 1 — the worst ``Δcost`` within a ±5 s box
around the optimum.  The paper's findings: some weeks admit ``Δcost < 1``
and some do not (then single resubmission should be used), and the
optimum is stable to small timeout errors.
"""

from __future__ import annotations

from repro.analysis.stability import stability_analysis
from repro.core.optimize import optimize_delayed_cost
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.traces.paper import AGGREGATE, WEEKLY_SETS
from repro.util.tables import Table, format_float, format_percent, format_seconds

__all__ = ["run", "TABLE5_WEEKS", "PAPER_TABLE5", "weekly_cost_optima"]

EXPERIMENT_ID = "table5"
TITLE = "Table 5: minimal delta_cost per period with stability radius 5s"

#: rows of the paper's Table 5 (11 weekly sets + the aggregate)
TABLE5_WEEKS: tuple[str, ...] = WEEKLY_SETS + (AGGREGATE,)

#: paper values: week -> (opt t0, opt t_inf, opt delta_cost, E_J)
PAPER_TABLE5: dict[str, tuple[float, float, float, float]] = {
    "2007-36": (422.0, 423.0, 1.001, 510.0),
    "2007-37": (421.0, 422.0, 1.000, 616.0),
    "2007-38": (427.0, 428.0, 1.001, 530.0),
    "2007-39": (435.0, 436.0, 1.001, 595.0),
    "2007-50": (466.0, 467.0, 1.001, 627.0),
    "2007-51": (499.0, 662.0, 0.954, 494.0),
    "2007-52": (455.0, 595.0, 0.955, 455.0),
    "2007-53": (463.0, 613.0, 0.961, 463.0),
    "2008-01": (489.0, 525.0, 0.981, 489.0),
    "2008-02": (420.0, 575.0, 0.953, 420.0),
    "2008-03": (395.0, 530.0, 0.943, 395.0),
    "2007/08": (481.0, 635.0, 0.963, 481.0),
}


def weekly_cost_optima(
    ctx: ReproContext,
    weeks: tuple[str, ...] = TABLE5_WEEKS,
) -> dict[str, "DelayedOptimumLike"]:
    """Cost-optimal delayed configuration per week (shared with Table 6).

    Each week is one batched surface request: ``optimize_delayed_cost``
    evaluates its whole coarse ``(t0, t∞)`` rectangle in a single kernel
    pass, and the rows it caches on the week's model are what the ±5 s
    stability boxes of :func:`run` read back for free.
    """
    out = {}
    for week in weeks:
        single = ctx.single_optimum(week)
        out[week] = optimize_delayed_cost(
            ctx.model(week),
            single.e_j,
            t0_min=T0_WINDOW[0],
            t0_max=T0_WINDOW[1],
        )
    return out


# typing alias used only in the docstring above
DelayedOptimumLike = object


def run(ctx: ReproContext | None = None, *, radius: int = 5) -> ExperimentResult:
    """Regenerate Table 5 (optima + stability) over all periods."""
    ctx = ctx or get_context()
    optima = weekly_cost_optima(ctx)

    table = Table(
        title=TITLE,
        columns=[
            "week",
            "opt t0",
            "opt t_inf",
            "opt cost",
            "E_J",
            "max cost (r=5)",
            "max d%",
            "paper cost",
        ],
    )
    n_below_one = 0
    worst_rel = 0.0
    for week in TABLE5_WEEKS:
        opt = optima[week]
        single = ctx.single_optimum(week)
        max_cost = ""
        max_diff = ""
        if opt.cost < 1.0:
            n_below_one += 1
            report = stability_analysis(
                ctx.model(week),
                opt.t0,
                opt.t_inf,
                single.e_j,
                radius=radius,
            )
            max_cost = format_float(report.cost_max, 3)
            max_diff = format_percent(report.relative_diff, 1)
            worst_rel = max(worst_rel, report.relative_diff)
        ref = PAPER_TABLE5.get(week)
        table.add_row(
            week,
            format_seconds(opt.t0),
            format_seconds(opt.t_inf),
            format_float(opt.cost, 3),
            format_seconds(opt.e_j),
            max_cost,
            max_diff,
            format_float(ref[2], 3) if ref else "",
        )

    notes = [
        f"{n_below_one}/{len(TABLE5_WEEKS)} periods admit delta_cost < 1 "
        "(paper: 7/12). Our smooth synthetic bodies always leave a small "
        "win-win window; the paper's five degenerate weeks (optimum "
        "collapsing to t_inf = t0 + 1s, cost 1.000-1.001) correspond "
        "here to the weeks whose optimal cost sits closest below 1 — "
        "same frontier, slightly shifted",
        f"worst ±{radius}s degradation among the <1 periods: "
        f"{worst_rel:.1%} (paper: at most 14%, usually ~1%) — the optimum "
        "is flat enough to deploy",
        "every E_J in the table is below the period's single-resubmission "
        "E_J, as in the paper",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
