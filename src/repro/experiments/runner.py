"""Parallel experiment runner.

``run_many`` renders a batch of experiments, optionally fanning out over
a :class:`~concurrent.futures.ProcessPoolExecutor`.  Each worker process
renders whole experiments with its own process-wide context cache
(:func:`~repro.experiments.context.get_context` is ``lru_cache``-d per
process), so parallel output is **byte-identical** to the sequential
path: every experiment is deterministic given ``(seed, dt)``, and
context/model caches only affect speed, never values.

The same pool machinery also parallelises *within* heavy experiments:
:func:`run_strategy_batch` (re-exported here from
:mod:`repro.gridsim.client`) fans a set of independent strategy
executions — ``val-des``'s three strategies, ``abl-adopt``'s five
fleets — over worker processes, shipping each one the pickled warmed
snapshot instead of re-warming.  It is env-gated (``REPRO_INTRA_JOBS``)
so it does not nest pools under ``repro run all --jobs N`` unless
explicitly requested.

The CLI's ``repro run all --jobs N`` goes through here; libraries can
call :func:`run_many` directly for campaign-style sweeps.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Iterator, Sequence

from repro.experiments.context import get_context
from repro.experiments.registry import CONTEXT_FREE, EXPERIMENTS, run_experiment
from repro.gridsim.client import run_strategy_batch

__all__ = ["iter_many", "render_experiment", "run_many", "run_strategy_batch"]


def render_experiment(experiment_id: str, *, seed: int = 2009, dt: float = 1.0) -> str:
    """Run one experiment and return its rendered report text.

    Context-free experiments (those building their own DES grids) are
    run without a :class:`ReproContext`; everything else gets the
    process-cached context for ``(seed, dt)``.
    """
    if experiment_id in CONTEXT_FREE:
        result = run_experiment(experiment_id)
    else:
        result = run_experiment(
            experiment_id, ctx=get_context(seed=seed, dt=dt)
        )
    return result.render()


def _render_task(args: tuple[str, int, float]) -> str:
    experiment_id, seed, dt = args
    return render_experiment(experiment_id, seed=seed, dt=dt)


def iter_many(
    experiment_ids: Sequence[str] | Iterable[str],
    *,
    seed: int = 2009,
    dt: float = 1.0,
    jobs: int = 1,
) -> Iterator[tuple[str, str]]:
    """Yield ``(id, report text)`` in request order as results are ready.

    With ``jobs <= 1`` everything runs in-process (sharing one context).
    With ``jobs > 1`` experiments are distributed over a process pool;
    output is byte-identical to a sequential run because workers share
    nothing but the deterministic inputs.  Yielding incrementally lets
    callers (the CLI) persist each finished experiment before the next
    completes, so a failure or interrupt mid-batch keeps prior results.
    """
    ids = list(experiment_ids)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        raise ValueError(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"available: {', '.join(EXPERIMENTS)}"
        )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1 or len(ids) <= 1:
        for i in ids:
            yield i, render_experiment(i, seed=seed, dt=dt)
        return
    tasks = [(i, seed, dt) for i in ids]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        # pool.map yields in submission order as results arrive
        yield from zip(ids, pool.map(_render_task, tasks))


def run_many(
    experiment_ids: Sequence[str] | Iterable[str],
    *,
    seed: int = 2009,
    dt: float = 1.0,
    jobs: int = 1,
) -> dict[str, str]:
    """Render many experiments, ``jobs`` at a time; id -> report text."""
    return dict(iter_many(experiment_ids, seed=seed, dt=dt, jobs=jobs))
