"""Ablation — does the choice of latency family change the conclusions?

The paper works directly from the empirical cdf.  A practitioner fitting
a parametric family instead (the GWA workflow) should know how sensitive
the optimised timeouts are to that choice.  We fit every supported
family to the same trace latencies, run the strategy optimisation under
each fitted model, and compare against the ECDF-based reference.  The
two-parameter delayed optimum rides along since the batched surface
kernel made the full ``(t0, t∞)`` sweep per fitted model cheap.
"""

from __future__ import annotations

from repro.core.model import LatencyModel
from repro.core.optimize import optimize_delayed, optimize_multiple, optimize_single
from repro.distributions.fitting import SUPPORTED_FAMILIES, fit_distribution
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "abl-family"
TITLE = "Ablation: strategy optima under different fitted latency families"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
) -> ExperimentResult:
    """Optimise under each fitted family and compare with the ECDF."""
    ctx = ctx or get_context()
    trace = ctx.traces[week]
    reference = ctx.single_optimum(week)
    latencies = trace.successful_latencies
    rho = trace.outlier_ratio

    def delayed_e_j(model) -> float:
        # one surface request per fitted model (coarse+fine bands batched)
        return optimize_delayed(
            model, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
        ).e_j

    table = Table(
        title=TITLE,
        columns=[
            "model",
            "KS stat",
            "single t_inf",
            "single E_J",
            "E_J vs ECDF",
            "burst3 E_J",
            "delayed E_J",
        ],
    )
    table.add_row(
        "empirical (ref)",
        "",
        format_seconds(reference.t_inf),
        format_seconds(reference.e_j),
        "",
        format_seconds(optimize_multiple(ctx.model(week), 3).e_j),
        format_seconds(delayed_e_j(ctx.model(week))),
    )
    gaps: dict[str, float] = {}
    for family in SUPPORTED_FAMILIES:
        fit = fit_distribution(latencies, family)
        model = LatencyModel(fit.distribution, rho=rho, name=family).on_grid(
            ctx.grid
        )
        single = optimize_single(model)
        burst = optimize_multiple(model, 3)
        gaps[family] = abs(single.e_j - reference.e_j) / reference.e_j
        table.add_row(
            family,
            format_float(fit.ks_statistic, 3),
            format_seconds(single.t_inf),
            format_seconds(single.e_j),
            format_float(gaps[family], 3),
            format_seconds(burst.e_j),
            format_seconds(delayed_e_j(model)),
        )

    best = min(gaps, key=gaps.get)
    worst = max(gaps, key=gaps.get)
    notes = [
        f"closest family to the ECDF answer: {best} "
        f"({gaps[best]:.1%} E_J gap); worst: {worst} ({gaps[worst]:.1%})",
        "families with the right tail behaviour (lognormal/loglogistic) "
        "track the ECDF within a few percent; exponential (memoryless) "
        "misjudges the value of resubmission the most — tail shape, not "
        "goodness-of-fit statistics alone, drives strategy quality",
        "zero-location fits that put mass at t ≈ 0 (weibull shape < 1, "
        "exponential, pareto) produce pathological near-zero optimal "
        "timeouts: the model believes instant restarts are free. Real "
        "latencies have a middleware floor — fit shifted families or use "
        "the ECDF when deploying timeout policies",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
