"""Extension — the strategy frontier under grid weather with self-healing.

The paper's strategies are tuned against a grid whose failures are
i.i.d. per job (lost submissions, stuck jobs).  Production grids also
fail *structurally*: correlated outage storms take site subsets down
together, and black-hole sites advertise empty queues while instantly
failing everything match-making feeds them.  This experiment re-runs
the single / multiple / delayed frontier under three weather regimes
(calm, storms, one black hole) and crosses each with the middleware's
answer — a service-side resubmission agent that detects
failed-and-missing work and resubmits it under a retry budget.

Strategies are compared on the paper's two axes at once: realised
latency ``E(J)`` *and* submission cost (grid jobs per task — the
``Δcost`` of Tables 4–5 and the cost curves of Fig. 8), collapsed to
one scalar ``U = E(J) + c·E(jobs/task)`` with an explicit per-job
handling charge ``c``.  The headline question: does *system-side*
self-healing change which *user-side* strategy is optimal?  Without the
agent, burst submission's fault hedge is worth its copies — a single
lost job costs the user a full ``t_inf`` timeout.  With the agent
detecting failures within one sweep period, single submission is
rescued fast enough that the burst's 3× job bill stops paying for
itself, and the optimum flips.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.experiments.base import ExperimentResult
from repro.gridsim import (
    BlackHoleConfig,
    FaultModel,
    GridConfig,
    HealthConfig,
    ResubmitConfig,
    SiteConfig,
    StormConfig,
    WeatherConfig,
    run_strategy_on_grid,
    warmed_snapshot,
)
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run", "weather_grid_config"]

EXPERIMENT_ID = "grid-weather"
TITLE = "Extension: submission strategies under grid weather and self-healing"

#: the site the black-hole regime corrupts (mid-sized, normally popular)
BLACK_HOLE_SITE = "ce2"


def weather_grid_config() -> GridConfig:
    """A 6-site, 140-core grid with the health machine always on.

    Two deliberate deviations from the default grid.  Ranking noise is
    zero: the information system ranks deterministically on its
    estimates, the worst case for black-hole attraction (every dispatch
    bucket herds into the hole's perfect-looking queue) and the regime
    where burst copies co-locate instead of scattering — their latency
    hedge must then come from surviving *faults*, not from sampling
    several queues.  And the health service is part of the *grid*, not
    the regime: every regime gets the same operator loop (EWMA bans,
    probe re-admission, health-aware ranking), so regimes differ only in
    the weather thrown at it.  On the calm grid the loop observes only
    successes and never transitions — behaviourally inert.
    """
    cores = (8, 12, 16, 24, 32, 48)
    sites = tuple(
        SiteConfig(
            f"ce{i}",
            c,
            utilization=0.80,
            runtime_median=3600.0,
            runtime_sigma=0.8,
        )
        for i, c in enumerate(cores)
    )
    return GridConfig(
        sites=sites,
        matchmaking_median=45.0,
        ranking_noise=0.0,
        faults=FaultModel(p_lost=0.03, p_stuck=0.03),
        health=HealthConfig(),
    )


def _regimes(warm: float) -> tuple[tuple[str, WeatherConfig | None], ...]:
    """The three weather regimes, timed relative to the warm-up end."""
    storms = WeatherConfig(
        storm=StormConfig(
            mean_interval=3 * 3600.0,
            mean_duration=1800.0,
            subset_size=2,
            kill_running=0.5,
        )
    )
    # the hole opens 30 min into the measurement window and lasts 4 h —
    # long enough that every strategy's campaign overlaps it
    black_hole = WeatherConfig(
        black_holes=(
            BlackHoleConfig(
                site=BLACK_HOLE_SITE, start=warm + 1800.0, duration=4 * 3600.0
            ),
        )
    )
    return (("calm", None), ("storms", storms), ("black hole", black_hole))


def run(
    ctx=None,
    *,
    seed: int = 43,
    n_tasks: int = 400,
    runtime: float = 600.0,
    task_interval: float = 20.0,
    job_cost: float = 60.0,
    warm: float = 6 * 3600.0,
) -> ExperimentResult:
    """Cross the strategy frontier with weather regimes and the agent.

    Every cell restores the same warmed snapshot for its ``(regime,
    agent)`` grid config (six warm-ups total, each paid once via the
    keyed cache) and executes one strategy campaign of ``n_tasks``
    staggered tasks, so strategies within a cell face bit-identical
    grids and cells differ only in weather/self-healing.  ``job_cost``
    is the per-submission handling charge ``c`` of the utility
    ``U = E(J) + c·E(jobs/task)`` strategies are ranked by.
    """
    if n_tasks < 10:
        raise ValueError(f"n_tasks must be >= 10, got {n_tasks}")
    if not job_cost >= 0.0:
        raise ValueError(f"job_cost must be >= 0, got {job_cost!r}")
    base = weather_grid_config()
    agent = ResubmitConfig(period=300.0, max_retries=3, backoff_base=60.0)
    strategies = (
        ("single", SingleResubmission(t_inf=4000.0)),
        ("multiple b=3", MultipleSubmission(b=3, t_inf=4000.0)),
        ("delayed", DelayedResubmission(t0=1500.0, t_inf=3000.0)),
    )

    frontier = Table(
        title=TITLE,
        columns=[
            "regime",
            "self-healing",
            *(f"{name} J (jobs)" for name, _ in strategies),
            "best U",
        ],
    )
    telemetry = Table(
        title="Weather and operator telemetry (single-submission campaign)",
        columns=[
            "regime",
            "self-healing",
            "outages",
            "jobs killed",
            "black-hole failures",
            "bans",
            "agent resubmits",
        ],
    )
    best_by: dict[tuple[str, bool], str] = {}
    for regime, weather in _regimes(warm):
        for healing in (False, True):
            config = replace(
                base, weather=weather, resubmit=agent if healing else None
            )
            snap = warmed_snapshot(config, seed=seed, duration=warm)
            utility: dict[str, float] = {}
            cells: list[str] = []
            for name, strategy in strategies:
                grid = snap.restore()
                out = run_strategy_on_grid(
                    grid,
                    strategy,
                    n_tasks,
                    task_interval=task_interval,
                    runtime=runtime,
                )
                mean_j = out.mean_j if out.j.size else float("inf")
                utility[name] = mean_j + job_cost * out.mean_jobs
                cells.append(
                    f"{format_seconds(mean_j)} ({format_float(out.mean_jobs, 2)})"
                )
                if name == "single":
                    report = grid.weather_report()
            best = min(utility, key=utility.get)
            best_by[(regime, healing)] = best
            frontier.add_row(
                regime,
                "on" if healing else "off",
                *cells,
                f"{best} ({utility[best]:.0f}s)",
            )
            transitions = report.get("health", {}).get("transitions", {})
            telemetry.add_row(
                regime,
                "on" if healing else "off",
                report["outages_started"],
                sum(report["jobs_killed"].values()),
                sum(report["black_hole_failures"].values()),
                sum(
                    n
                    for key, n in transitions.items()
                    if key.endswith("->banned")
                ),
                report.get("resubmit", {}).get("resubmissions", 0),
            )

    flips = [
        regime
        for regime, _ in _regimes(warm)
        if best_by[(regime, False)] != best_by[(regime, True)]
    ]
    notes = [
        f"{n_tasks} tasks per cell, payload {runtime:.0f}s, launches every "
        f"{task_interval:.0f}s; every cell forks its config's "
        f"{warm / 3600.0:.0f}h-warmed snapshot, so strategies within a cell "
        "face bit-identical grids",
        f"U = E(J) + c*E(jobs/task) with c = {job_cost:.0f}s per-job "
        "handling charge — the latency/cost trade-off of the paper's "
        "Tables 4-5 and Fig. 8 collapsed to one scalar",
        "regimes: calm; storms (mean every 3h, 2 sites down together for "
        "~30min, 50% of running jobs killed); one black hole "
        f"({BLACK_HOLE_SITE} opens 30min into the window for 4h, instantly "
        "failing everything its excellent-looking queue attracts)",
        "self-healing agent: 300s sweeps, <=3 resubmissions per task, "
        "60s backoff doubling per retry — composed with, and invisible "
        "to, the user-side strategies",
    ]
    if flips:
        notes.append(
            "system-side resubmission changes the optimal user-side "
            "strategy under: "
            + "; ".join(
                f"{regime} ({best_by[(regime, False)]} -> "
                f"{best_by[(regime, True)]})"
                for regime in flips
            )
        )
    else:
        notes.append(
            "no regime flipped its optimal strategy under self-healing "
            "at these settings"
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[frontier, telemetry],
        notes=notes,
    )
