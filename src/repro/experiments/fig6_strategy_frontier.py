"""Figure 6 — minimal ``E_J`` vs mean parallel jobs: delayed vs multiple.

The paper's Fig. 6 (2006-IX) compares the two strategies in the
(N_//, E_J) plane: the delayed curve occupies N_// ∈ [1, ~1.5) with
E_J between single and 2-burst; the multiple curve starts at (1, E_J(b=1))
and drops faster at integer N_//.  The frontier shows where each strategy
dominates.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimize import optimize_delayed_ratio, optimize_multiple
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.experiments.table3_delayed_ratio import RATIOS
from repro.util.series import Series, SeriesBundle

__all__ = ["run"]

EXPERIMENT_ID = "fig6"
TITLE = "Figure 6: minimal E_J vs mean number of parallel jobs"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    b_max: int = 5,
) -> ExperimentResult:
    """Regenerate Fig. 6's two curves."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    single = ctx.single_optimum(week)

    delayed_pts = []
    for ratio in RATIOS:
        opt = optimize_delayed_ratio(
            model, ratio, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
        )
        delayed_pts.append((opt.n_parallel, opt.e_j))
    delayed_pts.sort()
    dx, dy = np.array(delayed_pts).T

    bs = np.arange(1, b_max + 1)
    multi = [optimize_multiple(model, int(b)) for b in bs]
    mx = bs.astype(np.float64)
    my = np.array([o.e_j for o in multi])

    bundle = SeriesBundle(
        title=f"{TITLE} [{week}]",
        x_label="nb. of jobs in parallel (N_//)",
        y_label="minimal E_J (s)",
    )
    bundle.add(Series("delayed submission strategy", dx, dy))
    bundle.add(Series("multiple submissions strategy", mx, my))

    notes = [
        f"delayed strategy spans N_// in [{dx.min():.2f}, {dx.max():.2f}] "
        f"with E_J down to {dy.min():.0f}s — below single resubmission "
        f"({single.e_j:.0f}s) at a fraction of a parallel job "
        "(paper: minimum 431s at N_// = 1.2)",
        f"multiple submission at b=2 reaches {my[1]:.0f}s — lower than any "
        "delayed configuration, but at a full extra copy "
        "(paper: 'we obtain a lower value with the multiple submission "
        "strategy with at least two jobs in parallel')",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, figures=[bundle], notes=notes
    )
