"""Registry mapping experiment ids to their ``run`` functions."""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    adoption_sweep,
    broker_storm,
    eq5_discrepancy,
    family_sensitivity,
    fig1_cdf,
    fig2_multi_profiles,
    fig3_min_ej_vs_b,
    fig5_delayed_surface,
    fig6_strategy_frontier,
    fig8_cost_curves,
    grid_weather,
    multi_vo,
    resolution_study,
    rho_sensitivity,
    table1_latency_stats,
    table2_multiple,
    table3_delayed_ratio,
    table4_cost,
    table5_weekly_cost,
    table6_transfer,
    validation_des,
    validation_mc,
)
from repro.experiments.base import ExperimentResult

__all__ = ["CONTEXT_FREE", "EXPERIMENTS", "list_experiments", "run_experiment"]

#: experiments that need no ReproContext (they build their own DES grids).
#: abl-adopt left this set when it gained the surface-calibrated delayed
#: fleet, which reads the analytic 2006-IX model from the context.
CONTEXT_FREE = frozenset({"val-des", "multi-vo", "grid-weather", "broker-storm"})

#: experiment id -> run callable (every table/figure + validations)
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "fig1": fig1_cdf.run,
    "table1": table1_latency_stats.run,
    "fig2": fig2_multi_profiles.run,
    "table2": table2_multiple.run,
    "fig3": fig3_min_ej_vs_b.run,
    "fig5": fig5_delayed_surface.run,
    "table3": table3_delayed_ratio.run,
    "fig6": fig6_strategy_frontier.run,
    "fig8": fig8_cost_curves.run,
    "table4": table4_cost.run,
    "table5": table5_weekly_cost.run,
    "table6": table6_transfer.run,
    "val-mc": validation_mc.run,
    "val-des": validation_des.run,
    "abl-eq5": eq5_discrepancy.run,
    "abl-adopt": adoption_sweep.run,
    "abl-rho": rho_sensitivity.run,
    "abl-family": family_sensitivity.run,
    "abl-grid": resolution_study.run,
    "multi-vo": multi_vo.run,
    "grid-weather": grid_weather.run,
    "broker-storm": broker_storm.run,
}


def list_experiments() -> list[str]:
    """All registered experiment ids (paper order, then validations)."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, **kwargs) -> ExperimentResult:
    """Run one experiment by id; kwargs are forwarded to its ``run``."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(EXPERIMENTS)}"
        ) from None
    return fn(**kwargs)
