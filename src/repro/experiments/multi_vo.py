"""Extension — the §8 sweep at production scale on a multi-VO grid.

The paper's future work ("the impact of all grid users exploiting the
same strategy can be simulated in a controlled environment", §8) was
previously run on a toy 100-core single-tenant grid at a few hundred
tasks (``abl-adopt``).  This experiment runs it at the workload
structure real grids have — three VOs with fair-share allocations at
every site, two federated WMS brokers with lagged views of each other's
sites, diurnal user activity — and at 10⁴ tasks per sweep, the scale the
vectorised site engine makes affordable.

The sweep grows the fraction of the dominant VO's tasks that adopt
burst submission while the other VOs keep the single-submission
baseline, and reports how latency shifts for the adopters, for the
non-adopting users of the *same* VO, and for the bystander VOs —
fair-share turns a VO's aggression into a tax mostly on itself.
"""

from __future__ import annotations

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.experiments.base import ExperimentResult
from repro.gridsim import (
    BrokerConfig,
    FaultModel,
    GridConfig,
    SiteConfig,
    warmed_snapshot,
)
from repro.population import adoption_population, run_population
from repro.traces.generator import DiurnalProfile
from repro.util.tables import Table, format_float, format_percent, format_seconds

__all__ = ["run", "multi_vo_grid_config"]

EXPERIMENT_ID = "multi-vo"
TITLE = "Extension: strategy adoption across a multi-VO federated grid"

#: the three VOs and their grid-wide fair-share allocations
VO_SHARES = (("biomed", 0.5), ("atlas", 0.3), ("cms", 0.2))


def multi_vo_grid_config(*, utilization: float = 0.85) -> GridConfig:
    """An 8-site, 576-core grid with 3 VOs and 2 federated brokers.

    Shares are identical across sites (grid-wide agreements); each
    broker owns half the sites and sees the other half through a
    15-minute federated lag, so their views disagree exactly when load
    moves fast.  Capacity is sized so the 10⁴-task population claims
    most of — but not more than — the head-room above the background
    (≈69 effective cores of demand against ≈86 free), the regime where
    fleet feedback is material yet queues still drain.
    """
    cores = (32, 48, 64, 96, 128, 48, 64, 96)
    sites = tuple(
        SiteConfig(
            f"ce{i:02d}",
            c,
            utilization=utilization,
            runtime_median=2400.0,
            runtime_sigma=0.8,
            vo_shares=VO_SHARES,
        )
        for i, c in enumerate(cores)
    )
    return GridConfig(
        sites=sites,
        matchmaking_median=45.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
        brokers=(
            BrokerConfig("wms-a", tuple(s.name for s in sites[:4]), info_lag=900.0),
            BrokerConfig("wms-b", tuple(s.name for s in sites[4:]), info_lag=900.0),
        ),
    )


def run(
    ctx=None,
    *,
    seed: int = 29,
    n_tasks: int = 10_000,
    adoption_levels: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    b: int = 3,
    runtime: float = 600.0,
    window: float = 86_400.0,
    warm: float = 6 * 3600.0,
) -> ExperimentResult:
    """Sweep burst-submission adoption inside the biomed VO at 10⁴ tasks.

    Each sweep point restores the same warmed snapshot (the warm-up is
    paid once thanks to the keyed cache) and runs a full population —
    task volume split 50/30/20 across the VOs to mirror their shares,
    launches diurnally modulated — with ``adoption`` of biomed's tasks
    switched to burst submission.
    """
    if n_tasks < 100:
        raise ValueError(f"n_tasks must be >= 100, got {n_tasks}")
    if b < 2:
        raise ValueError(f"b must be >= 2, got {b}")
    for a in adoption_levels:
        if not 0.0 <= a <= 1.0:
            raise ValueError(f"adoption levels must be in [0, 1], got {a}")
    config = multi_vo_grid_config()
    vo_tasks = {
        "biomed": n_tasks // 2,
        "atlas": (n_tasks * 3) // 10,
        "cms": n_tasks - n_tasks // 2 - (n_tasks * 3) // 10,
    }
    baseline = {vo: SingleResubmission(t_inf=4000.0) for vo in vo_tasks}
    adopted = MultipleSubmission(b=b, t_inf=4000.0)
    # VO affinity: biomed + cms home on broker 0, atlas on broker 1
    brokers = {"biomed": "wms-a", "atlas": "wms-b", "cms": "wms-a"}
    diurnal = DiurnalProfile(amplitude=0.4)

    sweep = Table(
        title=TITLE,
        columns=[
            "adoption",
            "mean J adopters",
            "mean J biomed rest",
            "mean J atlas",
            "mean J cms",
            "jobs/task",
            "gave up",
        ],
    )
    vo_means: list[dict[str, float]] = []
    adopter_means: list[float] = []
    snap = warmed_snapshot(config, seed=seed, duration=warm)
    last = None
    for adoption in adoption_levels:
        spec = adoption_population(
            vo_tasks=vo_tasks,
            strategies=baseline,
            adopter_vo="biomed",
            adopted=adopted,
            adoption=adoption,
            window=window,
            runtime=runtime,
            diurnal=diurnal,
            brokers=brokers,
        )
        grid = snap.restore()
        result = run_population(grid, spec, seed=seed)
        last = result
        adopters = [f for f in result.fleets if f.spec.label == "biomed/adopters"]
        rest = [
            f
            for f in result.fleets
            if f.spec.vo == "biomed" and f.spec.label != "biomed/adopters"
        ]
        per_vo = {vo: float(j.mean()) for vo, j in result.by_vo().items()}
        vo_means.append(per_vo)
        a_mean = adopters[0].mean_j if adopters else float("nan")
        adopter_means.append(a_mean)
        total_jobs = sum(int(f.jobs_submitted.sum()) for f in result.fleets)
        sweep.add_row(
            format_percent(adoption, 0),
            format_seconds(a_mean),
            format_seconds(rest[0].mean_j if rest else float("nan")),
            format_seconds(per_vo["atlas"]),
            format_seconds(per_vo["cms"]),
            format_float(total_jobs / max(result.total_finished, 1), 2),
            result.total_gave_up,
        )

    shares_tbl = Table(
        title="End-state fair-share usage and broker dispatch (full adoption)",
        columns=["site", *(vo for vo, _ in VO_SHARES), "allocated"],
    )
    for site, usage in last.site_usage_shares.items():
        shares_tbl.add_row(
            site,
            *(format_percent(usage[vo], 1) for vo, _ in VO_SHARES),
            " / ".join(format_percent(s, 0) for _, s in VO_SHARES),
        )

    full = vo_means[-1]
    base = vo_means[0]
    notes = [
        f"{n_tasks} tasks per sweep point "
        f"({', '.join(f'{vo}: {n}' for vo, n in vo_tasks.items())}), "
        f"diurnal amplitude 0.4, 2 brokers with 900s federated lag; every "
        f"point forks the same {warm / 3600.0:.0f}h-warmed snapshot",
        "adopters' advantage at first adoption vs full adoption: "
        + ", ".join(
            f"{format_percent(a, 0)}: {m:.0f}s"
            for a, m in zip(adoption_levels, adopter_means)
            if m == m
        ),
        f"bystander VOs under full biomed adoption: atlas "
        f"{base['atlas']:.0f}s -> {full['atlas']:.0f}s, cms "
        f"{base['cms']:.0f}s -> {full['cms']:.0f}s — fair-share charges "
        "the burst copies to biomed, so the aggression taxes mostly the "
        "aggressor's own VO",
        f"broker dispatches (full adoption): "
        + ", ".join(
            f"{bc.name}: {d}"
            for bc, d in zip(config.brokers, last.broker_dispatches)
        ),
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[sweep, shares_tbl],
        notes=notes,
    )
