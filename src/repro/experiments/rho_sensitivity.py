"""Ablation — how the fault ratio ρ drives the value of resubmission.

The paper's strategies exist *because* of outliers and heavy tails.
This ablation holds the latency body fixed (the 2006-IX calibrated
shape) and sweeps ρ from 0 to 0.4, tracking the optimal single
resubmission, the b=3 burst, and the delayed win-win configuration.
Expected structure: with ρ = 0 the timeout matters little and Δcost
stays near 1; as ρ grows, resubmission becomes indispensable (E_J at
infinite patience diverges) and the win-win region widens.

Each ρ point builds a fresh gridded model, so the win-win search is the
dominant cost; ``optimize_delayed_cost`` evaluates the whole ``(t0, t∞)``
surface of each model in one batched request rather than per-``t0``
slices.
"""

from __future__ import annotations

from repro.core.model import LatencyModel
from repro.core.optimize import (
    optimize_delayed_cost,
    optimize_multiple,
    optimize_single,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "abl-rho"
TITLE = "Ablation: sensitivity of the strategies to the outlier ratio rho"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    rho_values: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
) -> ExperimentResult:
    """Sweep ρ on a fixed latency body."""
    ctx = ctx or get_context()
    body = ctx.model(week).model.distribution  # the calibrated body

    table = Table(
        title=TITLE,
        columns=[
            "rho",
            "single t_inf",
            "single E_J",
            "burst3 E_J",
            "delayed cost",
            "delayed E_J",
        ],
    )
    singles = []
    costs = []
    for rho in rho_values:
        model = LatencyModel(body, rho=rho, name=f"rho={rho}").on_grid(ctx.grid)
        single = optimize_single(model)
        burst = optimize_multiple(model, 3)
        winwin = optimize_delayed_cost(
            model, single.e_j, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
        )
        singles.append(single.e_j)
        costs.append(winwin.cost)
        table.add_row(
            f"{rho:.2f}",
            format_seconds(single.t_inf),
            format_seconds(single.e_j),
            format_seconds(burst.e_j),
            format_float(winwin.cost, 3),
            format_seconds(winwin.e_j),
        )

    notes = [
        f"single-resubmission E_J grows from {singles[0]:.0f}s at rho=0 to "
        f"{singles[-1]:.0f}s at rho={rho_values[-1]} — resubmission absorbs "
        "most of the outlier cost (the naive bounded mean would grow by "
        "thousands of seconds)",
        "E_J increases monotonically with rho for every strategy "
        f"(singles: {', '.join(f'{s:.0f}' for s in singles)})",
        f"the delayed win-win persists across the sweep "
        f"(costs: {', '.join(f'{c:.2f}' for c in costs)})",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
