"""Ablation — numerical convergence in the grid resolution.

Everything in the reproduction is computed on a uniform time grid.  This
study sweeps the grid step from 8 s down to 0.5 s and tracks the optimal
single-resubmission timeout, its ``E_J`` and the delayed win-win cost:
the answers must converge (and the 1 s default must sit within a small
tolerance of the 0.5 s reference), which also certifies that trapezoid
integration is not biasing the tables.
"""

from __future__ import annotations

from repro.core.optimize import optimize_delayed_cost, optimize_single
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.util.grids import TimeGrid
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run"]

EXPERIMENT_ID = "abl-grid"
TITLE = "Ablation: convergence of the optima in the grid resolution"


def run(
    ctx: ReproContext | None = None,
    *,
    week: str = "2006-IX",
    dt_values: tuple[float, ...] = (8.0, 4.0, 2.0, 1.0, 0.5),
) -> ExperimentResult:
    """Re-run the headline optimisations at several grid resolutions."""
    ctx = ctx or get_context()
    latency_model = ctx.traces[week].to_latency_model()

    table = Table(
        title=TITLE,
        columns=["dt", "single t_inf", "single E_J", "winwin cost", "winwin E_J"],
    )
    e_js = []
    costs = []
    for dt in dt_values:
        model = latency_model.on_grid(TimeGrid(t_max=10_000.0, dt=dt))
        single = optimize_single(model)
        winwin = optimize_delayed_cost(
            model, single.e_j, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
        )
        e_js.append(single.e_j)
        costs.append(winwin.cost)
        table.add_row(
            f"{dt:g}s",
            format_seconds(single.t_inf),
            format_seconds(single.e_j),
            format_float(winwin.cost, 4),
            format_seconds(winwin.e_j),
        )

    ref_e, ref_c = e_js[-1], costs[-1]
    drift_e = max(abs(e - ref_e) / ref_e for e in e_js[2:])
    drift_c = max(abs(c - ref_c) / ref_c for c in costs[2:])
    notes = [
        f"E_J drift across dt <= 2s relative to the {dt_values[-1]:g}s "
        f"reference: {drift_e:.2%}; delta_cost drift: {drift_c:.2%} — "
        "the default 1s grid is converged well below the statistical "
        "uncertainty of the traces",
        "coarse grids (8s) bias E_J by under a percent but can shift the "
        "optimal timeout by a few grid cells on flat valleys",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID, title=TITLE, tables=[table], notes=notes
    )
