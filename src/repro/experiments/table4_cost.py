"""Table 4 — ``Δcost`` samples for the delayed and multiple strategies.

Left block: the ratio sweep of Table 3 extended with ``Δcost``; right
block: the multiple submission up to b = 100.  Headline paper numbers:
ratio ≈ 1.25 minimises ``Δcost`` (0.94); the global cost optimum reaches
0.93; multiple submission costs grow to 32 at b = 100.
"""

from __future__ import annotations

from repro.core.cost import cost_curve_delayed, cost_curve_multiple
from repro.core.optimize import optimize_delayed_cost
from repro.experiments.base import ExperimentResult
from repro.experiments.context import T0_WINDOW, ReproContext, get_context
from repro.experiments.table3_delayed_ratio import RATIOS
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["run", "MULTI_BS"]

EXPERIMENT_ID = "table4"
TITLE = "Table 4: delta_cost of the strategies (2006-IX)"

#: burst sizes in the right block of the paper's Table 4
MULTI_BS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 40, 60, 80, 100)

#: paper values for the multiple block: b -> (min E_J, delta_cost)
PAPER_MULTI: dict[int, tuple[float, float]] = {
    2: (314.0, 1.3),
    3: (268.0, 1.7),
    4: (245.0, 2.1),
    5: (230.0, 2.4),
    6: (220.0, 2.8),
    7: (212.0, 3.1),
    8: (205.0, 3.5),
    9: (200.0, 3.8),
    10: (196.0, 4.2),
    20: (174.0, 7.4),
    40: (161.0, 14.0),
    60: (156.0, 20.0),
    80: (154.0, 26.0),
    100: (152.0, 32.0),
}


def run(ctx: ReproContext | None = None, *, week: str = "2006-IX") -> ExperimentResult:
    """Regenerate both blocks of Table 4."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    single = ctx.single_optimum(week)

    delayed_table = Table(
        title=f"{TITLE} — delayed (per imposed ratio)",
        columns=["t_inf/t0", "N_//", "min E_J", "delta_cost"],
    )
    delayed_points = cost_curve_delayed(model, list(RATIOS), single.e_j)
    for ratio, point in zip(RATIOS, delayed_points):
        delayed_table.add_row(
            f"{ratio:.2f}",
            format_float(point.n_parallel, 2),
            format_seconds(point.e_j),
            format_float(point.cost, 3),
        )

    multi_table = Table(
        title=f"{TITLE} — multiple (per burst size)",
        columns=["N_// = b", "min E_J", "delta_cost", "paper E_J", "paper cost"],
    )
    multi_points = cost_curve_multiple(model, list(MULTI_BS), single.e_j)
    for b, point in zip(MULTI_BS, multi_points):
        ref = PAPER_MULTI.get(b)
        multi_table.add_row(
            b,
            format_seconds(point.e_j),
            format_float(point.cost, 2),
            format_seconds(ref[0]) if ref else "",
            format_float(ref[1], 1) if ref else "",
        )

    global_opt = optimize_delayed_cost(
        model, single.e_j, t0_min=T0_WINDOW[0], t0_max=T0_WINDOW[1]
    )
    best_ratio_cost = min(p.cost for p in delayed_points)
    notes = [
        f"global cost optimum: delta_cost = {global_opt.cost:.3f} at "
        f"t0 = {global_opt.t0:.0f}s, t_inf = {global_opt.t_inf:.0f}s, "
        f"E_J = {global_opt.e_j:.0f}s "
        "(paper: 0.93 at t0 = 439s, t_inf = 579s, E_J = 439s)",
        f"best ratio-constrained delta_cost = {best_ratio_cost:.3f} "
        "(paper: 0.94 at ratio 1.25)",
        "multiple-submission costs grow roughly linearly in b "
        f"(measured b=100: {multi_points[-1].cost:.0f}, paper: 32)",
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        tables=[delayed_table, multi_table],
        notes=notes,
    )
