"""Reproduction experiments — one module per paper table/figure.

Every module exposes ``run(ctx: ReproContext | None = None) -> ExperimentResult``;
the :mod:`registry <repro.experiments.registry>` maps experiment ids
(``"table1"``, ``"fig2"``, …) to these functions.  Results carry the
regenerated tables (:class:`~repro.util.tables.Table`) and figure data
(:class:`~repro.util.series.SeriesBundle`) plus the paper's reference
values for side-by-side comparison (recorded in ``EXPERIMENTS.md``).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "ReproContext",
    "get_context",
    "EXPERIMENTS",
    "list_experiments",
    "run_experiment",
]
