"""Figure 1 — cumulative density of latency: ``F_R`` vs ``F̃_R``.

The paper's Fig. 1 illustrates the §3 definitions: the cdf of the
non-outlier latency ``F_R`` converges to 1 while the sub-cdf
``F̃_R = (1-ρ)·F_R`` saturates at ``1-ρ`` — the visual definition of the
outlier mass ρ.  We regenerate both curves from the 2006-IX model.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.context import ReproContext, get_context
from repro.util.series import Series, SeriesBundle

__all__ = ["run"]

EXPERIMENT_ID = "fig1"
TITLE = "Figure 1: cumulative density of latency (F_R and F~_R)"


def run(ctx: ReproContext | None = None, *, week: str = "2006-IX") -> ExperimentResult:
    """Regenerate Fig. 1 for the given trace set."""
    ctx = ctx or get_context()
    model = ctx.model(week)
    t = model.times
    f_tilde = model.F
    rho = model.rho
    f_r = f_tilde / (1.0 - rho)

    bundle = SeriesBundle(
        title=f"{TITLE} [{week}]",
        x_label="latency threshold t (s)",
        y_label="cumulative probability",
    )
    keep = t <= 4000.0  # the informative part of the support
    bundle.add(Series("F_R", t[keep], f_r[keep]))
    bundle.add(Series("F~_R = (1-rho) F_R", t[keep], f_tilde[keep]))

    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        figures=[bundle],
        notes=[
            f"rho = {rho:.4f} (paper derives rho from Table 1's mean columns; "
            f"2006-IX gives 0.050)",
            f"F~_R saturates at 1-rho = {1 - rho:.4f}, F_R converges to "
            f"{float(f_r[-1]):.4f}",
            "median latency "
            f"{float(np.interp(0.5, f_r, t)):.0f}s",
        ],
    )
    return result
