"""Finite mixtures of latency distributions.

Production-grid latency is multi-modal: jobs landing on idle sites see the
middleware floor, jobs queued behind production workloads see long batch
waits, and a minority hit degraded services.  A small mixture (body +
slow-tail component) captures this; the paper's heavy-tailed empirical cdf
(Fig. 1) exhibits exactly this plateau structure.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.distributions.base import LatencyDistribution
from repro.util.rng import RngLike, as_rng

__all__ = ["MixtureDistribution"]


class MixtureDistribution(LatencyDistribution):
    """Weighted mixture ``R ~ Σ w_i · component_i``."""

    family = "mixture"

    def __init__(
        self,
        components: Sequence[LatencyDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) == 0:
            raise ValueError("mixture needs at least one component")
        if len(components) != len(weights):
            raise ValueError(
                f"{len(components)} components but {len(weights)} weights"
            )
        for c in components:
            if not isinstance(c, LatencyDistribution):
                raise TypeError(
                    f"components must be LatencyDistribution, got {type(c).__name__}"
                )
        w = np.asarray(weights, dtype=np.float64)
        if (w < 0).any():
            raise ValueError(f"weights must be non-negative, got {weights!r}")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        self.components = list(components)
        self.weights = w / total

    def pdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = sum(
            w * np.asarray(c.pdf(t)) for w, c in zip(self.weights, self.components)
        )
        out = np.asarray(out)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = sum(
            w * np.asarray(c.cdf(t)) for w, c in zip(self.weights, self.components)
        )
        out = np.asarray(out)
        return out if out.ndim else float(out)

    def ppf(self, q):
        """Quantiles by monotone bisection on the mixture cdf."""
        q = np.atleast_1d(np.asarray(q, dtype=np.float64))
        # bracket: use the extreme component quantiles
        los = np.zeros_like(q)
        hi0 = max(float(np.max(np.atleast_1d(c.ppf(0.999999)))) for c in self.components)
        his = np.full_like(q, max(hi0, 1.0))
        # expand the upper bracket until cdf(hi) >= q everywhere
        for _ in range(200):
            need = np.asarray(self.cdf(his)) < q
            if not need.any():
                break
            his[need] *= 2.0
        for _ in range(80):  # bisection to ~1e-24 relative
            mid = 0.5 * (los + his)
            below = np.asarray(self.cdf(mid)) < q
            los = np.where(below, mid, los)
            his = np.where(below, his, mid)
        out = 0.5 * (los + his)
        return out if out.size > 1 else float(out[0])

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        gen = as_rng(rng)
        choice = gen.choice(len(self.components), size=size, p=self.weights)
        out = np.empty(size, dtype=np.float64)
        for i, comp in enumerate(self.components):
            mask = choice == i
            k = int(mask.sum())
            if k:
                out[mask] = comp.rvs(k, gen)
        return out

    def mean(self) -> float:
        means = [c.mean() for c in self.components]
        if any(not np.isfinite(m) for m in means):
            return float("inf")
        return float(np.dot(self.weights, means))

    def _moment(self, k: int) -> float:
        moments = [c._moment(k) for c in self.components]
        if any(not np.isfinite(m) for m in moments):
            return float("inf")
        return float(np.dot(self.weights, moments))

    def params(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for i, (w, c) in enumerate(zip(self.weights, self.components)):
            out[f"w{i}"] = float(w)
            for key, val in c.params().items():
                out[f"c{i}_{key}"] = val
        return out

    def describe(self) -> str:
        parts = [
            f"{w:.3g}*{c.describe()}" for w, c in zip(self.weights, self.components)
        ]
        return " + ".join(parts)
