"""Upper-truncated distributions: ``R | R <= upper``, renormalised.

The paper's probe jobs are cancelled at 10,000 s, so the *observed*
non-outlier latency is the base law conditioned on ``R <= 10,000``.
Synthetic trace calibration fits the truncated moments against Table 1's
``mean < 10^5`` and ``σ_R`` columns (see :mod:`repro.traces.calibration`).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.distributions.base import LatencyDistribution
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive

__all__ = ["TruncatedDistribution"]


class TruncatedDistribution(LatencyDistribution):
    """``R`` conditioned on ``R <= upper`` (right truncation)."""

    family = "truncated"

    def __init__(self, base: LatencyDistribution, upper: float) -> None:
        if not isinstance(base, LatencyDistribution):
            raise TypeError(
                f"base must be a LatencyDistribution, got {type(base).__name__}"
            )
        self.base = base
        self.upper = check_positive("upper", upper)
        self._mass = float(base.cdf(self.upper))
        if self._mass <= 0.0:
            raise ValueError(
                f"base distribution has no mass below upper={upper!r} "
                f"(cdf({upper}) = {self._mass})"
            )

    def pdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        inside = (t >= 0) & (t <= self.upper)
        out = np.where(inside, np.asarray(self.base.pdf(t)) / self._mass, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        clipped = np.clip(t, 0.0, self.upper)
        out = np.asarray(self.base.cdf(clipped)) / self._mass
        out = np.clip(out, 0.0, 1.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=np.float64)
        out = np.asarray(self.base.ppf(q * self._mass), dtype=np.float64)
        out = np.clip(out, 0.0, self.upper)
        return out if out.ndim else float(out)

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        gen = as_rng(rng)
        return np.asarray(self.ppf(gen.random(size)), dtype=np.float64)

    def _moment(self, k: int) -> float:
        # integrate t^k pdf(t) over [0, upper] on a dense grid; the support
        # is compact so plain trapezoid integration is accurate and cheap.
        n = 20001
        t = np.linspace(0.0, self.upper, n)
        y = (t**k) * np.asarray(self.pdf(t))
        return float(np.trapezoid(y, t))

    def params(self) -> dict[str, Any]:
        return {
            "upper": self.upper,
            **{f"base_{k}": v for k, v in self.base.params().items()},
        }

    def describe(self) -> str:
        return f"{self.base.describe()} | R <= {self.upper:.6g}"
