"""Heavy-tailed latency distributions and fitting.

The paper models grid latency as a heavy-tailed random variable ``R``
observed through traces.  This package provides:

* a small distribution protocol (:class:`LatencyDistribution`) exposing the
  pdf / cdf / survival / quantile / moment / sampling interface the
  strategy models need;
* the parametric families commonly fitted to grid latencies (log-normal,
  Weibull, Pareto, gamma, exponential, log-logistic);
* combinators — location shift, upper truncation, finite mixtures — used
  to build realistic latency laws (e.g. a shifted log-normal body for the
  middleware floor, truncated at the probe timeout);
* the empirical distribution (ECDF) used when working directly from
  traces, as the paper does;
* maximum-likelihood fitting with AIC/BIC/Kolmogorov-Smirnov model
  selection, and truncated-moment solvers used to calibrate synthetic
  datasets against the paper's Table 1.
"""

from repro.distributions.base import LatencyDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.fitting import (
    FitResult,
    fit_distribution,
    select_model,
)
from repro.distributions.mixture import MixtureDistribution
from repro.distributions.moments import truncated_mean_std, truncated_moment
from repro.distributions.parametric import (
    Exponential,
    Gamma,
    LogLogistic,
    LogNormal,
    Pareto,
    Weibull,
)
from repro.distributions.shifted import ShiftedDistribution
from repro.distributions.truncated import TruncatedDistribution

__all__ = [
    "LatencyDistribution",
    "EmpiricalDistribution",
    "FitResult",
    "fit_distribution",
    "select_model",
    "MixtureDistribution",
    "truncated_mean_std",
    "truncated_moment",
    "Exponential",
    "Gamma",
    "LogLogistic",
    "LogNormal",
    "Pareto",
    "Weibull",
    "ShiftedDistribution",
    "TruncatedDistribution",
]
