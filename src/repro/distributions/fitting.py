"""Maximum-likelihood fitting and model selection for latency samples.

Given trace latencies, :func:`fit_distribution` fits one family by MLE
(delegating to scipy's optimisers with location pinned to zero, since
latency is non-negative by construction) and :func:`select_model` ranks
several families by information criteria and the Kolmogorov–Smirnov
statistic — the standard workflow for workload-archive traces (GWA-style
analyses fit exactly these families).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.stats as st

from repro.distributions.base import LatencyDistribution
from repro.distributions.parametric import (
    Exponential,
    Gamma,
    LogLogistic,
    LogNormal,
    Pareto,
    Weibull,
)

__all__ = ["FitResult", "fit_distribution", "select_model", "SUPPORTED_FAMILIES"]


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one family to one sample set.

    Attributes
    ----------
    distribution:
        The fitted :class:`LatencyDistribution`.
    family:
        Family name (``"lognormal"`` etc.).
    log_likelihood:
        Total log-likelihood at the fitted parameters.
    aic, bic:
        Akaike / Bayesian information criteria (lower is better).
    ks_statistic, ks_pvalue:
        One-sample Kolmogorov–Smirnov test of the fit.
    n_samples:
        Number of samples used.
    """

    distribution: LatencyDistribution
    family: str
    log_likelihood: float
    aic: float
    bic: float
    ks_statistic: float
    ks_pvalue: float
    n_samples: int

    def summary(self) -> str:
        """One-line report used by examples and EXPERIMENTS.md."""
        return (
            f"{self.family:<12} AIC={self.aic:12.1f}  BIC={self.bic:12.1f}  "
            f"KS={self.ks_statistic:.4f} (p={self.ks_pvalue:.3g})  "
            f"{self.distribution.describe()}"
        )


def _positive_samples(samples: np.ndarray) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64).ravel()
    if arr.size < 8:
        raise ValueError(f"need at least 8 samples to fit, got {arr.size}")
    if not np.isfinite(arr).all():
        raise ValueError("samples must be finite")
    if (arr < 0).any():
        raise ValueError("latency samples must be non-negative")
    # strictly positive values required for log-based likelihoods
    return np.maximum(arr, 1e-9)


def _fit_lognormal(x: np.ndarray) -> LatencyDistribution:
    # MLE for the zero-location log-normal is available in closed form.
    logs = np.log(x)
    return LogNormal(mu=float(logs.mean()), sigma=float(max(logs.std(), 1e-9)))


def _fit_weibull(x: np.ndarray) -> LatencyDistribution:
    shape, _loc, scale = st.weibull_min.fit(x, floc=0.0)
    return Weibull(shape=float(shape), scale=float(scale))


def _fit_gamma(x: np.ndarray) -> LatencyDistribution:
    shape, _loc, scale = st.gamma.fit(x, floc=0.0)
    return Gamma(shape=float(shape), scale=float(scale))


def _fit_exponential(x: np.ndarray) -> LatencyDistribution:
    return Exponential(rate=float(1.0 / max(x.mean(), 1e-12)))


def _fit_pareto(x: np.ndarray) -> LatencyDistribution:
    alpha, _loc, scale = st.lomax.fit(x, floc=0.0)
    return Pareto(alpha=float(alpha), scale=float(scale))


def _fit_loglogistic(x: np.ndarray) -> LatencyDistribution:
    shape, _loc, scale = st.fisk.fit(x, floc=0.0)
    return LogLogistic(shape=float(shape), scale=float(scale))


_FITTERS: dict[str, tuple[Callable[[np.ndarray], LatencyDistribution], int]] = {
    "lognormal": (_fit_lognormal, 2),
    "weibull": (_fit_weibull, 2),
    "gamma": (_fit_gamma, 2),
    "exponential": (_fit_exponential, 1),
    "pareto": (_fit_pareto, 2),
    "loglogistic": (_fit_loglogistic, 2),
}

#: Families accepted by :func:`fit_distribution` / :func:`select_model`.
SUPPORTED_FAMILIES: tuple[str, ...] = tuple(_FITTERS)


def fit_distribution(samples: np.ndarray, family: str) -> FitResult:
    """Fit one parametric family to latency samples by MLE.

    Parameters
    ----------
    samples:
        Non-negative latency observations (e.g. non-outlier probe
        latencies from a trace set).
    family:
        One of :data:`SUPPORTED_FAMILIES`.

    Returns
    -------
    FitResult
        Fitted distribution plus goodness-of-fit diagnostics.
    """
    if family not in _FITTERS:
        raise ValueError(
            f"unknown family {family!r}; supported: {', '.join(SUPPORTED_FAMILIES)}"
        )
    x = _positive_samples(samples)
    fitter, n_params = _FITTERS[family]
    dist = fitter(x)

    with np.errstate(divide="ignore"):
        log_pdf = np.log(np.maximum(np.asarray(dist.pdf(x)), 1e-300))
    loglik = float(log_pdf.sum())
    n = x.size
    aic = 2.0 * n_params - 2.0 * loglik
    bic = n_params * float(np.log(n)) - 2.0 * loglik
    ks = st.kstest(x, lambda t: np.asarray(dist.cdf(t)))
    return FitResult(
        distribution=dist,
        family=family,
        log_likelihood=loglik,
        aic=aic,
        bic=bic,
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        n_samples=int(n),
    )


def select_model(
    samples: np.ndarray,
    families: Sequence[str] = SUPPORTED_FAMILIES,
    *,
    criterion: str = "aic",
) -> list[FitResult]:
    """Fit several families and rank them by a selection criterion.

    Parameters
    ----------
    samples:
        Latency observations.
    families:
        Families to try (default: all supported).
    criterion:
        ``"aic"``, ``"bic"`` or ``"ks"`` (Kolmogorov–Smirnov statistic).

    Returns
    -------
    list[FitResult]
        All successful fits, best first.  Families whose optimiser fails
        on the given data are silently skipped (at least one must
        succeed).
    """
    keyfuncs = {
        "aic": lambda r: r.aic,
        "bic": lambda r: r.bic,
        "ks": lambda r: r.ks_statistic,
    }
    if criterion not in keyfuncs:
        raise ValueError(f"criterion must be one of {sorted(keyfuncs)}, got {criterion!r}")
    results: list[FitResult] = []
    for family in families:
        if family not in _FITTERS:
            raise ValueError(
                f"unknown family {family!r}; supported: {', '.join(SUPPORTED_FAMILIES)}"
            )
        try:
            results.append(fit_distribution(samples, family))
        except (ValueError, RuntimeError):
            continue  # optimiser failure on this family; others may succeed
    if not results:
        raise RuntimeError("no family could be fitted to the samples")
    results.sort(key=keyfuncs[criterion])
    return results
