"""The distribution protocol shared by all latency models.

Strategy computations in :mod:`repro.core` only require vectorised
``cdf``/``pdf`` evaluation on a time grid plus sampling for Monte-Carlo
validation, so the protocol is intentionally small.  Concrete families are
thin wrappers over frozen :mod:`scipy.stats` distributions; combinators
(shift, truncation, mixtures) compose any implementations of the protocol.
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.util.rng import RngLike, as_rng

__all__ = ["LatencyDistribution"]


class LatencyDistribution(abc.ABC):
    """A non-negative continuous random variable modelling grid latency.

    Subclasses implement the vectorised primitives :meth:`pdf`,
    :meth:`cdf`, :meth:`ppf` and :meth:`rvs`; everything else has generic
    implementations.  All methods accept scalars or arrays and broadcast.
    """

    #: short family name used in fit reports, e.g. ``"lognormal"``
    family: str = "latency"

    # -- primitives ----------------------------------------------------

    @abc.abstractmethod
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Probability density at ``t`` (zero for ``t < 0``)."""

    @abc.abstractmethod
    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """``P(R <= t)``."""

    @abc.abstractmethod
    def ppf(self, q: np.ndarray | float) -> np.ndarray | float:
        """Quantile function (inverse cdf) for ``q`` in ``[0, 1]``."""

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        """Draw ``size`` samples.

        The generic implementation uses inverse-transform sampling through
        :meth:`ppf`; subclasses override when scipy provides a faster
        sampler.
        """
        gen = as_rng(rng)
        return np.asarray(self.ppf(gen.random(size)), dtype=np.float64)

    # -- derived -------------------------------------------------------

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Survival function ``P(R > t)``."""
        return 1.0 - np.asarray(self.cdf(t))

    def mean(self) -> float:
        """Expected value ``E[R]`` (may be ``inf`` for very heavy tails)."""
        return self._moment(1)

    def var(self) -> float:
        """Variance of ``R``."""
        m1 = self._moment(1)
        m2 = self._moment(2)
        if not (np.isfinite(m1) and np.isfinite(m2)):
            return float("inf")
        return max(0.0, m2 - m1 * m1)

    def std(self) -> float:
        """Standard deviation of ``R``."""
        return float(np.sqrt(self.var()))

    def median(self) -> float:
        """Median of ``R``."""
        return float(self.ppf(0.5))

    def _moment(self, k: int) -> float:
        """k-th raw moment via adaptive quantile integration.

        Generic fallback used by combinators; parametric families override
        with closed forms from scipy.
        """
        # integrate E[R^k] = ∫0^1 ppf(q)^k dq with refinement near q→1
        # where heavy tails concentrate the mass of the moment.
        qs = 1.0 - np.logspace(0, -12, 4097)  # dense near 1
        qs = np.concatenate(([0.0], qs, [1.0 - 1e-13]))
        qs = np.unique(qs)
        vals = np.asarray(self.ppf(qs), dtype=np.float64) ** k
        vals = np.nan_to_num(vals, nan=0.0, posinf=np.inf)
        if np.isinf(vals).any():
            return float("inf")
        return float(np.trapezoid(vals, qs))

    # -- misc ----------------------------------------------------------

    def params(self) -> dict[str, Any]:
        """Distribution parameters as a plain dict (for reports)."""
        return {}

    def describe(self) -> str:
        """One-line human-readable description."""
        params = ", ".join(f"{k}={v:.6g}" for k, v in self.params().items())
        return f"{self.family}({params})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
