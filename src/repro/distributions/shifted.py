"""Location-shifted distributions: ``R = shift + R0``.

Grid latency has a hard floor — credential delegation, match-making and
dispatch take a minimum number of round trips even on an idle
infrastructure (the paper counts ~10 machines on the submission path).  A
positive shift under a log-normal or Weibull body models that floor.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.distributions.base import LatencyDistribution
from repro.util.rng import RngLike
from repro.util.validation import check_nonnegative

__all__ = ["ShiftedDistribution"]


class ShiftedDistribution(LatencyDistribution):
    """``R = shift + R0`` for a non-negative base variable ``R0``."""

    family = "shifted"

    def __init__(self, base: LatencyDistribution, shift: float) -> None:
        if not isinstance(base, LatencyDistribution):
            raise TypeError(
                f"base must be a LatencyDistribution, got {type(base).__name__}"
            )
        self.base = base
        self.shift = check_nonnegative("shift", shift)

    def pdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= self.shift, self.base.pdf(np.maximum(t - self.shift, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= self.shift, self.base.cdf(np.maximum(t - self.shift, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= self.shift, self.base.sf(np.maximum(t - self.shift, 0.0)), 1.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        out = np.asarray(self.base.ppf(q), dtype=np.float64) + self.shift
        return out if out.ndim else float(out)

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        return self.base.rvs(size, rng) + self.shift

    def mean(self) -> float:
        base_mean = self.base.mean()
        return base_mean + self.shift if np.isfinite(base_mean) else float("inf")

    def var(self) -> float:
        return self.base.var()

    def median(self) -> float:
        return self.base.median() + self.shift

    def _moment(self, k: int) -> float:
        if k == 1:
            return self.mean()
        if k == 2:
            m1 = self.base.mean()
            if not np.isfinite(m1):
                return float("inf")
            m2 = self.base._moment(2)
            if not np.isfinite(m2):
                return float("inf")
            return m2 + 2.0 * self.shift * m1 + self.shift**2
        return super()._moment(k)

    def params(self) -> dict[str, Any]:
        return {"shift": self.shift, **{f"base_{k}": v for k, v in self.base.params().items()}}

    def describe(self) -> str:
        return f"{self.shift:.6g} + {self.base.describe()}"
