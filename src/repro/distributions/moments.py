"""Truncated moments of latency distributions.

The paper reports, per trace set, the mean and standard deviation of
latencies *below the 10,000 s probe timeout* (Table 1, columns
``mean < 10^5`` and ``σ_R``).  Calibrating synthetic datasets against those
columns requires evaluating — and inverting — the truncated moments
``E[R^k | R <= T]`` of a parametric family.  This module provides the
forward evaluation; :mod:`repro.traces.calibration` performs the inversion.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LatencyDistribution

__all__ = ["truncated_moment", "truncated_mean_std"]


def truncated_moment(
    dist: LatencyDistribution,
    k: int,
    upper: float,
    *,
    n_points: int = 20001,
) -> float:
    """``E[R^k | R <= upper]`` by trapezoid integration of ``t^k f(t)``.

    Parameters
    ----------
    dist:
        The base (untruncated) distribution.
    k:
        Moment order (k >= 1).
    upper:
        Truncation point (seconds); must have positive mass below it.
    n_points:
        Grid resolution for the integration.
    """
    if k < 1:
        raise ValueError(f"moment order must be >= 1, got {k}")
    if upper <= 0:
        raise ValueError(f"upper must be > 0, got {upper}")
    mass = float(dist.cdf(upper))
    if mass <= 0.0:
        raise ValueError(f"no probability mass below upper={upper}")
    t = np.linspace(0.0, float(upper), int(n_points))
    y = (t**k) * np.asarray(dist.pdf(t), dtype=np.float64)
    return float(np.trapezoid(y, t) / mass)


def truncated_mean_std(
    dist: LatencyDistribution,
    upper: float,
    *,
    n_points: int = 20001,
) -> tuple[float, float]:
    """Mean and standard deviation of ``R | R <= upper``."""
    m1 = truncated_moment(dist, 1, upper, n_points=n_points)
    m2 = truncated_moment(dist, 2, upper, n_points=n_points)
    var = max(0.0, m2 - m1 * m1)
    return m1, float(np.sqrt(var))
