"""Empirical latency distributions (ECDF) built from trace samples.

The paper works directly from probe traces: the "cumulative histogram"
``F̃_R`` of Fig. 1 is an ECDF normalised over *all* submitted jobs.  This
module provides the non-outlier part: a right-continuous step ECDF with an
optional piecewise-linear smoothing used for quantiles and sampling.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.distributions.base import LatencyDistribution
from repro.util.rng import RngLike, as_rng

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(LatencyDistribution):
    """ECDF over observed latency samples.

    Parameters
    ----------
    samples:
        Observed latencies (non-negative, finite).  Stored sorted.
    smooth:
        If true (default), ``cdf`` interpolates linearly between order
        statistics, yielding a continuous distribution whose density is a
        histogram spline — this is what grid evaluation and strategy
        optimisation need (the paper integrates ``F̃`` numerically, which
        equally presumes an integrable representation).  If false, the
        classic right-continuous step ECDF is used.
    """

    family = "empirical"

    def __init__(self, samples: np.ndarray, *, smooth: bool = True) -> None:
        arr = np.asarray(samples, dtype=np.float64).ravel()
        if arr.size == 0:
            raise ValueError("empirical distribution needs at least one sample")
        if not np.isfinite(arr).all():
            raise ValueError("samples must be finite")
        if (arr < 0).any():
            raise ValueError("latency samples must be non-negative")
        self._x = np.sort(arr)
        self.smooth = bool(smooth)

    @property
    def n_samples(self) -> int:
        """Number of samples backing the ECDF."""
        return int(self._x.size)

    @property
    def samples(self) -> np.ndarray:
        """Sorted sample array (read-only view)."""
        v = self._x.view()
        v.flags.writeable = False
        return v

    # -- protocol --------------------------------------------------------

    def cdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        if self.smooth:
            # piecewise-linear between (x_(k), k/n) knots, with cdf(0-) = 0
            n = self._x.size
            knots_x = np.concatenate(([0.0], self._x))
            knots_y = np.concatenate(([0.0], np.arange(1, n + 1) / n))
            # collapse duplicate x knots keeping the highest y (right limit)
            ux, idx = np.unique(knots_x[::-1], return_index=True)
            uy = knots_y[::-1][idx]
            out = np.interp(t, ux, uy, left=0.0, right=1.0)
        else:
            out = np.searchsorted(self._x, t, side="right") / self._x.size
            out = np.where(t < 0, 0.0, out)
        out = np.asarray(out, dtype=np.float64)
        return out if out.ndim else float(out)

    def pdf(self, t):
        """Density of the smoothed ECDF (finite-difference slope).

        For ``smooth=False`` the ECDF has no density; a histogram-based
        approximation over ``sqrt(n)`` bins is returned instead, which is
        sufficient for visual diagnostics (the analytic machinery never
        differentiates a step ECDF).
        """
        t = np.asarray(t, dtype=np.float64)
        eps = max(1e-6, float(self._x[-1]) * 1e-9)
        hi = np.asarray(self.cdf(t + eps))
        lo = np.asarray(self.cdf(np.maximum(t - eps, 0.0)))
        width = (t + eps) - np.maximum(t - eps, 0.0)
        out = np.where(width > 0, (hi - lo) / width, 0.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        q = np.asarray(q, dtype=np.float64)
        if ((q < 0) | (q > 1)).any():
            raise ValueError("quantile levels must be in [0, 1]")
        if self.smooth:
            n = self._x.size
            knots_y = np.arange(1, n + 1) / n
            out = np.interp(q, np.concatenate(([0.0], knots_y)),
                            np.concatenate(([0.0], self._x)))
        else:
            idx = np.minimum(
                (np.ceil(q * self._x.size) - 1).clip(0).astype(int),
                self._x.size - 1,
            )
            out = self._x[idx]
        out = np.asarray(out, dtype=np.float64)
        return out if out.ndim else float(out)

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        gen = as_rng(rng)
        if self.smooth:
            return np.asarray(self.ppf(gen.random(size)), dtype=np.float64)
        return gen.choice(self._x, size=size, replace=True)

    # -- moments (exact from samples) ------------------------------------

    def mean(self) -> float:
        return float(self._x.mean())

    def var(self) -> float:
        return float(self._x.var())

    def std(self) -> float:
        return float(self._x.std())

    def median(self) -> float:
        return float(np.median(self._x))

    def _moment(self, k: int) -> float:
        return float(np.mean(self._x**k))

    def params(self) -> dict[str, Any]:
        return {"n": self.n_samples, "smooth": self.smooth}

    def describe(self) -> str:
        return (
            f"empirical(n={self.n_samples}, mean={self.mean():.4g}, "
            f"std={self.std():.4g}, smooth={self.smooth})"
        )
