"""Parametric latency families backed by frozen scipy.stats distributions.

The families below are the standard candidates for grid latency bodies and
tails in the workload-modeling literature the paper builds on (Feitelson;
Li, Groep & Walters; Christodoulopoulos et al.): log-normal, Weibull,
gamma, exponential, Pareto and log-logistic.

Parameterisations are chosen to match the usual textbook forms (documented
per class) rather than scipy's ``(a, loc, scale)`` convention, so model
reports read naturally.
"""

from __future__ import annotations

from typing import Any

import numpy as np
import scipy.stats as st

from repro.distributions.base import LatencyDistribution
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_positive

__all__ = ["LogNormal", "Weibull", "Gamma", "Exponential", "Pareto", "LogLogistic"]


class _ScipyBacked(LatencyDistribution):
    """Common plumbing for families backed by a frozen scipy distribution."""

    def __init__(self, frozen: st.distributions.rv_frozen) -> None:
        self._frozen = frozen

    def pdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= 0, self._frozen.pdf(np.maximum(t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= 0, self._frozen.cdf(np.maximum(t, 0.0)), 0.0)
        return out if out.ndim else float(out)

    def ppf(self, q):
        out = np.asarray(self._frozen.ppf(q), dtype=np.float64)
        return out if out.ndim else float(out)

    def sf(self, t):
        t = np.asarray(t, dtype=np.float64)
        out = np.where(t >= 0, self._frozen.sf(np.maximum(t, 0.0)), 1.0)
        return out if out.ndim else float(out)

    def rvs(self, size: int, rng: RngLike = None) -> np.ndarray:
        return np.asarray(
            self._frozen.rvs(size=size, random_state=as_rng(rng)), dtype=np.float64
        )

    def _moment(self, k: int) -> float:
        m = self._frozen.moment(k)
        return float(m) if np.isfinite(m) else float("inf")

    def mean(self) -> float:
        m = self._frozen.mean()
        return float(m) if np.isfinite(m) else float("inf")

    def var(self) -> float:
        v = self._frozen.var()
        return float(v) if np.isfinite(v) else float("inf")

    def median(self) -> float:
        return float(self._frozen.median())


class LogNormal(_ScipyBacked):
    """Log-normal: ``ln R ~ Normal(mu, sigma^2)``.

    The workhorse of grid-latency modeling — multiplicative service stages
    (match-making, queueing, transfer) compose into an approximately
    log-normal latency, and EGEE probe latencies are well fitted by it.
    """

    family = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        self.mu = float(mu)
        self.sigma = check_positive("sigma", sigma)
        super().__init__(st.lognorm(s=self.sigma, scale=np.exp(self.mu)))

    @classmethod
    def from_mean_std(cls, mean: float, std: float) -> "LogNormal":
        """Construct from the mean and standard deviation of ``R`` itself."""
        mean = check_positive("mean", mean)
        std = check_positive("std", std)
        cv2 = (std / mean) ** 2
        sigma2 = np.log1p(cv2)
        mu = np.log(mean) - 0.5 * sigma2
        return cls(mu=float(mu), sigma=float(np.sqrt(sigma2)))

    def params(self) -> dict[str, Any]:
        return {"mu": self.mu, "sigma": self.sigma}


class Weibull(_ScipyBacked):
    """Weibull with shape ``k`` and scale ``lam``: ``F(t)=1-exp(-(t/lam)^k)``.

    ``k < 1`` gives the heavy-ish, decreasing-hazard latencies typical of
    batch queues.
    """

    family = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive("shape", shape)
        self.scale = check_positive("scale", scale)
        super().__init__(st.weibull_min(c=self.shape, scale=self.scale))

    def params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}


class Gamma(_ScipyBacked):
    """Gamma with shape ``k`` and scale ``theta`` (mean ``k·theta``)."""

    family = "gamma"

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive("shape", shape)
        self.scale = check_positive("scale", scale)
        super().__init__(st.gamma(a=self.shape, scale=self.scale))

    def params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}


class Exponential(_ScipyBacked):
    """Exponential with rate ``lam`` (mean ``1/lam``).

    The memoryless baseline: under an exponential latency, resubmission
    strategies cannot help — a useful control in experiments.
    """

    family = "exponential"

    def __init__(self, rate: float) -> None:
        self.rate = check_positive("rate", rate)
        super().__init__(st.expon(scale=1.0 / self.rate))

    def params(self) -> dict[str, Any]:
        return {"rate": self.rate}


class Pareto(_ScipyBacked):
    """Pareto (Lomax form): ``P(R > t) = (1 + t/scale)^(-alpha)`` for t >= 0.

    A pure power tail starting at zero; models the outlier-prone component
    of grid latency.  For ``alpha <= 1`` the mean is infinite — strategy
    expectations remain finite because timeouts truncate the tail, which is
    exactly the paper's argument for resubmission.
    """

    family = "pareto"

    def __init__(self, alpha: float, scale: float) -> None:
        self.alpha = check_positive("alpha", alpha)
        self.scale = check_positive("scale", scale)
        super().__init__(st.lomax(c=self.alpha, scale=self.scale))

    def params(self) -> dict[str, Any]:
        return {"alpha": self.alpha, "scale": self.scale}


class LogLogistic(_ScipyBacked):
    """Log-logistic (Fisk) with shape ``beta`` and scale ``alpha``.

    ``F(t) = 1 / (1 + (t/alpha)^(-beta))`` — log-normal-like body with a
    power-law tail; a frequent best fit for queue waiting times.
    """

    family = "loglogistic"

    def __init__(self, shape: float, scale: float) -> None:
        self.shape = check_positive("shape", shape)
        self.scale = check_positive("scale", scale)
        super().__init__(st.fisk(c=self.shape, scale=self.scale))

    def params(self) -> dict[str, Any]:
        return {"shape": self.shape, "scale": self.scale}
