"""Columnar trace-set container and its summary statistics.

A :class:`TraceSet` stores probe observations column-wise (numpy arrays)
for fast statistics, exposes the Table-1 style summary quantities
(non-outlier mean, bounded mean, σ_R, outlier ratio) and converts to the
:class:`~repro.core.model.LatencyModel` consumed by the strategy machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.core.model import LatencyModel
from repro.traces.records import PROBE_TIMEOUT, JobStatus, ProbeRecord

__all__ = ["TraceSet"]

_STATUS_CODES = {JobStatus.COMPLETED: 0, JobStatus.TIMEOUT: 1, JobStatus.FAULT: 2}
_CODE_STATUS = {v: k for k, v in _STATUS_CODES.items()}


@dataclass
class TraceSet:
    """A named set of probe observations (one of the paper's trace sets).

    Parameters
    ----------
    name:
        Trace-set label, e.g. ``"2006-IX"`` or ``"2007-36"``.
    submit_times:
        Per-probe submission dates (s since trace start).
    latencies:
        Per-probe latency (s); ``inf`` for outliers.
    status_codes:
        Per-probe status code (0 completed / 1 timeout / 2 fault).
    timeout:
        Measurement timeout used for this trace (default: the paper's
        10,000 s).
    """

    name: str
    submit_times: np.ndarray
    latencies: np.ndarray
    status_codes: np.ndarray
    timeout: float = PROBE_TIMEOUT

    def __post_init__(self) -> None:
        self.submit_times = np.asarray(self.submit_times, dtype=np.float64)
        self.latencies = np.asarray(self.latencies, dtype=np.float64)
        self.status_codes = np.asarray(self.status_codes, dtype=np.int8)
        n = self.submit_times.size
        if not (self.latencies.size == n and self.status_codes.size == n):
            raise ValueError(
                f"column lengths differ: {n} submit times, "
                f"{self.latencies.size} latencies, {self.status_codes.size} statuses"
            )
        if n == 0:
            raise ValueError("trace set must contain at least one probe")
        if np.isnan(self.latencies).any():
            raise ValueError("latencies must not contain NaN (use inf)")
        completed = self.status_codes == 0
        if np.isinf(self.latencies[completed]).any():
            raise ValueError("completed probes must have finite latency")
        if np.isfinite(self.latencies[~completed]).any():
            raise ValueError("outlier probes must have latency == inf")
        if (self.latencies[completed] > self.timeout).any():
            raise ValueError(
                f"completed latencies must be <= timeout ({self.timeout})"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Iterable[ProbeRecord],
        *,
        timeout: float = PROBE_TIMEOUT,
    ) -> "TraceSet":
        """Build from an iterable of :class:`ProbeRecord`."""
        recs = list(records)
        return cls(
            name=name,
            submit_times=np.array([r.submit_time for r in recs]),
            latencies=np.array([r.latency for r in recs]),
            status_codes=np.array([_STATUS_CODES[r.status] for r in recs]),
            timeout=timeout,
        )

    @classmethod
    def merge(cls, name: str, parts: Iterable["TraceSet"]) -> "TraceSet":
        """Concatenate several trace sets (e.g. the 2007/08 aggregate)."""
        parts = list(parts)
        if not parts:
            raise ValueError("need at least one trace set to merge")
        timeout = parts[0].timeout
        if any(p.timeout != timeout for p in parts):
            raise ValueError("cannot merge trace sets with different timeouts")
        return cls(
            name=name,
            submit_times=np.concatenate([p.submit_times for p in parts]),
            latencies=np.concatenate([p.latencies for p in parts]),
            status_codes=np.concatenate([p.status_codes for p in parts]),
            timeout=timeout,
        )

    # -- iteration ------------------------------------------------------

    def __len__(self) -> int:
        return int(self.submit_times.size)

    def __iter__(self) -> Iterator[ProbeRecord]:
        for i in range(len(self)):
            yield ProbeRecord(
                job_id=i,
                submit_time=float(self.submit_times[i]),
                latency=float(self.latencies[i]),
                status=_CODE_STATUS[int(self.status_codes[i])],
            )

    # -- summary statistics (Table 1 machinery) --------------------------

    @property
    def n_outliers(self) -> int:
        """Number of probes that never started (timeout or fault)."""
        return int((self.status_codes != 0).sum())

    @property
    def outlier_ratio(self) -> float:
        """ρ — the fraction of outliers among all probes (§3)."""
        return self.n_outliers / len(self)

    @property
    def successful_latencies(self) -> np.ndarray:
        """Latencies of probes that started (the ``R`` samples)."""
        return self.latencies[self.status_codes == 0]

    def mean_latency(self) -> float:
        """Table 1 column ``mean < 10^5``: mean of non-outlier latencies."""
        return float(self.successful_latencies.mean())

    def bounded_mean_latency(self) -> float:
        """Table 1 column ``mean with 10^5``.

        Lower bound of the full-population mean obtained by counting each
        outlier as exactly one timeout duration.
        """
        lat = np.where(np.isfinite(self.latencies), self.latencies, self.timeout)
        return float(lat.mean())

    def std_latency(self) -> float:
        """Table 1 column ``σ_R``: std of non-outlier latencies."""
        return float(self.successful_latencies.std())

    def summary(self) -> dict[str, float]:
        """All Table-1 style statistics for this trace set."""
        return {
            "n_jobs": float(len(self)),
            "n_outliers": float(self.n_outliers),
            "rho": self.outlier_ratio,
            "mean_latency": self.mean_latency(),
            "bounded_mean_latency": self.bounded_mean_latency(),
            "std_latency": self.std_latency(),
        }

    # -- windows ----------------------------------------------------------

    def time_window(self, t_lo: float, t_hi: float, name: str | None = None) -> "TraceSet":
        """Probes submitted within ``[t_lo, t_hi)``."""
        if t_hi <= t_lo:
            raise ValueError(f"empty window [{t_lo}, {t_hi})")
        mask = (self.submit_times >= t_lo) & (self.submit_times < t_hi)
        if not mask.any():
            raise ValueError(f"no probes submitted in [{t_lo}, {t_hi})")
        return TraceSet(
            name=name or f"{self.name}[{t_lo:g},{t_hi:g})",
            submit_times=self.submit_times[mask],
            latencies=self.latencies[mask],
            status_codes=self.status_codes[mask],
            timeout=self.timeout,
        )

    # -- modeling ---------------------------------------------------------

    def to_latency_model(self, *, smooth: bool = True) -> LatencyModel:
        """Empirical :class:`LatencyModel` (ECDF + ρ) from this trace."""
        return LatencyModel.from_samples(
            self.successful_latencies,
            n_outliers=self.n_outliers,
            name=self.name,
            smooth=smooth,
        )

    def describe(self) -> str:
        """One-line summary."""
        return (
            f"{self.name}: {len(self)} probes, rho={self.outlier_ratio:.3f}, "
            f"mean={self.mean_latency():.0f}s, std={self.std_latency():.0f}s"
        )
