"""CSV and JSON-lines round-trip of trace sets.

The native serialisations: CSV for spreadsheet interoperability, JSONL
for streaming pipelines.  Both carry the full record (submit time,
latency, status) plus the trace metadata (name, timeout) in a header.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT

__all__ = [
    "write_trace_csv",
    "read_trace_csv",
    "write_trace_jsonl",
    "read_trace_jsonl",
]

_CODE_NAME = {0: "completed", 1: "timeout", 2: "fault"}
_NAME_CODE = {v: k for k, v in _CODE_NAME.items()}


def write_trace_csv(trace: TraceSet, target: str | Path | TextIO) -> None:
    """Write ``job_id,submit_time,latency,status`` rows with a ``#`` header."""
    should_close = isinstance(target, (str, Path))
    fh: TextIO = (
        open(target, "w", encoding="utf-8", newline="") if should_close else target
    )
    try:
        fh.write(f"# trace={trace.name} timeout={trace.timeout:g}\n")
        writer = csv.writer(fh)
        writer.writerow(["job_id", "submit_time", "latency", "status"])
        for i in range(len(trace)):
            lat = trace.latencies[i]
            writer.writerow(
                [
                    i,
                    f"{trace.submit_times[i]:.6f}",
                    "inf" if not np.isfinite(lat) else f"{lat:.6f}",
                    _CODE_NAME[int(trace.status_codes[i])],
                ]
            )
    finally:
        if should_close:
            fh.close()


def read_trace_csv(source: str | Path | TextIO) -> TraceSet:
    """Read a trace set written by :func:`write_trace_csv`."""
    should_close = isinstance(source, (str, Path))
    fh: TextIO = open(source, "r", encoding="utf-8") if should_close else source
    try:
        name = "trace"
        timeout = PROBE_TIMEOUT
        first = fh.readline()
        if first.startswith("#"):
            for token in first[1:].split():
                if token.startswith("trace="):
                    name = token[len("trace="):]
                elif token.startswith("timeout="):
                    timeout = float(token[len("timeout="):])
            header_line = fh.readline()
        else:
            header_line = first
        header = [h.strip() for h in header_line.strip().split(",")]
        expected = ["job_id", "submit_time", "latency", "status"]
        if header != expected:
            raise ValueError(f"unexpected CSV header {header!r}, want {expected!r}")
        submit, lat, codes = [], [], []
        for row in csv.reader(fh):
            if not row:
                continue
            submit.append(float(row[1]))
            lat.append(float("inf") if row[2] == "inf" else float(row[2]))
            codes.append(_NAME_CODE[row[3]])
        if not submit:
            raise ValueError("CSV contains no probe rows")
        return TraceSet(
            name=name,
            submit_times=np.asarray(submit),
            latencies=np.asarray(lat),
            status_codes=np.asarray(codes, dtype=np.int8),
            timeout=timeout,
        )
    finally:
        if should_close:
            fh.close()


def write_trace_jsonl(trace: TraceSet, target: str | Path | TextIO) -> None:
    """Write one JSON object per probe, preceded by a metadata object."""
    should_close = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w", encoding="utf-8") if should_close else target
    try:
        fh.write(
            json.dumps(
                {"kind": "trace_meta", "name": trace.name, "timeout": trace.timeout}
            )
            + "\n"
        )
        for i in range(len(trace)):
            lat = trace.latencies[i]
            fh.write(
                json.dumps(
                    {
                        "job_id": i,
                        "submit_time": float(trace.submit_times[i]),
                        "latency": None if not np.isfinite(lat) else float(lat),
                        "status": _CODE_NAME[int(trace.status_codes[i])],
                    }
                )
                + "\n"
            )
    finally:
        if should_close:
            fh.close()


def read_trace_jsonl(source: str | Path | TextIO) -> TraceSet:
    """Read a trace set written by :func:`write_trace_jsonl`."""
    should_close = isinstance(source, (str, Path))
    fh: TextIO = open(source, "r", encoding="utf-8") if should_close else source
    try:
        name = "trace"
        timeout = PROBE_TIMEOUT
        submit, lat, codes = [], [], []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("kind") == "trace_meta":
                name = obj.get("name", name)
                timeout = float(obj.get("timeout", timeout))
                continue
            submit.append(float(obj["submit_time"]))
            value = obj["latency"]
            lat.append(float("inf") if value is None else float(value))
            codes.append(_NAME_CODE[obj["status"]])
        if not submit:
            raise ValueError("JSONL contains no probe rows")
        return TraceSet(
            name=name,
            submit_times=np.asarray(submit),
            latencies=np.asarray(lat),
            status_codes=np.asarray(codes, dtype=np.int8),
            timeout=timeout,
        )
    finally:
        if should_close:
            fh.close()
