"""Trace characterization reports.

One call summarises a trace set the way a workload-archive study would:
population counts, latency moments and percentiles, outlier breakdown,
best-fitting parametric families, and a simple stationarity check
(first-half vs second-half statistics) — the due diligence before
trusting any strategy optimised on the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.fitting import FitResult, select_model
from repro.traces.dataset import TraceSet
from repro.util.tables import Table, format_float, format_seconds

__all__ = ["TraceReport", "characterize"]

_PERCENTILES = (5.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0)


@dataclass(frozen=True)
class TraceReport:
    """Everything :func:`characterize` derives from a trace set.

    Attributes
    ----------
    name:
        Trace-set name.
    n_jobs, n_outliers:
        Population counts.
    rho:
        Outlier ratio.
    mean, std, cv:
        Moments of the non-outlier latency (cv = std/mean — values above
        1 flag heavy tails).
    percentiles:
        Mapping percentile → latency (s).
    fits:
        Parametric fits ranked by AIC (best first).
    half_drift:
        Relative difference between the first- and second-half mean
        latencies — a crude nonstationarity indicator.
    """

    name: str
    n_jobs: int
    n_outliers: int
    rho: float
    mean: float
    std: float
    cv: float
    percentiles: dict[float, float]
    fits: list[FitResult]
    half_drift: float

    @property
    def is_heavy_tailed(self) -> bool:
        """Coefficient-of-variation heuristic (cv > 1)."""
        return self.cv > 1.0

    @property
    def best_family(self) -> str:
        """The AIC-best parametric family."""
        return self.fits[0].family if self.fits else "none"

    def to_table(self) -> Table:
        """Render as a two-column summary table."""
        table = Table(title=f"trace characterization: {self.name}",
                      columns=["quantity", "value"])
        table.add_row("jobs", self.n_jobs)
        table.add_row("outliers", f"{self.n_outliers} (rho={self.rho:.3f})")
        table.add_row("mean latency", format_seconds(self.mean))
        table.add_row("std latency", format_seconds(self.std))
        table.add_row("coeff. of variation", format_float(self.cv, 2))
        for p, v in self.percentiles.items():
            table.add_row(f"p{p:g}", format_seconds(v))
        table.add_row("best family (AIC)", self.best_family)
        table.add_row("half-drift", f"{self.half_drift:+.1%}")
        table.add_row(
            "heavy-tailed", "yes" if self.is_heavy_tailed else "no"
        )
        return table


def characterize(
    trace: TraceSet,
    *,
    fit_families: tuple[str, ...] | None = ("lognormal", "weibull", "gamma"),
) -> TraceReport:
    """Produce a :class:`TraceReport` for one trace set.

    Parameters
    ----------
    trace:
        The trace to characterise.
    fit_families:
        Families to rank by AIC (``None`` skips fitting, e.g. for tiny
        traces).
    """
    latencies = trace.successful_latencies
    if latencies.size < 2:
        raise ValueError(
            f"trace {trace.name!r} has too few successful probes to characterise"
        )
    mean = float(latencies.mean())
    std = float(latencies.std())
    percentiles = {
        p: float(np.percentile(latencies, p)) for p in _PERCENTILES
    }

    fits: list[FitResult] = []
    if fit_families is not None and latencies.size >= 8:
        fits = select_model(latencies, families=fit_families, criterion="aic")

    # first-half vs second-half (by submission time) mean drift
    order = np.argsort(trace.submit_times, kind="stable")
    ok_sorted = trace.latencies[order]
    finite_sorted = ok_sorted[np.isfinite(ok_sorted)]
    half = finite_sorted.size // 2
    if half >= 1:
        first, second = finite_sorted[:half], finite_sorted[half:]
        half_drift = float(second.mean() / first.mean() - 1.0)
    else:
        half_drift = 0.0

    return TraceReport(
        name=trace.name,
        n_jobs=len(trace),
        n_outliers=trace.n_outliers,
        rho=trace.outlier_ratio,
        mean=mean,
        std=std,
        cv=std / mean if mean > 0 else float("inf"),
        percentiles=percentiles,
        fits=fits,
        half_drift=half_drift,
    )
