"""Grid Workloads Archive (GWF) trace format.

The GWA distributes production-grid traces (including EGEE-era grids) in
the Grid Workload Format: one whitespace-separated record per line, 29
fields, ``#`` comments, ``-1`` for missing values (Iosup et al., *The
Grid Workloads Archive*, FGCS 2008).  The reproduction hint points at
these public traces as the natural real-data source, so trace sets
round-trip through this format: ``WaitTime`` carries the latency,
``Status`` the outlier flag.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.traces._workload import parse_workload_arrays
from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT

__all__ = ["GWF_FIELDS", "read_gwf", "read_gwf_workload", "write_gwf"]

#: the 29 GWF fields, in file order
GWF_FIELDS: tuple[str, ...] = (
    "JobID",
    "SubmitTime",
    "WaitTime",
    "RunTime",
    "NProcs",
    "AverageCPUTimeUsed",
    "UsedMemory",
    "ReqNProcs",
    "ReqTime",
    "ReqMemory",
    "Status",
    "UserID",
    "GroupID",
    "ExecutableID",
    "QueueID",
    "PartitionID",
    "OrigSiteID",
    "LastRunSiteID",
    "JobStructure",
    "JobStructureParams",
    "UsedNetwork",
    "UsedLocalDiskSpace",
    "UsedResources",
    "ReqPlatform",
    "ReqNetwork",
    "ReqLocalDiskSpace",
    "ReqResources",
    "VOID",
    "ProjectID",
)

#: GWF status code for a successfully completed job
_STATUS_COMPLETED = 1


def _open_for_read(path_or_file: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, "r", encoding="utf-8"), True
    return path_or_file, False


def _open_for_write(path_or_file: str | Path | TextIO) -> tuple[TextIO, bool]:
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, "w", encoding="utf-8"), True
    return path_or_file, False


def read_gwf(
    source: str | Path | TextIO,
    *,
    name: str | None = None,
    timeout: float = PROBE_TIMEOUT,
) -> TraceSet:
    """Parse a GWF trace into a :class:`TraceSet`.

    Jobs whose ``Status`` is not 1 (completed) or whose ``WaitTime`` is
    missing/negative are recorded as faults; completed jobs with
    ``WaitTime >= timeout`` are recorded as timeouts (the GWA keeps them,
    the paper's protocol cancels them — both are outliers for ρ).

    Parameters
    ----------
    source:
        Path or open text file.
    name:
        Trace-set name (default: file stem or ``"gwf"``).
    timeout:
        Outlier threshold applied to wait times.
    """
    fh, should_close = _open_for_read(source)
    try:
        submit, lat, codes = [], [], []
        for line_no, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 11:
                raise ValueError(
                    f"GWF line {line_no}: expected >= 11 fields, got {len(parts)}"
                )
            try:
                submit_time = float(parts[1])
                wait_time = float(parts[2])
                status = int(float(parts[10]))
            except ValueError as exc:
                raise ValueError(f"GWF line {line_no}: malformed numeric field") from exc
            submit.append(max(submit_time, 0.0))
            if status != _STATUS_COMPLETED or wait_time < 0:
                lat.append(np.inf)
                codes.append(2)  # fault
            elif wait_time >= timeout:
                lat.append(np.inf)
                codes.append(1)  # timeout-class outlier
            else:
                lat.append(wait_time)
                codes.append(0)
        if not submit:
            raise ValueError("GWF source contains no job records")
        if name is None:
            name = Path(source).stem if isinstance(source, (str, Path)) else "gwf"
        base = min(submit)
        return TraceSet(
            name=name,
            submit_times=np.asarray(submit) - base,
            latencies=np.asarray(lat),
            status_codes=np.asarray(codes, dtype=np.int8),
            timeout=timeout,
        )
    finally:
        if should_close:
            fh.close()


def read_gwf_workload(
    source: str | Path | TextIO,
) -> tuple[np.ndarray, np.ndarray]:
    """Parse a GWF trace into replayable ``(arrivals, runtimes)`` arrays.

    The workload view (SubmitTime + RunTime) for the trace-replay bridge
    (:class:`~repro.gridsim.replay.TraceReplayLoad`); jobs with missing
    or non-positive runtimes are dropped, arrivals are sorted and
    rebased so the first lands at 0.
    """
    return parse_workload_arrays(source, comment="#", fmt="GWF")


def write_gwf(trace: TraceSet, target: str | Path | TextIO) -> None:
    """Write a :class:`TraceSet` as a GWF file.

    Latency goes to ``WaitTime``; outliers get ``Status = 0`` and
    ``WaitTime = -1``; unknown fields are ``-1`` per GWA convention.
    """
    fh, should_close = _open_for_write(target)
    try:
        fh.write(f"# GWF trace written by repro: {trace.name}\n")
        fh.write("# Fields: " + " ".join(GWF_FIELDS) + "\n")
        for i in range(len(trace)):
            ok = trace.status_codes[i] == 0
            wait = f"{trace.latencies[i]:.3f}" if ok else "-1"
            status = str(_STATUS_COMPLETED) if ok else "0"
            row = [
                str(i),  # JobID
                f"{trace.submit_times[i]:.3f}",  # SubmitTime
                wait,  # WaitTime
                "0",  # RunTime: probes are ~null /bin/hostname runs
                "1",  # NProcs
            ] + ["-1"] * 5 + [status] + ["-1"] * 18
            fh.write(" ".join(row) + "\n")
    finally:
        if should_close:
            fh.close()


def gwf_roundtrip_string(trace: TraceSet) -> str:
    """Serialise to a GWF string (convenience for tests/examples)."""
    buf = io.StringIO()
    write_gwf(trace, buf)
    return buf.getvalue()
