"""Shared workload-array parsing for the SWF/GWF replay views.

Both archive formats put SubmitTime in field 1 and RunTime in field 3 of
a whitespace-separated record and differ only in their comment prefix,
so the replay-oriented readers (:func:`repro.traces.swf.read_swf_workload`,
:func:`repro.traces.gwf.read_gwf_workload`) delegate here.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

__all__ = ["parse_workload_arrays"]


def parse_workload_arrays(
    source: str | Path | TextIO,
    *,
    comment: str,
    fmt: str,
) -> tuple[np.ndarray, np.ndarray]:
    """``(arrivals, runtimes)`` from an SWF/GWF-shaped record stream.

    Jobs with missing or non-positive runtimes are dropped (they held no
    core); arrivals are sorted and rebased so the first lands at 0.
    """
    should_close = isinstance(source, (str, Path))
    fh: TextIO = open(source, "r", encoding="utf-8") if should_close else source
    try:
        submit, run = [], []
        for line_no, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment):
                continue
            parts = stripped.split()
            if len(parts) < 4:
                raise ValueError(
                    f"{fmt} line {line_no}: expected >= 4 fields, got {len(parts)}"
                )
            try:
                submit_time = float(parts[1])
                run_time = float(parts[3])
            except ValueError as exc:
                raise ValueError(
                    f"{fmt} line {line_no}: malformed numeric field"
                ) from exc
            if run_time <= 0.0:
                continue
            submit.append(max(submit_time, 0.0))
            run.append(run_time)
        if not submit:
            raise ValueError(f"{fmt} source contains no replayable job records")
    finally:
        if should_close:
            fh.close()
    arrivals = np.asarray(submit, dtype=np.float64)
    runtimes = np.asarray(run, dtype=np.float64)
    order = np.argsort(arrivals, kind="stable")
    arrivals = arrivals[order]
    return arrivals - arrivals[0], runtimes[order]
