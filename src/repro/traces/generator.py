"""Nonstationary probe-stream generation.

The paper's measurement protocol (§3.2) keeps a *constant number of
probes* in the system: a new probe is submitted each time another one
completes.  This module reproduces that protocol against a latency law
that may vary over the campaign (diurnal load swings, transient
degradations), producing trace sets with realistic submission-time
structure for studies that go beyond the stationary Table-1 statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import LatencyModel
from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT
from repro.util.rng import RngLike, as_rng
from repro.util.validation import check_in_range, check_positive

__all__ = ["DiurnalProfile", "generate_probe_trace"]


@dataclass(frozen=True)
class DiurnalProfile:
    """Multiplicative daily modulation of the latency scale.

    The latency of a probe submitted at time ``t`` is scaled by::

        m(t) = 1 + amplitude · sin(2π·(t - phase)/period)

    Attributes
    ----------
    amplitude:
        Relative swing in ``[0, 1)`` (0 disables modulation).
    period:
        Modulation period in seconds (default: one day).
    phase:
        Time of the rising zero-crossing (seconds).
    """

    amplitude: float = 0.0
    period: float = 86_400.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        check_in_range("amplitude", self.amplitude, 0.0, 1.0, inclusive=(True, False))
        check_positive("period", self.period)

    def factor(self, t: np.ndarray | float) -> np.ndarray | float:
        """Latency multiplier at submission time ``t``."""
        t = np.asarray(t, dtype=np.float64)
        out = 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t - self.phase) / self.period
        )
        return out if out.ndim else float(out)


def generate_probe_trace(
    model: LatencyModel,
    *,
    duration: float,
    n_slots: int,
    name: str = "synthetic",
    diurnal: DiurnalProfile | None = None,
    timeout: float = PROBE_TIMEOUT,
    rng: RngLike = None,
) -> TraceSet:
    """Run the constant-probe protocol against a latency model.

    ``n_slots`` probe slots are started at time 0; each slot resubmits a
    fresh probe as soon as the previous one completes (or is cancelled at
    ``timeout``), until ``duration`` is reached — exactly the §3.2
    protocol ("a new probe was submitted each time another one
    completed").

    Parameters
    ----------
    model:
        Latency law (outliers drawn with probability ``ρ``).
    duration:
        Campaign length in seconds.
    n_slots:
        Number of probes kept in flight.
    diurnal:
        Optional multiplicative modulation of latencies by submission
        time.
    timeout:
        Cancellation timeout for probes (outliers).
    rng:
        Seed or generator.

    Returns
    -------
    TraceSet
        All probes submitted during the campaign, in submission order.
    """
    check_positive("duration", duration)
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    check_positive("timeout", timeout)
    gen = as_rng(rng)

    submit_times: list[np.ndarray] = []
    latencies: list[np.ndarray] = []
    codes: list[np.ndarray] = []

    # each slot is an independent renewal process; vectorise over slots
    clock = np.zeros(n_slots)
    active = np.arange(n_slots)
    while active.size:
        lat = model.sample_latencies(active.size, gen)
        if diurnal is not None:
            lat = lat * np.asarray(diurnal.factor(clock[active]))
        is_outlier = ~np.isfinite(lat) | (lat >= timeout)
        observed = np.where(is_outlier, np.inf, lat)
        dwell = np.where(is_outlier, timeout, lat)

        submit_times.append(clock[active].copy())
        latencies.append(observed)
        codes.append(np.where(is_outlier, 1, 0).astype(np.int8))

        clock[active] += dwell
        active = active[clock[active] < duration]

    submit = np.concatenate(submit_times)
    order = np.argsort(submit, kind="stable")
    return TraceSet(
        name=name,
        submit_times=submit[order],
        latencies=np.concatenate(latencies)[order],
        status_codes=np.concatenate(codes)[order],
        timeout=timeout,
    )
