"""Standard Workload Format (SWF) support.

The Parallel Workloads Archive's SWF (Feitelson et al.) predates the GWF
and carries 18 fields per job with ``;`` header comments.  Cluster-level
waiting times from SWF traces are a common substitute latency source in
the workload-modeling literature the paper cites (Li/Groep/Walters,
Feitelson), so the pipeline accepts SWF as well.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO

import numpy as np

from repro.traces._workload import parse_workload_arrays
from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT

__all__ = ["SWF_FIELDS", "read_swf", "read_swf_workload", "write_swf"]

#: the 18 SWF fields, in file order
SWF_FIELDS: tuple[str, ...] = (
    "JobNumber",
    "SubmitTime",
    "WaitTime",
    "RunTime",
    "NAllocatedProcs",
    "AverageCPUTimeUsed",
    "UsedMemory",
    "ReqNProcs",
    "ReqTime",
    "ReqMemory",
    "Status",
    "UserID",
    "GroupID",
    "ExecutableNumber",
    "QueueNumber",
    "PartitionNumber",
    "PrecedingJobNumber",
    "ThinkTimeFromPrecedingJob",
)

#: SWF status codes that indicate the job actually ran
_RAN_STATUSES = {1}  # 1 = completed; 0 = failed, 5 = cancelled


def read_swf(
    source: str | Path | TextIO,
    *,
    name: str | None = None,
    timeout: float = PROBE_TIMEOUT,
) -> TraceSet:
    """Parse an SWF trace into a :class:`TraceSet` (WaitTime as latency)."""
    should_close = isinstance(source, (str, Path))
    fh: TextIO = open(source, "r", encoding="utf-8") if should_close else source
    try:
        submit, lat, codes = [], [], []
        for line_no, line in enumerate(fh, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(";"):
                continue
            parts = stripped.split()
            if len(parts) < 11:
                raise ValueError(
                    f"SWF line {line_no}: expected >= 11 fields, got {len(parts)}"
                )
            try:
                submit_time = float(parts[1])
                wait_time = float(parts[2])
                status = int(float(parts[10]))
            except ValueError as exc:
                raise ValueError(f"SWF line {line_no}: malformed numeric field") from exc
            submit.append(max(submit_time, 0.0))
            if status not in _RAN_STATUSES or wait_time < 0:
                lat.append(np.inf)
                codes.append(2)
            elif wait_time >= timeout:
                lat.append(np.inf)
                codes.append(1)
            else:
                lat.append(wait_time)
                codes.append(0)
        if not submit:
            raise ValueError("SWF source contains no job records")
        if name is None:
            name = Path(source).stem if isinstance(source, (str, Path)) else "swf"
        base = min(submit)
        return TraceSet(
            name=name,
            submit_times=np.asarray(submit) - base,
            latencies=np.asarray(lat),
            status_codes=np.asarray(codes, dtype=np.int8),
            timeout=timeout,
        )
    finally:
        if should_close:
            fh.close()


def read_swf_workload(
    source: str | Path | TextIO,
) -> tuple[np.ndarray, np.ndarray]:
    """Parse an SWF trace into replayable ``(arrivals, runtimes)`` arrays.

    This is the workload view (SubmitTime + RunTime) rather than the
    latency view of :func:`read_swf`: it feeds the trace-replay bridge
    (:class:`~repro.gridsim.replay.TraceReplayLoad`), which streams the
    recorded production jobs through the vectorised background lane.
    Jobs with missing or non-positive runtimes are dropped (they held no
    core); arrivals are sorted and rebased so the first lands at 0.
    """
    return parse_workload_arrays(source, comment=";", fmt="SWF")


def write_swf(trace: TraceSet, target: str | Path | TextIO) -> None:
    """Write a :class:`TraceSet` as an SWF file."""
    should_close = isinstance(target, (str, Path))
    fh: TextIO = open(target, "w", encoding="utf-8") if should_close else target
    try:
        fh.write(f"; SWF trace written by repro: {trace.name}\n")
        fh.write("; Fields: " + " ".join(SWF_FIELDS) + "\n")
        for i in range(len(trace)):
            ok = trace.status_codes[i] == 0
            wait = f"{trace.latencies[i]:.3f}" if ok else "-1"
            status = "1" if ok else "0"
            row = [
                str(i + 1),
                f"{trace.submit_times[i]:.3f}",
                wait,
                "0",
                "1",
            ] + ["-1"] * 5 + [status] + ["-1"] * 7
            fh.write(" ".join(row) + "\n")
    finally:
        if should_close:
            fh.close()
