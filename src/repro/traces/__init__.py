"""Workload traces: containers, synthesis, and archive formats.

The paper's reference data is a set of probe-job traces from the EGEE
biomed VO (12 sets, 10,893 probes, 10,000 s timeout).  Those traces are
not publicly bundled, so this package provides:

* :class:`ProbeRecord` / :class:`TraceSet` — the trace data model
  (submission date, final status, latency — exactly the fields the paper
  logs per probe in §3.2);
* :mod:`repro.traces.paper` — the paper's per-week Table 1 statistics as
  calibration targets, and synthesis of statistically matched trace sets;
* :mod:`repro.traces.calibration` — truncated-moment solvers that find
  distribution parameters reproducing a target (mean, std, ρ) triple;
* :mod:`repro.traces.generator` — nonstationary probe-stream generation
  (diurnal load, bursts) following the paper's constant-probe protocol;
* :mod:`repro.traces.gwf` / :mod:`repro.traces.swf` — Grid Workloads
  Archive (GWF) and Standard Workload Format (SWF) readers/writers so the
  pipeline runs on real public traces;
* :mod:`repro.traces.io` — CSV / JSON-lines round-trip of trace sets.
"""

from repro.traces.records import JobStatus, ProbeRecord
from repro.traces.dataset import TraceSet
from repro.traces.calibration import CalibrationResult, calibrate_lognormal
from repro.traces.paper import (
    PAPER_TABLE1,
    PaperWeekStats,
    WEEKS,
    WEEKLY_SETS,
    synthesize_all,
    synthesize_week,
)
from repro.traces.generator import DiurnalProfile, generate_probe_trace
from repro.traces.gwf import read_gwf, write_gwf
from repro.traces.report import TraceReport, characterize
from repro.traces.swf import read_swf, write_swf
from repro.traces.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)

__all__ = [
    "JobStatus",
    "ProbeRecord",
    "TraceSet",
    "CalibrationResult",
    "calibrate_lognormal",
    "PAPER_TABLE1",
    "PaperWeekStats",
    "WEEKS",
    "WEEKLY_SETS",
    "synthesize_all",
    "synthesize_week",
    "DiurnalProfile",
    "generate_probe_trace",
    "TraceReport",
    "characterize",
    "read_gwf",
    "write_gwf",
    "read_swf",
    "write_swf",
    "read_trace_csv",
    "write_trace_csv",
    "read_trace_jsonl",
    "write_trace_jsonl",
]
