"""Calibration of parametric latency laws against trace statistics.

Used to synthesize the paper's trace sets: given a target (mean, std) of
latencies *truncated at the probe timeout* — the quantities Table 1
reports — solve for log-normal parameters whose truncated moments match.
The solver inverts :func:`repro.distributions.moments.truncated_mean_std`
with :func:`scipy.optimize.least_squares`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.distributions.base import LatencyDistribution
from repro.distributions.moments import truncated_mean_std
from repro.distributions.parametric import LogNormal
from repro.distributions.shifted import ShiftedDistribution
from repro.traces.records import PROBE_TIMEOUT
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["CalibrationResult", "calibrate_lognormal"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a truncated-moment calibration.

    Attributes
    ----------
    distribution:
        The calibrated (possibly shifted) log-normal law of ``R``.
    mu, sigma:
        Parameters of the underlying normal.
    achieved_mean, achieved_std:
        Truncated moments of the calibrated law at the timeout.
    target_mean, target_std:
        The requested moments.
    """

    distribution: LatencyDistribution
    mu: float
    sigma: float
    achieved_mean: float
    achieved_std: float
    target_mean: float
    target_std: float

    @property
    def relative_error(self) -> float:
        """Worst relative moment error (diagnostic)."""
        return max(
            abs(self.achieved_mean - self.target_mean) / self.target_mean,
            abs(self.achieved_std - self.target_std) / self.target_std,
        )


def calibrate_lognormal(
    target_mean: float,
    target_std: float,
    *,
    timeout: float = PROBE_TIMEOUT,
    shift: float = 0.0,
    tol: float = 1e-3,
) -> CalibrationResult:
    """Solve for a (shifted) log-normal matching truncated moments.

    Parameters
    ----------
    target_mean, target_std:
        Mean and standard deviation of ``R | R <= timeout`` to match —
        Table 1's ``mean < 10^5`` and ``σ_R`` columns.
    timeout:
        Truncation point (the probe timeout).
    shift:
        Fixed latency floor added below the log-normal body (seconds);
        models the incompressible middleware round trips.
    tol:
        Maximum acceptable relative moment error.

    Raises
    ------
    RuntimeError
        If the optimiser cannot match the targets within ``tol`` — e.g.
        a coefficient of variation unreachable under the family.
    """
    check_positive("target_mean", target_mean)
    check_positive("target_std", target_std)
    check_positive("timeout", timeout)
    check_nonnegative("shift", shift)
    if target_mean <= shift:
        raise ValueError(
            f"target_mean ({target_mean}) must exceed the shift ({shift})"
        )
    if target_mean >= timeout:
        raise ValueError(
            f"target_mean ({target_mean}) must be below the timeout ({timeout})"
        )

    def build(params: np.ndarray) -> LatencyDistribution:
        mu, log_sigma = params
        body = LogNormal(mu=float(mu), sigma=float(np.exp(log_sigma)))
        return ShiftedDistribution(body, shift) if shift > 0 else body

    def residuals(params: np.ndarray) -> np.ndarray:
        dist = build(params)
        mean, std = truncated_mean_std(dist, timeout, n_points=8001)
        return np.array(
            [(mean - target_mean) / target_mean, (std - target_std) / target_std]
        )

    # start from the untruncated-moment solution of the unshifted body
    body0 = LogNormal.from_mean_std(
        max(target_mean - shift, 1.0), max(target_std, 1.0)
    )
    x0 = np.array([body0.mu, np.log(body0.sigma)])
    sol = least_squares(residuals, x0, xtol=1e-12, ftol=1e-12, max_nfev=200)
    dist = build(sol.x)
    achieved_mean, achieved_std = truncated_mean_std(dist, timeout, n_points=8001)
    result = CalibrationResult(
        distribution=dist,
        mu=float(sol.x[0]),
        sigma=float(np.exp(sol.x[1])),
        achieved_mean=achieved_mean,
        achieved_std=achieved_std,
        target_mean=target_mean,
        target_std=target_std,
    )
    if result.relative_error > tol:
        raise RuntimeError(
            f"calibration failed: relative error {result.relative_error:.3g} "
            f"> tol {tol} for targets mean={target_mean}, std={target_std}"
        )
    return result
