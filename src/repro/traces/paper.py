"""The paper's reference datasets: Table 1 targets and trace synthesis.

The EGEE probe traces themselves are not public as a bundled artifact, so
each trace set is *synthesized* to match the statistics the paper reports
for it in Table 1:

* ``ρ`` is recovered from the two mean columns — counting every outlier
  as exactly one timeout duration gives
  ``mean_with = (1-ρ)·mean_less + ρ·timeout``, hence
  ``ρ = (mean_with - mean_less) / (timeout - mean_less)``.
  The recovered values are strikingly round (0.05, 0.17, 0.24, 0.33 …),
  which supports the reconstruction.
* the non-outlier latency body is a truncated shifted log-normal whose
  truncated mean/std are solved to match ``mean < 10^5`` and ``σ_R``
  (:mod:`repro.traces.calibration`).

Sampling uses randomized quantile stratification so that even the ~800
probes of a weekly trace reproduce the target moments closely; plain
i.i.d. sampling is available for statistical studies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.truncated import TruncatedDistribution
from repro.traces.calibration import calibrate_lognormal
from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT
from repro.util.rng import RngLike, as_rng

__all__ = [
    "PaperWeekStats",
    "PAPER_TABLE1",
    "WEEKS",
    "WEEKLY_SETS",
    "AGGREGATE",
    "synthesize_week",
    "synthesize_all",
]


@dataclass(frozen=True)
class PaperWeekStats:
    """One row of the paper's Table 1.

    Attributes
    ----------
    mean_less:
        Mean of latencies below 10,000 s (column ``mean < 10^5``).
    mean_with:
        Lower bound of the full mean with outliers counted as 10,000 s
        (column ``mean with 10^5``).
    e_j:
        Expected latency with single resubmission at the optimal timeout.
    sigma_r:
        Std of latencies below 10,000 s.
    sigma_j:
        Std of the latency including resubmissions.
    delta_sigma:
        Reported relative change of σ (as a fraction, e.g. ``-0.63``).
    n_jobs:
        Number of probes assigned to this set in our reconstruction
        (the paper reports only the 10,893 total).
    """

    mean_less: float
    mean_with: float
    e_j: float
    sigma_r: float
    sigma_j: float
    delta_sigma: float
    n_jobs: int

    @property
    def rho(self) -> float:
        """Outlier ratio implied by the two mean columns (see module doc)."""
        return (self.mean_with - self.mean_less) / (PROBE_TIMEOUT - self.mean_less)


#: Table 1 of the paper, keyed by trace-set name, in its display order.
PAPER_TABLE1: dict[str, PaperWeekStats] = {
    "2006-IX": PaperWeekStats(570.0, 1042.0, 471.0, 886.0, 331.0, -0.63, 2093),
    "2007/08": PaperWeekStats(469.0, 2089.0, 500.0, 723.0, 358.0, -0.51, 8800),
    "2007-36": PaperWeekStats(446.0, 2739.0, 510.0, 748.0, 370.0, -0.51, 800),
    "2007-37": PaperWeekStats(506.0, 3639.0, 617.0, 848.0, 486.0, -0.43, 800),
    "2007-38": PaperWeekStats(447.0, 2739.0, 531.0, 682.0, 399.0, -0.42, 800),
    "2007-39": PaperWeekStats(489.0, 3533.0, 596.0, 741.0, 482.0, -0.35, 800),
    "2007-50": PaperWeekStats(660.0, 2341.0, 628.0, 1046.0, 475.0, -0.55, 800),
    "2007-51": PaperWeekStats(478.0, 1716.0, 517.0, 510.0, 353.0, -0.31, 800),
    "2007-52": PaperWeekStats(443.0, 1685.0, 476.0, 582.0, 334.0, -0.43, 800),
    "2007-53": PaperWeekStats(449.0, 1977.0, 482.0, 678.0, 330.0, -0.51, 800),
    "2008-01": PaperWeekStats(434.0, 1678.0, 499.0, 317.0, 339.0, +0.07, 800),
    "2008-02": PaperWeekStats(418.0, 1568.0, 441.0, 547.0, 278.0, -0.49, 800),
    "2008-03": PaperWeekStats(538.0, 1484.0, 419.0, 1196.0, 269.0, -0.78, 800),
}

#: name of the aggregate trace (union of the 11 weekly sets)
AGGREGATE = "2007/08"

#: the 11 weekly trace sets of the 2007–2008 campaign (Table 5's rows)
WEEKLY_SETS: tuple[str, ...] = tuple(
    name for name in PAPER_TABLE1 if name not in ("2006-IX", AGGREGATE)
)

#: every directly synthesizable trace set (all but the aggregate)
WEEKS: tuple[str, ...] = ("2006-IX",) + WEEKLY_SETS

#: duration of one probe campaign in our reconstruction (one week, §3.2)
_CAMPAIGN_SECONDS = 7 * 24 * 3600.0

#: latency floor below the log-normal body (incompressible middleware
#: round-trips; ~10 services on the submission path, §1).  The paper's
#: Table 2 bounds this floor empirically: with b = 100 parallel copies the
#: expected latency still only reaches 152 s, so the distribution carries
#: essentially no mass below ~150 s.
_LATENCY_SHIFT = 150.0


def _stratified_uniforms(n: int, rng: np.random.Generator) -> np.ndarray:
    """Randomized stratified U(0,1): one jittered point per 1/n stratum."""
    return (np.arange(n) + rng.random(n)) / n


def synthesize_week(
    week: str,
    seed: RngLike = None,
    *,
    n_jobs: int | None = None,
    stratified: bool = True,
) -> TraceSet:
    """Synthesize one trace set calibrated to its Table 1 row.

    Parameters
    ----------
    week:
        A name from :data:`WEEKS` (the aggregate must be built via
        :func:`synthesize_all`, it is the union of the weekly sets).
    seed:
        RNG seed / generator.
    n_jobs:
        Override the probe count (default: the per-set reconstruction
        that totals the paper's 10,893).
    stratified:
        Use randomized quantile stratification (default) so the sample
        moments match the targets tightly; set ``False`` for plain
        i.i.d. sampling.
    """
    if week == AGGREGATE:
        raise ValueError(
            f"{AGGREGATE!r} is the union of the weekly sets; use synthesize_all()"
        )
    try:
        stats = PAPER_TABLE1[week]
    except KeyError:
        raise ValueError(
            f"unknown trace set {week!r}; available: {', '.join(WEEKS)}"
        ) from None
    gen = as_rng(seed)
    n = stats.n_jobs if n_jobs is None else int(n_jobs)
    if n < 2:
        raise ValueError(f"n_jobs must be >= 2, got {n}")

    calib = calibrate_lognormal(
        stats.mean_less, stats.sigma_r, timeout=PROBE_TIMEOUT, shift=_LATENCY_SHIFT
    )
    truncated = TruncatedDistribution(calib.distribution, PROBE_TIMEOUT)

    n_outliers = int(round(stats.rho * n))
    n_success = n - n_outliers
    if n_success < 1:
        raise ValueError(f"outlier ratio {stats.rho:.3f} leaves no successes")

    if stratified:
        u = _stratified_uniforms(n_success, gen)
    else:
        u = gen.random(n_success)
    latencies_ok = np.asarray(truncated.ppf(u), dtype=np.float64)
    gen.shuffle(latencies_ok)

    latencies = np.concatenate(
        [latencies_ok, np.full(n_outliers, np.inf)]
    )
    # statuses: completed / timeout (treat all outliers as probe timeouts,
    # as the paper's measurement protocol cancels them at 10,000 s)
    codes = np.concatenate(
        [np.zeros(n_success, dtype=np.int8), np.ones(n_outliers, dtype=np.int8)]
    )
    order = gen.permutation(n)
    submit = np.sort(gen.random(n)) * _CAMPAIGN_SECONDS
    return TraceSet(
        name=week,
        submit_times=submit,
        latencies=latencies[order],
        status_codes=codes[order],
    )


def synthesize_all(
    seed: RngLike = 2009,
    *,
    stratified: bool = True,
) -> dict[str, TraceSet]:
    """Synthesize every trace set, including the ``2007/08`` aggregate.

    Returns a dict in Table 1's display order; the aggregate is the union
    of the 11 weekly sets (which is how the paper's 2007/08 row relates
    to its weekly rows).
    """
    gen = as_rng(seed)
    out: dict[str, TraceSet] = {}
    for week in WEEKS:
        out[week] = synthesize_week(week, gen, stratified=stratified)
    aggregate = TraceSet.merge(AGGREGATE, [out[w] for w in WEEKLY_SETS])
    ordered: dict[str, TraceSet] = {}
    for name in PAPER_TABLE1:
        ordered[name] = aggregate if name == AGGREGATE else out[name]
    return ordered
