"""Probe job records — the unit of trace data.

Paper §3.2: *"For each probe job, the job submission date, the job final
status and the total duration were logged."*  A record carries exactly
that, with the 10,000 s timeout convention for outliers.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["JobStatus", "ProbeRecord", "PROBE_TIMEOUT"]

#: the paper's probe timeout: latencies beyond this are outliers (§3.2)
PROBE_TIMEOUT: float = 10_000.0


class JobStatus(enum.Enum):
    """Final status of a probe job."""

    #: the job started (and, being a probe, immediately completed)
    COMPLETED = "completed"
    #: the job exceeded the measurement timeout and was cancelled
    TIMEOUT = "timeout"
    #: the job failed outright (middleware error, aborted, lost)
    FAULT = "fault"

    @property
    def is_outlier(self) -> bool:
        """Timeouts and faults both count into the outlier ratio ρ."""
        return self is not JobStatus.COMPLETED


@dataclass(frozen=True)
class ProbeRecord:
    """One probe job observation.

    Attributes
    ----------
    job_id:
        Identifier unique within the trace set.
    submit_time:
        Submission date in seconds since the start of the trace.
    latency:
        Seconds from submission to execution start.  ``inf`` for
        outliers (never started); finite values above the probe timeout
        are invalid.
    status:
        Final :class:`JobStatus`.
    """

    job_id: int
    submit_time: float
    latency: float
    status: JobStatus

    def __post_init__(self) -> None:
        if self.submit_time < 0 or math.isnan(self.submit_time):
            raise ValueError(f"submit_time must be >= 0, got {self.submit_time!r}")
        if math.isnan(self.latency):
            raise ValueError("latency must not be NaN (use inf for outliers)")
        if self.status is JobStatus.COMPLETED:
            if not math.isfinite(self.latency) or self.latency < 0:
                raise ValueError(
                    f"completed job must have finite latency >= 0, got "
                    f"{self.latency!r}"
                )
        elif math.isfinite(self.latency):
            raise ValueError(
                f"{self.status.value} job must have latency == inf, got "
                f"{self.latency!r}"
            )

    @property
    def is_outlier(self) -> bool:
        """Whether this probe counts into ρ."""
        return self.status.is_outlier
