"""Shared numerical and presentation utilities.

This package holds the small, dependency-free building blocks used across
the library:

* :mod:`repro.util.grids` — uniform time grids and vectorised cumulative
  trapezoid integration, the numerical backbone of every strategy
  expectation computed in :mod:`repro.core`.
* :mod:`repro.util.validation` — argument checking helpers with consistent
  error messages.
* :mod:`repro.util.rng` — deterministic random-stream management.
* :mod:`repro.util.tables` — fixed-width ASCII table rendering used by the
  experiment harness to print paper-style tables.
* :mod:`repro.util.series` — labelled (x, y) series containers used as the
  data form of every reproduced figure.
"""

from repro.util.grids import TimeGrid, cumulative_trapezoid, trapezoid
from repro.util.rng import spawn_rngs, as_rng
from repro.util.series import Series, SeriesBundle
from repro.util.tables import Table, format_float, format_seconds
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "TimeGrid",
    "cumulative_trapezoid",
    "trapezoid",
    "spawn_rngs",
    "as_rng",
    "Series",
    "SeriesBundle",
    "Table",
    "format_float",
    "format_seconds",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
]
