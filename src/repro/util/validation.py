"""Argument validation helpers with consistent error messages.

These are used at public API boundaries.  Internal hot paths skip them —
validation happens once when a model or strategy object is constructed,
not inside vectorised sweeps.
"""

from __future__ import annotations

import math
from typing import Any

__all__ = [
    "check_finite",
    "check_in_range",
    "check_int_at_least",
    "check_positive",
    "check_nonnegative",
    "check_probability",
]


def check_finite(name: str, value: float) -> float:
    """Ensure ``value`` is a finite real number; return it as ``float``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def check_positive(name: str, value: float) -> float:
    """Ensure ``value`` is finite and strictly positive."""
    value = check_finite(name, value)
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Ensure ``value`` is finite and >= 0."""
    value = check_finite(name, value)
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` is a probability in ``[0, 1]``."""
    value = check_finite(name, value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_int_at_least(name: str, value: int, minimum: int) -> int:
    """Ensure ``value`` is an integer >= ``minimum``; return it as ``int``."""
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got {value!r}")
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if as_int != value:
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if as_int < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value!r}")
    return as_int


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: tuple[bool, bool] = (True, True),
) -> float:
    """Ensure ``lo (<|<=) value (<|<=) hi`` according to ``inclusive``."""
    value = check_finite(name, value)
    lo_ok = value >= lo if inclusive[0] else value > lo
    hi_ok = value <= hi if inclusive[1] else value < hi
    if not (lo_ok and hi_ok):
        lo_b = "[" if inclusive[0] else "("
        hi_b = "]" if inclusive[1] else ")"
        raise ValueError(f"{name} must be in {lo_b}{lo}, {hi}{hi_b}, got {value!r}")
    return value


def check_type(name: str, value: Any, expected: type) -> Any:
    """Ensure ``value`` is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be a {expected.__name__}, got {type(value).__name__}"
        )
    return value
