"""Deterministic random-stream management.

All stochastic components (trace synthesis, Monte-Carlo engines, the
discrete-event simulator) take an explicit seed or :class:`numpy.random.Generator`
and derive independent child streams via :func:`numpy.random.SeedSequence.spawn`,
so that experiments are reproducible and sub-streams never alias each other.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "spawn_rngs"]

RngLike = int | np.random.Generator | np.random.SeedSequence | None


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    :class:`~numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so streams can be threaded through call chains).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    If ``seed`` is already a generator, children are derived from its
    internal bit generator's seed sequence when available, otherwise from
    integers drawn from it (still deterministic given the generator state).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if isinstance(seed_seq, np.random.SeedSequence):
            return [np.random.default_rng(s) for s in seed_seq.spawn(n)]
        ints = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(i)) for i in ints]
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(n)]
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(n)]
