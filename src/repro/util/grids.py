"""Uniform time grids and vectorised integration primitives.

Every analytic quantity in the paper is an integral of the latency
sub-distribution ``F̃_R`` over ``[0, t]`` for many candidate ``t`` at once
(timeout sweeps).  Following the optimisation guidance for numerical Python
(vectorise, compute cumulatively, avoid per-candidate Python loops), all
integrals are evaluated as cumulative trapezoid sums over a shared uniform
grid, which makes a full sweep over *all* candidate timeouts a single O(n)
pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_positive

__all__ = ["TimeGrid", "cumulative_trapezoid", "trapezoid"]


def cumulative_trapezoid(y: np.ndarray, dx: float) -> np.ndarray:
    """Cumulative trapezoid integral of ``y`` sampled at spacing ``dx``.

    Returns an array ``I`` of the same length as ``y`` with ``I[0] = 0`` and
    ``I[k] = ∫₀^{k·dx} y`` under the trapezoid rule.  Matches
    :func:`scipy.integrate.cumulative_trapezoid` with ``initial=0`` but
    avoids the scipy call overhead in hot loops.

    Parameters
    ----------
    y:
        Sampled integrand, 1-D or n-D (integration along the last axis).
    dx:
        Grid spacing (seconds).
    """
    y = np.asarray(y, dtype=np.float64)
    out = np.empty_like(y)
    if y.ndim == 1:
        out[0] = 0.0
        np.cumsum((y[1:] + y[:-1]) * (0.5 * dx), out=out[1:])
    else:
        out[..., 0] = 0.0
        np.cumsum((y[..., 1:] + y[..., :-1]) * (0.5 * dx), axis=-1, out=out[..., 1:])
    return out


def trapezoid(y: np.ndarray, dx: float) -> float:
    """Plain trapezoid integral of ``y`` over its full support."""
    y = np.asarray(y, dtype=np.float64)
    if y.size < 2:
        return 0.0
    return float((y[1:] + y[:-1]).sum() * 0.5 * dx)


@dataclass(frozen=True)
class TimeGrid:
    """A uniform grid ``0, dt, 2·dt, …, t_max`` used to tabulate ``F̃_R``.

    The default configuration (``t_max=10_000``, ``dt=1``) matches the
    paper's setting: probe jobs are cancelled at 10,000 s (outliers) and
    timeouts are optimised at integer-second resolution (§7.1: "the study
    was limited to integer values of t0 and t∞").

    Attributes
    ----------
    t_max:
        Upper end of the grid in seconds (inclusive).
    dt:
        Grid spacing in seconds.
    """

    t_max: float = 10_000.0
    dt: float = 1.0

    def __post_init__(self) -> None:
        check_positive("t_max", self.t_max)
        check_positive("dt", self.dt)
        if self.t_max < self.dt:
            raise ValueError(
                f"t_max ({self.t_max}) must be at least one grid step ({self.dt})"
            )

    @property
    def n(self) -> int:
        """Number of grid points (including both endpoints)."""
        return int(round(self.t_max / self.dt)) + 1

    @property
    def times(self) -> np.ndarray:
        """The grid points as a float64 array of shape ``(n,)``."""
        return np.arange(self.n, dtype=np.float64) * self.dt

    def index_of(self, t: float) -> int:
        """Index of the grid point nearest to time ``t``.

        Raises
        ------
        ValueError
            If ``t`` lies outside ``[0, t_max]`` (beyond half a grid step).
        """
        idx = int(round(t / self.dt))
        if idx < 0 or idx >= self.n:
            raise ValueError(
                f"time {t!r} outside grid [0, {self.t_max}] at dt={self.dt}"
            )
        return idx

    def time_of(self, index: int) -> float:
        """Time coordinate of grid point ``index``."""
        if not 0 <= index < self.n:
            raise ValueError(f"index {index} outside grid of size {self.n}")
        return index * self.dt

    def window(self, t_lo: float, t_hi: float) -> np.ndarray:
        """Indices of grid points with ``t_lo <= t <= t_hi``."""
        lo = max(0, int(np.ceil(t_lo / self.dt - 1e-9)))
        hi = min(self.n - 1, int(np.floor(t_hi / self.dt + 1e-9)))
        if hi < lo:
            return np.empty(0, dtype=np.intp)
        return np.arange(lo, hi + 1, dtype=np.intp)

    def cumint(self, y: np.ndarray) -> np.ndarray:
        """Cumulative trapezoid integral of ``y`` tabulated on this grid."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape[-1] != self.n:
            raise ValueError(
                f"integrand has {y.shape[-1]} samples, grid has {self.n} points"
            )
        return cumulative_trapezoid(y, self.dt)

    def integrate(self, y: np.ndarray) -> float:
        """Trapezoid integral of ``y`` over the whole grid."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape[-1] != self.n:
            raise ValueError(
                f"integrand has {y.shape[-1]} samples, grid has {self.n} points"
            )
        return trapezoid(y, self.dt)

    def derivative(self, y: np.ndarray) -> np.ndarray:
        """Central-difference derivative of ``y`` on this grid.

        One-sided differences are used at the endpoints, matching
        :func:`numpy.gradient`.
        """
        y = np.asarray(y, dtype=np.float64)
        if y.shape[-1] != self.n:
            raise ValueError(
                f"array has {y.shape[-1]} samples, grid has {self.n} points"
            )
        return np.gradient(y, self.dt, axis=-1)

    def with_resolution(self, dt: float) -> "TimeGrid":
        """A new grid over the same span with different spacing."""
        return TimeGrid(t_max=self.t_max, dt=dt)
