"""Fixed-width ASCII table rendering for paper-style result tables.

The experiment harness reproduces each of the paper's tables as a
:class:`Table`: a header row, typed columns and a monospace renderer.  No
plotting library is assumed; tables are the primary human-readable output
(mirroring how the paper reports results).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["Table", "format_float", "format_seconds", "format_percent"]


def format_float(value: float, digits: int = 2) -> str:
    """Format a float with ``digits`` decimals, empty string for ``None``/NaN."""
    if value is None:
        return ""
    try:
        v = float(value)
    except (TypeError, ValueError):
        return str(value)
    if v != v:  # NaN
        return ""
    return f"{v:.{digits}f}"


def format_seconds(value: float) -> str:
    """Format a duration in seconds the way the paper prints them (``471s``)."""
    if value is None:
        return ""
    v = float(value)
    if v != v:
        return ""
    return f"{v:.0f}s"


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage (``-33.4%``)."""
    if value is None:
        return ""
    v = float(value)
    if v != v:
        return ""
    return f"{100.0 * v:+.{digits}f}%"


@dataclass
class Table:
    """A simple column-oriented table with an ASCII renderer.

    Parameters
    ----------
    title:
        Table caption (printed above the header).
    columns:
        Column names, in display order.
    """

    title: str
    columns: Sequence[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row; must match the number of columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def extend(self, rows: Iterable[Sequence[Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.add_row(*row)

    def column(self, name: str) -> list[Any]:
        """Values of the named column, in row order."""
        try:
            idx = list(self.columns).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[idx] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self, max_width: int | None = None) -> str:
        """Render the table as monospace text."""
        headers = [str(c) for c in self.columns]
        str_rows = [[_stringify(v) for v in row] for row in self.rows]
        widths = [len(h) for h in headers]
        for row in str_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, fmt_line(headers), sep]
        lines.extend(fmt_line(row) for row in str_rows)
        text = "\n".join(lines)
        if max_width is not None:
            text = "\n".join(line[:max_width] for line in text.splitlines())
        return text

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _stringify(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value != value:
            return ""
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
