"""Labelled (x, y) series — the data form of every reproduced figure.

A paper figure is reproduced as a :class:`SeriesBundle`: named curves
sharing axis labels.  Bundles can be rendered as aligned text columns (for
terminal inspection or ``EXPERIMENTS.md``) and exported to plain dicts for
downstream plotting by users who have a plotting stack installed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["Series", "SeriesBundle"]


@dataclass(frozen=True)
class Series:
    """A single named curve.

    Attributes
    ----------
    label:
        Legend label (e.g. ``"b=3"`` or a dataset name).
    x, y:
        Coordinate arrays of equal length.
    """

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(
                f"series {self.label!r}: x{x.shape} and y{y.shape} must be "
                "equal-length 1-D arrays"
            )
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    def __len__(self) -> int:
        return int(self.x.size)

    @property
    def y_min(self) -> float:
        """Minimum y value (NaN-aware)."""
        return float(np.nanmin(self.y)) if len(self) else float("nan")

    @property
    def argmin_x(self) -> float:
        """x at the minimum y (first occurrence, NaN-aware)."""
        if not len(self):
            return float("nan")
        return float(self.x[int(np.nanargmin(self.y))])

    def sample(self, n: int) -> "Series":
        """Evenly subsample to at most ``n`` points (keeps endpoints)."""
        if n <= 0:
            raise ValueError(f"n must be > 0, got {n}")
        if len(self) <= n:
            return self
        idx = np.unique(np.linspace(0, len(self) - 1, n).round().astype(int))
        return Series(self.label, self.x[idx], self.y[idx])

    def to_dict(self) -> dict:
        """Plain-python export (for JSON serialisation)."""
        return {"label": self.label, "x": self.x.tolist(), "y": self.y.tolist()}


@dataclass
class SeriesBundle:
    """A set of curves sharing axes — the reproduction of one figure."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add(self, series: Series) -> None:
        """Append a curve."""
        self.series.append(series)

    def __iter__(self) -> Iterator[Series]:
        return iter(self.series)

    def __len__(self) -> int:
        return len(self.series)

    def get(self, label: str) -> Series:
        """The curve with the given label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r} in {self.title!r}")

    @property
    def labels(self) -> list[str]:
        """Labels of all curves, in insertion order."""
        return [s.label for s in self.series]

    def render(self, points: int = 12) -> str:
        """Render all curves as aligned text columns (subsampled)."""
        lines = [f"{self.title}   [x={self.x_label}, y={self.y_label}]"]
        for s in self.series:
            sub = s.sample(points)
            pairs = ", ".join(f"({xi:g}, {yi:g})" for xi, yi in zip(sub.x, sub.y))
            lines.append(f"  {s.label}: {pairs}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Plain-python export (for JSON serialisation)."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.to_dict() for s in self.series],
        }

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
