"""Command-line interface: list and run reproduction experiments.

Usage::

    python -m repro list
    python -m repro run table2 --seed 2009 --dt 1.0
    python -m repro run all --out results/ --jobs 4
    python -m repro population --scale 100000 --shards 4
    python -m repro describe 2006-IX
    python -m repro bench --threshold 1.5
    python -m repro chaos --schedule storm-broker-site --trace trace.jsonl
    python -m repro report trace.jsonl --gwf trace.gwf
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Sequence

from repro._version import __version__
from repro.experiments import list_experiments
from repro.experiments.runner import iter_many
from repro.traces.paper import PAPER_TABLE1, synthesize_week

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Modeling user submission strategies on "
            "production grids' (HPDC 2009)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run_p.add_argument(
        "--seed", type=int, default=2009, help="trace-synthesis seed"
    )
    run_p.add_argument(
        "--dt",
        type=float,
        default=1.0,
        help="time-grid resolution in seconds (coarser = faster)",
    )
    run_p.add_argument(
        "--out",
        type=Path,
        default=None,
        help="directory to write rendered results into (one .txt per id)",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for running several experiments in "
            "parallel (output is byte-identical to --jobs 1)"
        ),
    )

    fed_p = sub.add_parser(
        "federation",
        help="run a user population on a multi-VO federated grid",
    )
    fed_p.add_argument("--sites", type=int, default=8, help="number of sites")
    fed_p.add_argument(
        "--brokers", type=int, default=2, help="number of federated WMS brokers"
    )
    fed_p.add_argument(
        "--vos",
        default="biomed:0.5,atlas:0.3,cms:0.2",
        help="comma-separated VO:share pairs (shares are normalised)",
    )
    fed_p.add_argument(
        "--tasks", type=int, default=2000, help="total tasks across all VOs"
    )
    fed_p.add_argument(
        "--adoption",
        type=float,
        default=0.5,
        help="fraction of the first VO's tasks adopting burst submission",
    )
    fed_p.add_argument(
        "-b", type=int, default=3, help="burst width of the adopted strategy"
    )
    fed_p.add_argument(
        "--runtime", type=float, default=600.0, help="task payload runtime (s)"
    )
    fed_p.add_argument(
        "--window",
        type=float,
        default=86_400.0,
        help="submission window (virtual s)",
    )
    fed_p.add_argument(
        "--utilization", type=float, default=0.85, help="background utilisation"
    )
    fed_p.add_argument(
        "--info-lag",
        type=float,
        default=900.0,
        help="federated staleness towards non-owned sites (s)",
    )
    fed_p.add_argument("--seed", type=int, default=29)

    pop_p = sub.add_parser(
        "population",
        help="run the fleet-scale population day (optionally sharded)",
    )
    pop_p.add_argument(
        "--scale",
        type=int,
        default=20_000,
        help="total tasks across the four preset fleets",
    )
    pop_p.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "worker processes; sites are partitioned round-robin and "
            "cross-shard WMS traffic is batched per dispatch sub-window "
            "(1 = in-process, bit-identical to the unsharded runtime)"
        ),
    )
    pop_p.add_argument(
        "--sites",
        type=int,
        default=None,
        help="number of fair-share sites (default: scaled with --scale)",
    )
    pop_p.add_argument(
        "--cores", type=int, default=256, help="cores per site"
    )
    pop_p.add_argument(
        "--engine",
        choices=("auto", "soa", "legacy"),
        default=None,
        help=(
            "population engine for --shards 1 (default: auto picks the "
            "struct-of-arrays pool); sharded runs always use the pool"
        ),
    )
    pop_p.add_argument(
        "--seed", type=int, default=41, help="launch-schedule seed"
    )
    pop_p.add_argument(
        "--grid-seed", type=int, default=41, help="grid warm-up seed"
    )

    weather_p = sub.add_parser(
        "weather",
        help="run one strategy campaign under a grid-weather regime",
    )
    weather_p.add_argument(
        "--regime",
        choices=("calm", "storms", "black-hole"),
        default="black-hole",
        help="weather thrown at the grid",
    )
    weather_p.add_argument(
        "--strategy",
        choices=("single", "multiple", "delayed"),
        default="single",
        help="user-side submission strategy",
    )
    weather_p.add_argument(
        "--self-healing",
        action="store_true",
        help="enable the service-side resubmission agent",
    )
    weather_p.add_argument(
        "--tasks", type=int, default=400, help="tasks in the campaign"
    )
    weather_p.add_argument(
        "--interval", type=float, default=20.0, help="gap between launches (s)"
    )
    weather_p.add_argument(
        "--runtime", type=float, default=600.0, help="task payload runtime (s)"
    )
    weather_p.add_argument(
        "-b", type=int, default=3, help="burst width of the multiple strategy"
    )
    weather_p.add_argument(
        "--t-inf", type=float, default=4000.0, help="resubmission timeout (s)"
    )
    weather_p.add_argument("--seed", type=int, default=43)

    chaos_p = sub.add_parser(
        "chaos",
        help="seeded middleware-fault campaigns + task-conservation audit",
    )
    chaos_p.add_argument(
        "--matrix",
        action="store_true",
        help=(
            "sweep the standard schedules over all four site×WMS engine "
            "corners (the CI smoke job)"
        ),
    )
    chaos_p.add_argument(
        "--schedules",
        type=int,
        default=0,
        metavar="N",
        help=(
            "also audit N extra generator-drawn fault schedules "
            "(seeds seed+1..seed+N) on the current engine pair"
        ),
    )
    chaos_p.add_argument(
        "--tasks", type=int, default=30, help="tasks per campaign"
    )
    chaos_p.add_argument(
        "--horizon",
        type=float,
        default=8 * 3600.0,
        help="campaign horizon after warm-up (s)",
    )
    chaos_p.add_argument("--seed", type=int, default=11)
    chaos_p.add_argument(
        "--schedule",
        metavar="NAME",
        default=None,
        help=(
            "run only the named standard schedule (e.g. "
            "'storm-broker-site') instead of the full set"
        ),
    )
    chaos_p.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "record an end-to-end task trace of the campaign to this "
            "JSONL file (requires --schedule, incompatible with "
            "--matrix); read it back with 'repro report'"
        ),
    )

    report_p = sub.add_parser(
        "report",
        help="latency-decomposition report from a recorded task trace",
    )
    report_p.add_argument(
        "trace", type=Path, help="JSONL trace written by 'repro chaos --trace'"
    )
    report_p.add_argument(
        "--gwf",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "also export the completed tasks as a Grid Workloads Format "
            "trace (parseable by repro.traces.gwf)"
        ),
    )
    report_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the report to this file as well as stdout",
    )

    desc_p = sub.add_parser("describe", help="describe a paper trace set")
    desc_p.add_argument("week", help="trace-set name, e.g. 2006-IX")
    desc_p.add_argument("--seed", type=int, default=2009)

    bench_p = sub.add_parser(
        "bench",
        help="run the benchmark suite (wraps benchmarks/run_benchmarks.py)",
    )
    bench_p.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed baseline with this run",
    )
    bench_p.add_argument(
        "--suite",
        nargs="+",
        default=None,
        help="pytest target(s) to benchmark (default: the tracked core suites)",
    )
    bench_p.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="mean-time ratio above which a benchmark counts as regressed",
    )
    bench_p.add_argument(
        "--report",
        type=Path,
        default=None,
        help="write the comparison-vs-baseline table to this file",
    )
    bench_p.add_argument(
        "--large",
        action="store_true",
        help="also run the opt-in large-scale benches (REPRO_BENCH_LARGE=1)",
    )
    bench_p.add_argument(
        "--mem",
        action="store_true",
        help=(
            "also record each bench body's tracemalloc allocation peak "
            "(one extra untimed pass per bench)"
        ),
    )
    bench_p.add_argument(
        "--filter",
        metavar="EXPR",
        default=None,
        help=(
            "only run benchmarks matching this pytest -k expression, "
            "e.g. 'probe_day' (incompatible with --update)"
        ),
    )
    bench_p.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the selected benches under cProfile and print the top "
            "rows instead of comparing (incompatible with --update)"
        ),
    )
    bench_p.add_argument(
        "--profile-rows",
        type=int,
        default=None,
        metavar="N",
        help="rows to print per profile table",
    )
    bench_p.add_argument(
        "--profile-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the profile tables to this file (requires --profile)",
    )

    return parser


def _cmd_list(out) -> int:
    for exp_id in list_experiments():
        out.write(exp_id + "\n")
    return 0


def _cmd_run(args, out) -> int:
    targets = list_experiments() if args.experiment == "all" else [args.experiment]
    unknown = [t for t in targets if t not in list_experiments()]
    if unknown:
        out.write(
            f"error: unknown experiment(s): {', '.join(unknown)}\n"
            f"available: {', '.join(list_experiments())}\n"
        )
        return 2
    if args.jobs < 1:
        out.write(f"error: --jobs must be >= 1, got {args.jobs}\n")
        return 2
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    # consume lazily: each experiment is written/printed the moment it
    # finishes, so an interrupt or failure keeps the completed ones
    for exp_id, text in iter_many(
        targets, seed=args.seed, dt=args.dt, jobs=args.jobs
    ):
        if args.out is not None:
            (args.out / f"{exp_id}.txt").write_text(text + "\n", encoding="utf-8")
            out.write(f"wrote {args.out / (exp_id + '.txt')}\n")
        else:
            out.write(text + "\n\n")
    return 0


def _parse_vo_shares(raw: str) -> tuple[tuple[str, float], ...]:
    """Parse ``"biomed:0.5,atlas:0.3"`` into share pairs."""
    pairs = []
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, share = part.partition(":")
        if not name or not share:
            raise ValueError(f"malformed VO share {part!r}; expected name:share")
        pairs.append((name, float(share)))
    if not pairs:
        raise ValueError(f"no VO shares in {raw!r}")
    return tuple(pairs)


def _cmd_federation(args, out) -> int:
    """Build a federated multi-VO grid and run one adoption population."""
    from repro.core.strategies import MultipleSubmission, SingleResubmission
    from repro.gridsim import federated_grid_config, warmed_snapshot
    from repro.population import adoption_population, run_population
    from repro.traces.generator import DiurnalProfile
    from repro.util.tables import Table, format_float, format_percent, format_seconds

    try:
        vo_shares = _parse_vo_shares(args.vos)
        config = federated_grid_config(
            n_sites=args.sites,
            n_brokers=args.brokers,
            vo_shares=vo_shares,
            seed=args.seed,
            utilization=args.utilization,
            info_lag=args.info_lag,
        )
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2
    if args.tasks < len(vo_shares):
        out.write(f"error: --tasks must be >= {len(vo_shares)}\n")
        return 2
    if not 0.0 <= args.adoption <= 1.0:
        out.write(f"error: --adoption must be in [0, 1], got {args.adoption}\n")
        return 2
    total = sum(s for _, s in vo_shares)
    vo_tasks = {
        vo: max(1, int(round(args.tasks * s / total))) for vo, s in vo_shares
    }
    try:
        spec = adoption_population(
            vo_tasks=vo_tasks,
            strategies={vo: SingleResubmission(t_inf=4000.0) for vo in vo_tasks},
            adopter_vo=vo_shares[0][0],
            adopted=MultipleSubmission(b=args.b, t_inf=4000.0),
            adoption=args.adoption,
            window=args.window,
            runtime=args.runtime,
            diurnal=DiurnalProfile(amplitude=0.4),
        )
        # building the grid validates the remaining knobs (per-site
        # utilisation draws land above args.utilization, so e.g. 1.45
        # can still be rejected here)
        grid = warmed_snapshot(
            config, seed=args.seed, duration=6 * 3600.0
        ).restore()
        result = run_population(grid, spec, seed=args.seed)
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2

    table = Table(
        title=(
            f"population of {spec.total_tasks} tasks on {args.sites} sites / "
            f"{args.brokers} brokers ({format_percent(args.adoption, 0)} of "
            f"{vo_shares[0][0]} bursting b={args.b})"
        ),
        columns=["fleet", "tasks", "mean J", "median J", "jobs/task", "gave up"],
    )
    for f in result.fleets:
        table.add_row(
            f.spec.label,
            f.spec.n_tasks,
            format_seconds(f.mean_j),
            format_seconds(f.median_j),
            format_float(f.mean_jobs, 2),
            f.gave_up,
        )
    out.write(table.render() + "\n")
    out.write(
        f"\nbroker dispatches: "
        + ", ".join(
            f"{bc.name}: {d}"
            for bc, d in zip(config.brokers, result.broker_dispatches)
        )
        + f"\nmiddleware faults: {result.jobs_lost} lost, "
        f"{result.jobs_stuck} stuck\n"
    )
    if result.site_usage_shares:
        vo_names = [vo for vo, _ in vo_shares]
        usage = Table(
            title="end-state fair-share usage per site",
            columns=["site", *vo_names],
        )
        for site, shares in result.site_usage_shares.items():
            usage.add_row(
                site, *(format_percent(shares[vo], 1) for vo in vo_names)
            )
        out.write("\n" + usage.render() + "\n")
    return 0


def _cmd_population(args, out) -> int:
    """Run the preset population day, in one process or sharded."""
    import time

    from repro.gridsim import warmed_snapshot
    from repro.population import run_population, run_population_sharded
    from repro.population.presets import (
        fleet_grid_config,
        fleet_population_spec,
        fleet_sites_for,
    )
    from repro.util.tables import Table, format_float, format_seconds

    if args.scale < 0:
        out.write(f"error: --scale must be >= 0, got {args.scale}\n")
        return 2
    if args.engine is not None and args.shards != 1:
        out.write("error: --engine only applies to --shards 1 runs\n")
        return 2
    n_sites = args.sites if args.sites is not None else fleet_sites_for(args.scale)
    try:
        config = fleet_grid_config(n_sites, args.cores)
        spec = fleet_population_spec(args.scale)
        t0 = time.perf_counter()
        if args.shards == 1 and args.engine is not None:
            grid = warmed_snapshot(
                config, seed=args.grid_seed, duration=6 * 3600.0
            ).restore()
            result = run_population(grid, spec, seed=args.seed, engine=args.engine)
        else:
            result = run_population_sharded(
                config,
                spec,
                shards=args.shards,
                seed=args.seed,
                grid_seed=args.grid_seed,
            )
        wall = time.perf_counter() - t0
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2

    table = Table(
        title=(
            f"population day: {spec.total_tasks} tasks on {n_sites} "
            f"sites x {args.cores} cores, {args.shards} shard(s)"
        ),
        columns=["fleet", "tasks", "mean J", "median J", "jobs/task", "gave up"],
    )
    for f in result.fleets:
        table.add_row(
            f.spec.label,
            f.spec.n_tasks,
            format_seconds(f.mean_j),
            format_seconds(f.median_j),
            format_float(f.mean_jobs, 2),
            f.gave_up,
        )
    out.write(table.render() + "\n")
    rate = spec.total_tasks / wall if wall > 0 else 0.0
    out.write(
        f"\nfinished {result.total_finished}/{spec.total_tasks} tasks in "
        f"{wall:.1f}s wall ({rate:.0f} tasks/s), "
        f"virtual span {result.duration:.0f}s\n"
        f"broker dispatches: "
        + ", ".join(str(d) for d in result.broker_dispatches)
        + "\n"
    )
    return 0


def _cmd_weather(args, out) -> int:
    """Run one strategy campaign on a weathered grid and report telemetry."""
    from dataclasses import replace

    from repro.core.strategies import (
        DelayedResubmission,
        MultipleSubmission,
        SingleResubmission,
    )
    from repro.experiments.grid_weather import _regimes, weather_grid_config
    from repro.gridsim import ResubmitConfig, run_strategy_on_grid, warmed_snapshot
    from repro.util.tables import Table, format_float, format_seconds

    warm = 6 * 3600.0
    try:
        strategy = {
            "single": lambda: SingleResubmission(t_inf=args.t_inf),
            "multiple": lambda: MultipleSubmission(b=args.b, t_inf=args.t_inf),
            "delayed": lambda: DelayedResubmission(
                t0=args.t_inf / 2.0, t_inf=args.t_inf
            ),
        }[args.strategy]()
        weather = dict(
            (name.replace(" ", "-"), w) for name, w in _regimes(warm)
        )[args.regime]
        config = replace(
            weather_grid_config(),
            weather=weather,
            resubmit=ResubmitConfig() if args.self_healing else None,
        )
        grid = warmed_snapshot(config, seed=args.seed, duration=warm).restore()
        outcome = run_strategy_on_grid(
            grid,
            strategy,
            args.tasks,
            task_interval=args.interval,
            runtime=args.runtime,
        )
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2

    table = Table(
        title=(
            f"{args.tasks} {args.strategy} tasks under {args.regime} weather "
            f"(self-healing {'on' if args.self_healing else 'off'})"
        ),
        columns=["finished", "mean J", "median J", "jobs/task", "gave up"],
    )
    import numpy as np

    table.add_row(
        outcome.j.size,
        format_seconds(outcome.mean_j if outcome.j.size else float("nan")),
        format_seconds(
            float(np.median(outcome.j)) if outcome.j.size else float("nan")
        ),
        format_float(outcome.mean_jobs, 2),
        outcome.gave_up,
    )
    out.write(table.render() + "\n")
    report = grid.weather_report()
    out.write(
        f"\nweather: {report['outages_started']} outages, "
        f"{sum(report['jobs_killed'].values())} jobs killed, "
        f"{sum(report['black_hole_failures'].values())} black-hole failures\n"
    )
    health = report.get("health")
    if health is not None:
        states = ", ".join(
            f"{site}: {state}" for site, state in health["states"].items()
        )
        out.write(f"site health: {states}\n")
        if health["transitions"]:
            out.write(
                "transitions: "
                + ", ".join(
                    f"{k}: {n}" for k, n in sorted(health["transitions"].items())
                )
                + "\n"
            )
    resub = report.get("resubmit")
    if resub is not None:
        out.write(
            f"self-healing: {resub['detected']} failures detected, "
            f"{resub['resubmissions']} resubmissions\n"
        )
    return 0


def _cmd_chaos(args, out) -> int:
    """Audit task conservation under seeded middleware-fault schedules."""
    import dataclasses

    from repro.gridsim.chaos import (
        chaos_grid_config,
        chaos_matrix,
        fault_schedule,
        run_chaos,
        standard_schedules,
    )
    from repro.gridsim.tracing import write_trace
    from repro.util.tables import Table

    if args.trace is not None and args.schedule is None:
        out.write("error: --trace requires --schedule\n")
        return 2
    if args.trace is not None and args.matrix:
        out.write("error: --trace is incompatible with --matrix\n")
        return 2
    try:
        base = chaos_grid_config(seed=args.seed)
        schedules = standard_schedules(base)
        if args.schedule is not None:
            names = [name for name, _ in schedules]
            if args.schedule not in names:
                out.write(
                    f"error: unknown schedule {args.schedule!r}; "
                    f"available: {', '.join(names)}\n"
                )
                return 2
            schedules = [
                (name, cfg) for name, cfg in schedules if name == args.schedule
            ]
        else:
            schedules += [
                (f"generated#{k}", fault_schedule(base, args.seed + k))
                for k in range(1, args.schedules + 1)
            ]
        if args.trace is not None:
            schedules = [
                (name, dataclasses.replace(cfg, tracing=True))
                for name, cfg in schedules
            ]
        table = Table(
            title="chaos campaigns: task-conservation audit",
            columns=[
                "corner",
                "schedule",
                "finished",
                "gave up",
                "copies",
                "dups (reconciled)",
                "audit",
            ],
        )
        failures = 0
        if args.matrix:
            rows = chaos_matrix(
                base,
                schedules,
                seed=args.seed,
                n_tasks=args.tasks,
                horizon=args.horizon,
            )
            for r in rows:
                table.add_row(
                    r["corner"],
                    r["schedule"],
                    r["finished"],
                    r["gave_up"],
                    r["jobs"],
                    f"{r['duplicates']} ({r['reconciled']})",
                    "ok" if r["ok"] else "VIOLATED",
                )
                if not r["ok"]:
                    failures += 1
                    for v in r["violations"]:
                        out.write(f"violation [{r['corner']}/{r['schedule']}]: {v}\n")
        else:
            for name, cfg in schedules:
                res = run_chaos(
                    cfg,
                    seed=args.seed,
                    n_tasks=args.tasks,
                    horizon=args.horizon,
                )
                table.add_row(
                    f"{cfg.site_engine}×{cfg.wms_engine}",
                    name,
                    res.finished,
                    res.gave_up,
                    res.report.jobs,
                    f"{res.report.duplicates} ({res.report.duplicates_reconciled})",
                    "ok" if res.ok else "VIOLATED",
                )
                if not res.ok:
                    failures += 1
                    for v in res.report.violations:
                        out.write(f"violation [{name}]: {v}\n")
                if args.trace is not None:
                    write_trace(res.events, args.trace)
                    out.write(f"wrote {args.trace} ({len(res.events)} events)\n")
    except ValueError as exc:
        out.write(f"error: {exc}\n")
        return 2
    out.write(table.render() + "\n")
    if failures:
        out.write(f"\n{failures} campaign(s) violated task conservation\n")
        return 1
    out.write("\nevery task accounted for exactly once\n")
    return 0


def _cmd_report(args, out) -> int:
    """Render a latency-decomposition report from a recorded trace."""
    from repro.gridsim.tracing import (
        breakdown_tables,
        decompose,
        export_gwf,
        read_trace,
    )

    try:
        events = read_trace(args.trace)
    except (OSError, ValueError, KeyError) as exc:
        out.write(f"error: cannot read trace {args.trace}: {exc}\n")
        return 2
    records = decompose(events)
    by_strategy, by_vo = breakdown_tables(records)
    text = (
        f"trace: {args.trace} — {len(events)} events, "
        f"{len(records)} completed tasks\n\n"
        + by_strategy.render()
        + "\n\n"
        + by_vo.render()
        + "\n"
    )
    out.write(text)
    if args.out is not None:
        args.out.write_text(text, encoding="utf-8")
        out.write(f"wrote {args.out}\n")
    if args.gwf is not None:
        n = export_gwf(events, args.gwf)
        out.write(f"wrote {args.gwf} ({n} GWF rows)\n")
    return 0


def _cmd_describe(args, out) -> int:
    if args.week not in PAPER_TABLE1:
        out.write(
            f"error: unknown trace set {args.week!r}; available: "
            f"{', '.join(PAPER_TABLE1)}\n"
        )
        return 2
    stats = PAPER_TABLE1[args.week]
    out.write(
        f"{args.week}: paper statistics — mean<1e4 {stats.mean_less:.0f}s, "
        f"bounded mean {stats.mean_with:.0f}s, sigma_R {stats.sigma_r:.0f}s, "
        f"rho {stats.rho:.3f}\n"
    )
    if args.week != "2007/08":
        trace = synthesize_week(args.week, seed=args.seed)
        out.write(f"synthesized: {trace.describe()}\n")
    else:
        out.write("(the 2007/08 aggregate is the union of the weekly sets)\n")
    return 0


def _cmd_bench(args, out, runner=subprocess.call) -> int:
    """Invoke ``benchmarks/run_benchmarks.py`` from the repo checkout.

    The benchmark harness lives next to the sources rather than inside
    the package (it owns the committed baseline file), so this
    subcommand only works from a checkout — installed-only environments
    get a clear error instead of a stack trace.
    """
    script = Path(__file__).resolve().parents[2] / "benchmarks" / "run_benchmarks.py"
    if not script.exists():
        out.write(
            "error: benchmarks/run_benchmarks.py not found — 'repro bench' "
            "needs a repository checkout\n"
        )
        return 2
    cmd = [sys.executable, str(script)]
    if args.update:
        cmd.append("--update")
    if args.suite:
        cmd += ["--suite", *args.suite]
    if args.threshold is not None:
        cmd += ["--threshold", str(args.threshold)]
    if args.report is not None:
        cmd += ["--report", str(args.report)]
    if args.large:
        cmd.append("--large")
    if args.mem:
        cmd.append("--mem")
    if args.filter:
        cmd += ["--filter", args.filter]
    if args.profile:
        cmd.append("--profile")
    if args.profile_rows is not None:
        cmd += ["--profile-rows", str(args.profile_rows)]
    if args.profile_out is not None:
        cmd += ["--profile-out", str(args.profile_out)]
    return runner(cmd)


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list(out)
    if args.command == "run":
        return _cmd_run(args, out)
    if args.command == "federation":
        return _cmd_federation(args, out)
    if args.command == "population":
        return _cmd_population(args, out)
    if args.command == "weather":
        return _cmd_weather(args, out)
    if args.command == "chaos":
        return _cmd_chaos(args, out)
    if args.command == "report":
        return _cmd_report(args, out)
    if args.command == "describe":
        return _cmd_describe(args, out)
    if args.command == "bench":
        return _cmd_bench(args, out)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
