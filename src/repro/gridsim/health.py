"""Site health state machine: EWMA outcome tracking, bans, probe re-admission.

Production grid operations teams do what no per-job fault model captures:
they watch per-site failure rates, *ban* sites that misbehave, and
re-admit them only after probe jobs succeed ("Mining the Workload of
Real Grid Computing Systems" documents exactly this operator loop).
:class:`HealthService` reproduces that loop inside the simulator:

* every site carries an operational state
  ``ok → degraded → banned → probing → ok``;
* the state is driven by an exponentially weighted moving average of
  *observed* job outcomes — successes reported by the grid's start
  notifications, failures reported by strategy timeouts
  (:meth:`~repro.gridsim.grid.GridSimulator.report_failed`) and by the
  site's black-hole intercept (``on_fail``);
* a ban publishes an infinite match-making penalty
  (``site.health_penalty``), which health-aware brokers fold into their
  ranking **at snapshot-refresh time** — so ban propagation inherits the
  information system's staleness, and a federated broker keeps feeding a
  banned remote site for up to ``info_refresh + info_lag`` (a real
  production failure mode this module makes measurable);
* after ``ban_cooldown`` the service submits ``n_probes`` short probe
  jobs straight to the site's CE (operator tooling bypasses the WMS); the
  first probe that *starts* re-admits the site, probes that all fail or
  hang until ``probe_timeout`` send it back to banned for another
  cooldown.  A black-hole site fails its probes instantly and therefore
  stays contained for as long as the hole lasts.

The service is deliberately deterministic (no RNG): given the same
observation stream it makes the same transitions on every engine, which
is what the law-equivalence suite pins.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from repro.gridsim.jobs import Job, JobState
from repro.util.validation import (
    check_in_range,
    check_int_at_least,
    check_positive,
    check_probability,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gridsim.events import Simulator

__all__ = ["HealthState", "HealthConfig", "SiteHealth", "HealthService"]


class HealthState(enum.Enum):
    """Operational state of a site in the operator's eyes."""

    #: healthy — no match-making penalty
    OK = "ok"
    #: elevated failure rate — penalised in match-making, still fed
    DEGRADED = "degraded"
    #: masked out of match-making, waiting out the ban cooldown
    BANNED = "banned"
    #: probe jobs submitted; first probe start re-admits the site
    PROBING = "probing"


@dataclass(frozen=True)
class HealthConfig:
    """Thresholds and timers of the health state machine.

    The EWMA tracks the failure *rate* in [0, 1]: each observation is 1
    (failure) or 0 (success) and ``ewma += alpha * (x - ewma)``.  The
    thresholds must satisfy ``recover <= degrade <= ban`` — the machine
    degrades at ``degrade_threshold``, bans at ``ban_threshold`` and
    recovers (degraded → ok) below ``recover_threshold``, the hysteresis
    gap preventing flapping.
    """

    #: EWMA weight of the newest observation, in (0, 1]
    alpha: float = 0.2
    #: failure rate at which an ok site becomes degraded
    degrade_threshold: float = 0.5
    #: failure rate at which a site is banned outright
    ban_threshold: float = 0.8
    #: failure rate below which a degraded site recovers
    recover_threshold: float = 0.3
    #: observations required before any transition fires (EWMA warm-up)
    min_observations: int = 5
    #: seconds a ban lasts before probe jobs test the site
    ban_cooldown: float = 3600.0
    #: runtime of each probe job (s)
    probe_runtime: float = 30.0
    #: seconds after which unstarted probes are written off
    probe_timeout: float = 1800.0
    #: probe jobs submitted per re-admission attempt
    n_probes: int = 3
    #: match-making penalty of a degraded site (>= 1; banned is inf)
    degraded_penalty: float = 4.0

    def __post_init__(self) -> None:
        check_in_range("alpha", self.alpha, 0.0, 1.0, inclusive=(False, True))
        check_probability("degrade_threshold", self.degrade_threshold)
        check_probability("ban_threshold", self.ban_threshold)
        check_probability("recover_threshold", self.recover_threshold)
        if not (
            self.recover_threshold
            <= self.degrade_threshold
            <= self.ban_threshold
        ):
            raise ValueError(
                "health thresholds must satisfy recover <= degrade <= ban, "
                f"got recover={self.recover_threshold!r}, "
                f"degrade={self.degrade_threshold!r}, "
                f"ban={self.ban_threshold!r}"
            )
        check_int_at_least("min_observations", self.min_observations, 1)
        check_positive("ban_cooldown", self.ban_cooldown)
        check_positive("probe_runtime", self.probe_runtime)
        check_positive("probe_timeout", self.probe_timeout)
        check_int_at_least("n_probes", self.n_probes, 1)
        if not self.degraded_penalty >= 1.0:
            raise ValueError(
                f"degraded_penalty must be >= 1, got {self.degraded_penalty!r}"
            )


@dataclass
class SiteHealth:
    """Mutable per-site health record."""

    site: object
    state: HealthState = HealthState.OK
    #: EWMA of the failure indicator (1 = failure, 0 = success)
    ewma: float = 0.0
    #: observations folded into the EWMA since the last reset
    n_obs: int = 0
    #: probes of the current probing round (empty outside PROBING)
    probes: list = field(default_factory=list)


class HealthService:
    """Operator loop: observe outcomes, ban sick sites, probe, re-admit.

    Wired by :class:`~repro.gridsim.grid.GridSimulator` when a
    :class:`HealthConfig` is configured; unconfigured grids never
    construct one, so the degenerate path stays byte-identical.
    """

    def __init__(self, sites: list, sim: "Simulator", config: HealthConfig) -> None:
        self.sim = sim
        self.config = config
        self._records = {s.name: SiteHealth(s) for s in sites}
        #: cumulative transition counts keyed ``"old->new"``
        self.transitions: dict[str, int] = {}
        #: probe jobs submitted across all probing rounds
        self.probes_sent = 0

    # -- observation channels ----------------------------------------------

    def observe_success(self, site_name: str) -> None:
        """A client job started at the site (the WMS saw it succeed)."""
        sh = self._records.get(site_name)
        if sh is not None:
            self._observe(sh, 0.0)

    def observe_failure(self, site_name: str) -> None:
        """A client job failed or timed out while queued at the site."""
        sh = self._records.get(site_name)
        if sh is not None:
            self._observe(sh, 1.0)

    def _observe(self, sh: SiteHealth, x: float) -> None:
        sh.n_obs += 1
        sh.ewma += self.config.alpha * (x - sh.ewma)
        if sh.state in (HealthState.BANNED, HealthState.PROBING):
            return  # re-admission is the probe loop's job, not the EWMA's
        if sh.n_obs < self.config.min_observations:
            return
        if sh.ewma >= self.config.ban_threshold:
            self._transition(sh, HealthState.BANNED)
        elif sh.state is HealthState.OK:
            if sh.ewma >= self.config.degrade_threshold:
                self._transition(sh, HealthState.DEGRADED)
        elif sh.state is HealthState.DEGRADED:
            if sh.ewma < self.config.recover_threshold:
                self._transition(sh, HealthState.OK)

    # -- the state machine ---------------------------------------------------

    def _transition(self, sh: SiteHealth, new: HealthState) -> None:
        key = f"{sh.state.value}->{new.value}"
        self.transitions[key] = self.transitions.get(key, 0) + 1
        sh.state = new
        if new is HealthState.BANNED:
            sh.site.health_penalty = math.inf
            self.sim.schedule(
                self.config.ban_cooldown, partial(self._begin_probing, sh)
            )
        elif new is HealthState.DEGRADED:
            sh.site.health_penalty = self.config.degraded_penalty
        elif new is HealthState.OK:
            sh.site.health_penalty = 1.0
            # fresh start: past sins are forgiven once probes vouch for
            # the site (and on degraded → ok recovery, which has already
            # decayed below recover_threshold anyway)
            sh.ewma = 0.0
            sh.n_obs = 0

    def _begin_probing(self, sh: SiteHealth) -> None:
        if sh.state is not HealthState.BANNED:  # pragma: no cover - safety
            return
        self._transition(sh, HealthState.PROBING)  # penalty stays inf
        sh.site.health_penalty = math.inf
        now = self.sim._now
        probes = []
        for _ in range(self.config.n_probes):
            job = Job(runtime=self.config.probe_runtime, tag="health-probe")
            job.submit_time = now
            job.on_start = partial(self._probe_started, sh)
            probes.append(job)
        sh.probes = probes
        self.probes_sent += len(probes)
        # operator tooling submits straight to the CE, bypassing the WMS
        sh.site.enqueue_many(probes)
        self.sim.schedule(
            self.config.probe_timeout, partial(self._probe_verdict, sh, probes)
        )

    def _probe_started(self, sh: SiteHealth, job: Job) -> None:
        # reaching a worker node is the re-admission criterion (the
        # paper's probes measure exactly this); a black-hole site fails
        # its probes before they start and never gets here
        if sh.state is HealthState.PROBING:
            sh.probes = []
            self._transition(sh, HealthState.OK)

    def _probe_verdict(self, sh: SiteHealth, probes: list) -> None:
        leftovers = [j for j in probes if j.state is JobState.QUEUED]
        if leftovers:
            sh.site.cancel_many(leftovers)
        if sh.state is HealthState.PROBING and sh.probes is probes:
            # no probe started inside the window: another ban cycle
            sh.probes = []
            self._transition(sh, HealthState.BANNED)

    # -- telemetry -----------------------------------------------------------

    def state_of(self, site_name: str) -> HealthState:
        """Current operational state of a site."""
        return self._records[site_name].state

    def report(self) -> dict:
        """Snapshot of states and cumulative transition counters."""
        return {
            "states": {
                n: sh.state.value for n, sh in self._records.items()
            },
            "transitions": dict(self.transitions),
            "probes_sent": self.probes_sent,
        }
