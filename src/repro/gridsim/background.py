"""Background production workload keeping sites realistically loaded.

Probe latency on EGEE is dominated by queueing behind the production
workload of thousands of users (§3.1).  Each site gets an independent
Poisson job stream with log-normal runtimes, with optional diurnal rate
modulation (by thinning), tuned so that the site hovers near a target
utilisation — the regime where waiting times are heavy-tailed.
"""

from __future__ import annotations

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job
from repro.gridsim.site import ComputingElement
from repro.traces.generator import DiurnalProfile
from repro.util.validation import check_in_range, check_positive

__all__ = ["BackgroundLoad"]


class BackgroundLoad:
    """Poisson production-job stream feeding one computing element."""

    def __init__(
        self,
        site: ComputingElement,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        utilization: float = 0.9,
        runtime_median: float = 3600.0,
        runtime_sigma: float = 0.8,
        diurnal: DiurnalProfile | None = None,
    ) -> None:
        check_in_range("utilization", utilization, 0.0, 1.5, inclusive=(False, True))
        check_positive("runtime_median", runtime_median)
        check_positive("runtime_sigma", runtime_sigma)
        self.site = site
        self.sim = sim
        self.rng = rng
        self.utilization = utilization
        self.runtime_median = runtime_median
        self.runtime_sigma = runtime_sigma
        self.diurnal = diurnal
        self.jobs_generated = 0
        # mean of lognormal = median * exp(sigma^2/2)
        mean_runtime = runtime_median * float(np.exp(runtime_sigma**2 / 2.0))
        #: base arrival rate achieving the target utilisation (jobs/s)
        self.rate = utilization * site.n_cores / mean_runtime
        #: peak rate used for Poisson thinning under diurnal modulation
        self._peak_rate = self.rate * (
            1.0 + (diurnal.amplitude if diurnal is not None else 0.0)
        )

    def start(self) -> None:
        """Begin generating arrivals (call once)."""
        self._schedule_next()

    def _schedule_next(self) -> None:
        gap = float(self.rng.exponential(1.0 / self._peak_rate))
        self.sim.schedule(gap, self._arrival)

    def _arrival(self) -> None:
        # thinning: accept with probability rate(t)/peak_rate
        accept = True
        if self.diurnal is not None:
            rate_now = self.rate * float(self.diurnal.factor(self.sim.now))
            accept = self.rng.random() < rate_now / self._peak_rate
        if accept:
            runtime = float(
                self.rng.lognormal(np.log(self.runtime_median), self.runtime_sigma)
            )
            job = Job(runtime=runtime, tag="background")
            job.submit_time = self.sim.now
            self.site.enqueue(job)
            self.jobs_generated += 1
        self._schedule_next()
