"""Background production workload keeping sites realistically loaded.

Probe latency on EGEE is dominated by queueing behind the production
workload of thousands of users (§3.1).  Each site gets an independent
Poisson job stream with log-normal runtimes, with optional diurnal rate
modulation (by thinning), tuned so that the site hovers near a target
utilisation — the regime where waiting times are heavy-tailed.

The stream is generated in *chunks*: instead of three scalar RNG calls
and one ``schedule`` per arrival, each refill block-draws ``chunk_size``
exponential gaps, the thinning uniforms and the log-normal runtimes with
numpy, bulk-schedules the accepted arrivals via
:meth:`~repro.gridsim.events.Simulator.schedule_many`, and leaves a
single refill event at the last drawn arrival time.  The process law is
unchanged — gaps stay i.i.d. exponential at the peak rate, thinning
still compares a uniform against ``rate(t)/peak`` at the arrival time,
runtimes stay log-normal — but the per-arrival Python cost collapses to
one heap pop plus one enqueue.  Fixed-seed draw *sequences* differ from
the historical per-arrival loop; ``tests/test_background_equivalence.py``
keeps that loop as the law oracle.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job
from repro.gridsim.site import ComputingElement
from repro.traces.generator import DiurnalProfile
from repro.util.validation import check_in_range, check_positive

__all__ = ["BackgroundLoad", "DEFAULT_CHUNK"]

#: arrivals pre-drawn per refill; large enough to amortise the numpy
#: calls, small enough that a warmed grid's pending stream stays cheap
#: to snapshot/clone
DEFAULT_CHUNK = 256


class BackgroundLoad:
    """Poisson production-job stream feeding one computing element."""

    def __init__(
        self,
        site: ComputingElement,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        utilization: float = 0.9,
        runtime_median: float = 3600.0,
        runtime_sigma: float = 0.8,
        diurnal: DiurnalProfile | None = None,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        check_in_range("utilization", utilization, 0.0, 1.5, inclusive=(False, True))
        check_positive("runtime_median", runtime_median)
        check_positive("runtime_sigma", runtime_sigma)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.site = site
        self.sim = sim
        self.rng = rng
        self.utilization = utilization
        self.runtime_median = runtime_median
        self.runtime_sigma = runtime_sigma
        self.diurnal = diurnal
        self.chunk_size = int(chunk_size)
        self.jobs_generated = 0
        self._log_median = float(np.log(runtime_median))
        #: runtimes of accepted arrivals already scheduled, consumed FIFO
        #: by :meth:`_deliver` (arrival events fire in schedule order)
        self._runtimes: deque[float] = deque()
        # mean of lognormal = median * exp(sigma^2/2)
        mean_runtime = runtime_median * float(np.exp(runtime_sigma**2 / 2.0))
        #: base arrival rate achieving the target utilisation (jobs/s)
        self.rate = utilization * site.n_cores / mean_runtime
        #: peak rate used for Poisson thinning under diurnal modulation
        self._peak_rate = self.rate * (
            1.0 + (diurnal.amplitude if diurnal is not None else 0.0)
        )

    def start(self) -> None:
        """Begin generating arrivals (call once)."""
        self._refill()

    def _refill(self) -> None:
        """Draw and schedule the next chunk of arrivals in one block."""
        rng = self.rng
        n = self.chunk_size
        gaps = rng.exponential(1.0 / self._peak_rate, size=n)
        times = self.sim.now + np.cumsum(gaps)
        if self.diurnal is not None:
            # thinning: accept with probability rate(t)/peak_rate
            uniforms = rng.random(n)
            accept = uniforms * self._peak_rate < self.rate * self.diurnal.factor(
                times
            )
            accepted = times[accept]
        else:
            accepted = times
        runtimes = rng.lognormal(
            self._log_median, self.runtime_sigma, size=accepted.size
        )
        self._runtimes.extend(runtimes.tolist())
        # one shared bound-method callback for the whole chunk: arrival
        # events fire in time order (FIFO among ties), matching the
        # _runtimes queue; the refill rides at the last *drawn* time so
        # the next chunk continues the gap sequence seamlessly
        self.sim.schedule_many(accepted.tolist(), repeat(self._deliver))
        self.sim.schedule_at(float(times[-1]), self._refill)

    def _deliver(self) -> None:
        job = Job(runtime=self._runtimes.popleft(), tag="background")
        job.submit_time = self.sim._now
        self.site.enqueue(job)
        self.jobs_generated += 1
