"""Background production workload keeping sites realistically loaded.

Probe latency on EGEE is dominated by queueing behind the production
workload of thousands of users (§3.1).  Each site gets an independent
Poisson job stream with log-normal runtimes, with optional diurnal rate
modulation (by thinning), tuned so that the site hovers near a target
utilisation — the regime where waiting times are heavy-tailed.

The stream is generated in *chunks*: each refill block-draws
``chunk_size`` exponential gaps, the thinning uniforms and the
log-normal runtimes with numpy, and leaves a single refill event at the
last drawn arrival time.  What happens to the accepted arrivals depends
on the site engine:

* a :class:`~repro.gridsim.site.VectorComputingElement` takes the whole
  chunk as arrays (:meth:`feed_background`) — **zero events, zero**
  :class:`~repro.gridsim.jobs.Job` **objects per background job**; the
  site's Lindley lane resolves start/completion times lazily;
* the event-driven oracle keeps the PR 2 path: one shared-callback
  arrival event per accepted job via
  :meth:`~repro.gridsim.events.Simulator.schedule_many`, runtimes riding
  a FIFO deque.

The process law is identical either way — gaps stay i.i.d. exponential
at the peak rate, thinning still compares a uniform against
``rate(t)/peak`` at the arrival time, runtimes stay log-normal, and the
RNG consumption order is byte-for-byte the same, so the two engines see
*identical* (arrival, runtime) sequences for a given seed.  On
multi-VO sites a ``vo_mix`` adds one block of label uniforms per chunk
*after* the runtimes (inverse-CDF against the traffic mix), so
single-VO streams consume the RNG exactly as before and the two engines
also agree on every VO label.
``tests/test_background_equivalence.py`` keeps the historical
per-arrival loop as the law oracle; ``tests/test_site_engine_equivalence.py``
pins the two engines against each other.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job
from repro.traces.generator import DiurnalProfile
from repro.util.validation import check_in_range, check_positive

__all__ = ["BackgroundLoad", "DEFAULT_CHUNK"]

#: arrivals pre-drawn per refill; large enough to amortise the numpy
#: calls, small enough that a warmed grid's pending stream stays cheap
#: to snapshot/clone
DEFAULT_CHUNK = 256


class BackgroundLoad:
    """Poisson production-job stream feeding one computing element."""

    def __init__(
        self,
        site,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        utilization: float = 0.9,
        runtime_median: float = 3600.0,
        runtime_sigma: float = 0.8,
        diurnal: DiurnalProfile | None = None,
        chunk_size: int = DEFAULT_CHUNK,
        vo_mix: tuple[tuple[str, float], ...] | None = None,
    ) -> None:
        check_in_range("utilization", utilization, 0.0, 1.5, inclusive=(False, True))
        check_positive("runtime_median", runtime_median)
        check_positive("runtime_sigma", runtime_sigma)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.site = site
        self.sim = sim
        self.rng = rng
        self.utilization = utilization
        self.runtime_median = runtime_median
        self.runtime_sigma = runtime_sigma
        self.diurnal = diurnal
        self.chunk_size = int(chunk_size)
        #: whether the site takes chunks as arrays (the vectorised lane)
        self._bulk = hasattr(site, "feed_background")
        self._generated = 0
        self._log_median = float(np.log(runtime_median))
        #: runtimes of accepted arrivals already scheduled, consumed FIFO
        #: by :meth:`_deliver` (arrival events fire in schedule order;
        #: unused on the vectorised lane)
        self._runtimes: deque[float] = deque()
        #: multi-VO production mix: labels are block-drawn per chunk
        #: (one uniform per accepted arrival, inverse-CDF against the
        #: cumulative mix) *after* the runtimes, so single-VO streams
        #: consume the RNG byte-for-byte as before
        if vo_mix is not None and len(vo_mix) >= 1:
            weights = np.asarray([w for _, w in vo_mix], dtype=np.float64)
            if (weights <= 0.0).any():
                raise ValueError("vo_mix weights must be > 0")
            self._vo_names = tuple(n for n, _ in vo_mix)
            # a single-entry mix is a constant label: no uniforms drawn,
            # so such streams consume the RNG exactly like unlabelled ones
            self._vo_cum = (
                np.cumsum(weights / weights.sum()) if len(vo_mix) >= 2 else None
            )
            # translate mix order into the site's VO index space (bulk
            # lane); fair-share sites expose the mapping, others take 0
            index_of = getattr(
                getattr(site, "fairshare", None), "index_of", lambda _n: 0
            )
            self._vo_site_idx = np.asarray(
                [index_of(n) for n in self._vo_names], dtype=np.intp
            )
        else:
            self._vo_names = None
            self._vo_cum = None
            self._vo_site_idx = None
        #: VO labels matching :attr:`_runtimes` on the event lane
        self._vo_labels: deque[int] = deque()
        # mean of lognormal = median * exp(sigma^2/2)
        mean_runtime = runtime_median * float(np.exp(runtime_sigma**2 / 2.0))
        #: base arrival rate achieving the target utilisation (jobs/s)
        self.rate = utilization * site.n_cores / mean_runtime
        #: peak rate used for Poisson thinning under diurnal modulation
        self._peak_rate = self.rate * (
            1.0 + (diurnal.amplitude if diurnal is not None else 0.0)
        )

    @property
    def jobs_generated(self) -> int:
        """Arrivals delivered to the site so far (lazy on the vector lane)."""
        if self._bulk:
            return self.site.background_delivered()
        return self._generated

    def start(self) -> None:
        """Begin generating arrivals (call once)."""
        self._refill()

    def _refill(self) -> None:
        """Draw and schedule the next chunk of arrivals in one block."""
        rng = self.rng
        n = self.chunk_size
        gaps = rng.exponential(1.0 / self._peak_rate, size=n)
        times = self.sim.now + np.cumsum(gaps)
        if self.diurnal is not None:
            # thinning: accept with probability rate(t)/peak_rate
            uniforms = rng.random(n)
            accept = uniforms * self._peak_rate < self.rate * self.diurnal.factor(
                times
            )
            accepted = times[accept]
        else:
            accepted = times
        runtimes = rng.lognormal(
            self._log_median, self.runtime_sigma, size=accepted.size
        )
        if self._vo_cum is not None:
            labels = np.searchsorted(
                self._vo_cum, rng.random(accepted.size), side="right"
            )
            # guard against a uniform landing exactly on the last edge
            np.minimum(labels, len(self._vo_names) - 1, out=labels)
        elif self._vo_names is not None:
            # single-VO mix: constant label, no draws
            labels = np.zeros(accepted.size, dtype=np.intp)
        else:
            labels = None
        if self._bulk:
            # the vector lane takes the whole chunk as arrays: no events,
            # no Job objects — the site commits starts lazily
            if labels is None:
                self.site.feed_background(accepted.tolist(), runtimes.tolist())
            else:
                self.site.feed_background(
                    accepted.tolist(),
                    runtimes.tolist(),
                    self._vo_site_idx[labels].tolist(),
                )
        else:
            self._runtimes.extend(runtimes.tolist())
            if labels is not None:
                self._vo_labels.extend(labels.tolist())
            # one shared bound-method callback for the whole chunk: arrival
            # events fire in time order (FIFO among ties), matching the
            # _runtimes queue
            self.sim.schedule_many(accepted.tolist(), repeat(self._deliver))
        # the refill rides at the last *drawn* time so the next chunk
        # continues the gap sequence seamlessly
        self.sim.schedule_at(float(times[-1]), self._refill)

    def _deliver(self) -> None:
        job = Job(runtime=self._runtimes.popleft(), tag="background")
        if self._vo_labels:
            job.vo = self._vo_names[self._vo_labels.popleft()]
        job.submit_time = self.sim._now
        self.site.enqueue(job)
        self._generated += 1
