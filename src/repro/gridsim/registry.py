"""A lightweight metrics registry every grid subsystem publishes into.

Before this module each layer kept its own telemetry: the middleware
domain a list of per-broker stat dicts, the weather report hand-summed
outage counters, :class:`~repro.gridsim.metrics.GridMonitor` re-derived
both.  The registry replaces those parallel books with one namespace of
named instruments:

``Counter``
    a monotonically increasing integer updated in place on hot paths
    (``inc`` is one attribute add — no dict lookup, no allocation; the
    publishing subsystem holds the counter object directly).
``Histogram``
    fixed-bucket distribution (``observe`` is a linear scan over a
    handful of edges — no per-event allocation).
gauges
    lazy reads registered as ``(obj, attribute)`` pairs or zero-arg
    bound methods, evaluated only when sampled.  Never lambdas:
    :class:`~repro.gridsim.grid.GridSnapshot` pickles the whole grid,
    and a registry full of closures would break the warm-cache fork
    path.

The registry itself stays out of the simulation laws — reading it never
schedules events or consumes randomness — so a traced or monitored run
is byte-identical to a bare one.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


class Counter:
    """A named monotonic counter; subsystems hold it and ``inc`` in place."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Histogram:
    """Fixed-bucket histogram: ``len(edges) + 1`` counts plus running sums.

    ``counts[i]`` holds observations ``<= edges[i]`` (first matching
    edge); the trailing bucket is the overflow.  Edges are fixed at
    construction so observing allocates nothing.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram edges must be strictly increasing")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, x: float) -> None:
        counts = self.counts
        i = 0
        for edge in self.edges:
            if x <= edge:
                break
            i += 1
        counts[i] += 1
        self.total += 1
        self.sum += x

    def observe_many(self, xs: Sequence[float]) -> None:
        for x in xs:
            self.observe(x)

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self.total}, mean={self.mean:.1f})"


class MetricsRegistry:
    """Named counters, histograms and gauges for one grid instance.

    ``counter``/``histogram`` are get-or-create so independent
    subsystems can share an instrument by name; ``register_gauge``
    records a lazy read (``(obj, attr)`` or a zero-arg bound method —
    both picklable, unlike a lambda).  ``value`` reads any instrument;
    ``snapshot`` materialises the whole namespace as plain data.
    """

    __slots__ = ("_counters", "_histograms", "_gauges")

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}
        self._gauges: dict[str, tuple] = {}

    # -- registration -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        return h

    def register_gauge(
        self, name: str, source: object, attr: str | None = None
    ) -> None:
        """Register a lazy read: ``getattr(source, attr)`` or ``source()``.

        With ``attr`` the gauge reads an attribute; without, ``source``
        must be a zero-arg callable (use bound methods, not lambdas —
        the grid, registry included, must stay picklable).
        """
        if attr is None and not callable(source):
            raise TypeError(f"gauge {name!r}: source must be callable or (obj, attr)")
        self._gauges[name] = (source, attr)

    # -- reads --------------------------------------------------------------

    def value(self, name: str):
        c = self._counters.get(name)
        if c is not None:
            return c.value
        g = self._gauges.get(name)
        if g is not None:
            source, attr = g
            return getattr(source, attr) if attr is not None else source()
        h = self._histograms.get(name)
        if h is not None:
            return h.as_dict()
        raise KeyError(f"no metric named {name!r}")

    def names(self) -> list[str]:
        return sorted([*self._counters, *self._gauges, *self._histograms])

    def snapshot(self) -> dict:
        """Every instrument's current value as plain data."""
        out: dict = {name: c.value for name, c in self._counters.items()}
        for name, (source, attr) in self._gauges.items():
            out[name] = getattr(source, attr) if attr is not None else source()
        for name, h in self._histograms.items():
            out[name] = h.as_dict()
        return dict(sorted(out.items()))

    def __contains__(self, name: str) -> bool:
        return (
            name in self._counters
            or name in self._gauges
            or name in self._histograms
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )
