"""End-to-end task tracing: lifecycle spans, decomposition, exporters.

The paper's whole subject is where grid latency comes from — queueing,
middleware overhead, faults — but scalar end-states cannot answer
"which layer ate this task's 2000 s".  This module records a typed
event per lifecycle transition of every *client* task (background load
and untracked jobs are filtered at the door) and turns the stream into
latency decompositions and exportable traces.

Events are plain tuples ``(kind, t, task_id, job_id, aux)`` with
virtual timestamps:

========== =============================================================
kind        meaning (``aux``)
========== =============================================================
task        task launched (``(label, vo, runtime)``)
submit      a job copy handed to the grid (client attempt)
hop         job routed through a broker (``(broker, staleness)`` — the
            age in seconds of the load view the broker would rank on)
enqueue     job accepted into a site queue (``site``)
start       job began executing (``site``)
complete    task settled: its winning job started (``job_id`` = winner)
cancel      job cancelled (sibling reconciliation or task settle)
fail        job died (``reason``: ``lost`` / ``stuck`` / ``failed``)
retry       client retry armed (``(attempt, delay)``)
rescue      service-side resubmission agent re-submitted the task
dup         lost-ack ghost: the landed copy now runs as a duplicate
expire      task gave up without any job starting
========== =============================================================

Recording is opt-in (``GridConfig.tracing``) and zero-cost when off:
every hook sits behind a ``_tr is None`` fast path mirroring the
``_mw is None`` middleware idiom, and the recorder itself consumes no
randomness — a traced run replays the untraced one byte-for-byte.

On top of the stream, :func:`decompose` splits each completed task's
makespan into retry-loss / middleware / queue-wait components (they
telescope: the three sum to the start latency J), ``breakdown_tables``
renders per-strategy and per-VO summaries, and :func:`export_gwf`
writes completed tasks in the Grid Workloads Format that
``repro.traces.gwf`` parses — the substrate for trace-driven
calibration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterable, Sequence

from repro.util.tables import Table, format_seconds

__all__ = [
    "TaskBreakdown",
    "TraceRecorder",
    "breakdown_tables",
    "decompose",
    "export_gwf",
    "read_trace",
    "write_trace",
]

#: fixed bucket edges (seconds) for the registry's task-latency histogram
LATENCY_EDGES = (
    60.0,
    120.0,
    300.0,
    600.0,
    1200.0,
    3000.0,
    6000.0,
    12000.0,
    30000.0,
    86400.0,
)


class TraceRecorder:
    """Append-only event log for client-task lifecycles.

    Jobs are mapped to tasks at submission (``submit`` / ``adopt``);
    every other hook drops jobs it has never seen, which is how
    background load and raw test submissions stay out of the trace
    without the hot paths asking "is this a client job?".
    """

    __slots__ = ("sim", "events", "_task_of", "_next_task", "_latency_hist")

    def __init__(self, sim, metrics=None) -> None:
        self.sim = sim
        self.events: list[tuple] = []
        self._task_of: dict[int, int] = {}
        self._next_task = 0
        self._latency_hist = (
            metrics.histogram("trace.task_latency", LATENCY_EDGES)
            if metrics is not None
            else None
        )

    # -- task-level hooks ---------------------------------------------------

    def task_created(self, task) -> int:
        """Assign the next task id and record the launch event."""
        tid = self._next_task
        self._next_task = tid + 1
        self.events.append(
            ("task", self.sim.now, tid, -1, (task.trace_label, task.vo, task.runtime))
        )
        return tid

    def complete(self, task, winner) -> None:
        now = self.sim.now
        jid = winner.job_id if winner is not None else -1
        self.events.append(("complete", now, task.task_id, jid, None))
        h = self._latency_hist
        if h is not None:
            h.observe(now - task.t_start)

    def expire(self, task) -> None:
        self.events.append(("expire", self.sim.now, task.task_id, -1, None))

    def rescue(self, task) -> None:
        self.events.append(("rescue", self.sim.now, task.task_id, -1, None))

    # -- job-level hooks ----------------------------------------------------

    def adopt(self, task, job) -> None:
        """Map a job minted outside ``submit`` (lost-ack ghost sibling)."""
        self._task_of[job.job_id] = task.task_id

    def submit(self, task, job) -> None:
        tid = task.task_id
        self._task_of[job.job_id] = tid
        self.events.append(("submit", self.sim.now, tid, job.job_id, None))

    def hop(self, job, broker) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(
            (
                "hop",
                self.sim.now,
                tid,
                job.job_id,
                (getattr(broker, "name", "wms"), broker.snapshot_staleness()),
            )
        )

    def enqueue(self, job) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("enqueue", self.sim.now, tid, job.job_id, job.site))

    def start(self, job) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("start", self.sim.now, tid, job.job_id, job.site))

    def cancel(self, job) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("cancel", self.sim.now, tid, job.job_id, None))

    def fail(self, job, reason: str) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("fail", self.sim.now, tid, job.job_id, reason))

    def retry(self, job, attempt: int, delay: float) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(
            ("retry", self.sim.now, tid, job.job_id, (attempt, delay))
        )

    def dup(self, job) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("dup", self.sim.now, tid, job.job_id, None))

    def dup_reconciled(self, job) -> None:
        tid = self._task_of.get(job.job_id)
        if tid is None:
            return
        self.events.append(("dup-reconciled", self.sim.now, tid, job.job_id, None))

    def __len__(self) -> int:
        return len(self.events)


# -- JSONL serialisation ----------------------------------------------------

#: per-kind names of the fields packed into the event's ``aux`` slot
_AUX_FIELDS = {
    "task": ("label", "vo", "runtime"),
    "hop": ("broker", "staleness"),
    "enqueue": ("site",),
    "start": ("site",),
    "fail": ("reason",),
    "retry": ("attempt", "delay"),
}


def write_trace(events: Iterable[tuple], target: str | Path | IO[str]) -> None:
    """Write events as JSON Lines (one ``{"kind", "t", "task", "job", ...}``
    object per line; ``aux`` fields unpacked under their per-kind names)."""

    def _write(fh: IO[str]) -> None:
        for kind, t, tid, jid, aux in events:
            rec = {"kind": kind, "t": t, "task": tid, "job": jid}
            fields = _AUX_FIELDS.get(kind)
            if fields is not None:
                vals = aux if isinstance(aux, tuple) else (aux,)
                rec.update(zip(fields, vals))
            fh.write(json.dumps(rec) + "\n")

    if hasattr(target, "write"):
        _write(target)  # type: ignore[arg-type]
    else:
        with open(target, "w", encoding="utf-8") as fh:
            _write(fh)


def read_trace(source: str | Path | IO[str]) -> list[tuple]:
    """Parse a JSONL trace back into the tuple-event form the recorder
    produces (exact round-trip of :func:`write_trace`)."""

    def _read(fh: IO[str]) -> list[tuple]:
        events: list[tuple] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            rec = json.loads(line)
            kind = rec["kind"]
            fields = _AUX_FIELDS.get(kind)
            aux = None
            if fields is not None:
                vals = tuple(rec[f] for f in fields)
                aux = vals if len(vals) > 1 else vals[0]
            events.append((kind, rec["t"], rec["task"], rec["job"], aux))
        return events

    if hasattr(source, "read"):
        return _read(source)  # type: ignore[arg-type]
    with open(source, "r", encoding="utf-8") as fh:
        return _read(fh)


# -- latency decomposition --------------------------------------------------


@dataclass(frozen=True)
class TaskBreakdown:
    """Where one completed task's start latency J went.

    The three waiting components telescope along the *winning* job's
    span: ``retry_loss + middleware + queue_wait == makespan`` (J, the
    launch→start latency the paper studies).  ``execution`` is the
    payload runtime that follows the start.
    """

    task_id: int
    label: str
    vo: str
    runtime: float
    t_launch: float
    #: launch → the winner's (last) submission: time burned on copies
    #: that were lost, stuck, failed or abandoned before the winner
    retry_loss: float
    #: submission → site queue: broker matching, hops, outage backoff
    middleware: float
    #: site queue → start: waiting behind the background load
    queue_wait: float
    #: launch → winner start: the paper's latency J
    makespan: float

    @property
    def execution(self) -> float:
        return self.runtime

    @property
    def turnaround(self) -> float:
        """Launch → payload completion (J + runtime)."""
        return self.makespan + self.runtime


def decompose(events: Sequence[tuple]) -> list[TaskBreakdown]:
    """Split every completed task's makespan into waiting components.

    The winner is named by the ``complete`` event; its last ``submit``
    (client retries re-stamp submission), ``enqueue`` and ``start``
    timestamps cut J into retry-loss / middleware / queue-wait.
    """
    tasks: dict[int, tuple] = {}
    complete: dict[int, tuple] = {}
    per_job: dict[int, dict] = {}
    for kind, t, tid, jid, aux in events:
        if kind == "task":
            tasks[tid] = (t, aux[0], aux[1], aux[2])
        elif kind == "complete":
            complete[tid] = (t, jid)
        elif kind in ("submit", "enqueue", "start") and jid >= 0:
            # last write wins: a retried job's fresh submit supersedes
            per_job.setdefault(jid, {})[kind] = t
    out = []
    for tid in sorted(complete):
        t_done, winner = complete[tid]
        t0, label, vo, runtime = tasks[tid]
        span = per_job.get(winner, {})
        t_submit = span.get("submit", t0)
        t_enqueue = span.get("enqueue", t_submit)
        t_start = span.get("start", t_done)
        out.append(
            TaskBreakdown(
                task_id=tid,
                label=label,
                vo=vo,
                runtime=runtime,
                t_launch=t0,
                retry_loss=t_submit - t0,
                middleware=t_enqueue - t_submit,
                queue_wait=t_start - t_enqueue,
                makespan=t_done - t0,
            )
        )
    return out


def _breakdown_table(title: str, key_name: str, groups: dict) -> Table:
    table = Table(
        title,
        [key_name, "tasks", "retry loss", "middleware", "queue wait", "execution", "mean J"],
    )
    for key in sorted(groups):
        recs = groups[key]
        n = len(recs)
        table.add_row(
            key,
            str(n),
            format_seconds(sum(r.retry_loss for r in recs) / n),
            format_seconds(sum(r.middleware for r in recs) / n),
            format_seconds(sum(r.queue_wait for r in recs) / n),
            format_seconds(sum(r.runtime for r in recs) / n),
            format_seconds(sum(r.makespan for r in recs) / n),
        )
    return table


def breakdown_tables(records: Sequence[TaskBreakdown]) -> tuple[Table, Table]:
    """Per-strategy and per-VO mean-decomposition tables."""
    by_label: dict[str, list] = {}
    by_vo: dict[str, list] = {}
    for r in records:
        by_label.setdefault(r.label, []).append(r)
        by_vo.setdefault(r.vo or "(none)", []).append(r)
    return (
        _breakdown_table("Latency decomposition by strategy", "strategy", by_label),
        _breakdown_table("Latency decomposition by VO", "vo", by_vo),
    )


# -- GWF export -------------------------------------------------------------

_GWF_N_FIELDS = 29
_GWF_STATUS_COMPLETED = "1"


def export_gwf(
    events: Sequence[tuple], target: str | Path | IO[str]
) -> int:
    """Write the completed tasks as a Grid Workloads Format trace.

    One row per completed task: JobID = task id, SubmitTime = launch,
    WaitTime = makespan (J), RunTime = payload runtime, NProcs = 1,
    Status = completed, VOID = the task's VO; every other field is the
    GWF missing marker ``-1``.  The output parses through
    ``repro.traces.gwf.read_gwf`` and — because client runtimes are
    positive — survives ``read_gwf_workload``'s non-positive-runtime
    filter, closing the simulate→export→calibrate loop.

    Returns the number of rows written.
    """
    records = decompose(events)

    def _write(fh: IO[str]) -> int:
        fh.write("# generated by repro.gridsim.tracing.export_gwf\n")
        fh.write(
            "# fields: JobID SubmitTime WaitTime RunTime NProcs ... "
            "Status(10) ... VOID(27)\n"
        )
        for r in records:
            row = (
                [
                    str(r.task_id),
                    f"{r.t_launch:.3f}",
                    f"{r.makespan:.3f}",
                    f"{r.runtime:.3f}",
                    "1",
                ]
                + ["-1"] * 5
                + [_GWF_STATUS_COMPLETED]
                + ["-1"] * 16
                + [r.vo if r.vo else "-1", "-1"]
            )
            assert len(row) == _GWF_N_FIELDS
            fh.write(" ".join(row) + "\n")
        return len(records)

    if hasattr(target, "write"):
        return _write(target)  # type: ignore[arg-type]
    with open(target, "w", encoding="utf-8") as fh:
        return _write(fh)
