"""Job objects and their lifecycle states."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["Job", "JobState"]

_job_ids = itertools.count()


class JobState(enum.Enum):
    """Lifecycle of a grid job in the simulator.

    The paper's latency is the span SUBMITTED → RUNNING; jobs that end in
    LOST or STUCK (cancelled by the client at its timeout) are outliers.
    """

    #: created, not yet handed to the WMS
    CREATED = "created"
    #: at the WMS (match-making in progress)
    MATCHING = "matching"
    #: in a computing element's batch queue
    QUEUED = "queued"
    #: executing on a worker node
    RUNNING = "running"
    #: finished execution
    COMPLETED = "completed"
    #: cancelled by the client (strategy timeout) before starting
    CANCELLED = "cancelled"
    #: swallowed by a middleware fault before reaching any queue
    LOST = "lost"
    #: sitting in a queue it will never leave (site misconfiguration)
    STUCK = "stuck"
    #: failed at the site (black-hole CE, worker-node death) — the job
    #: was accepted and "completed" as a failure without ever starting
    FAILED = "failed"


@dataclass(eq=False, slots=True)
class Job:
    """One grid job, with the timestamps the paper's probes log.

    Jobs compare (and hash) by identity: two jobs are never "the same
    job" because they carry equal timestamps, and identity semantics
    keep containment/removal checks O(1) per element instead of a
    nine-field value comparison.

    Attributes
    ----------
    runtime:
        Execution duration once started (s).  Probes use ~0 (the paper's
        ``/bin/hostname`` payload) so that only latency is measured.
    submit_time / start_time / end_time:
        Lifecycle timestamps in virtual seconds (NaN until reached).
    queue_time:
        Instant the job entered its site's batch queue (NaN before
        dispatch).  The FIFO position of a client job among the
        vectorised background lane's pending arrivals is decided by this
        timestamp, so both site engines stamp it on enqueue.
    site:
        Name of the computing element the job was dispatched to.
    tag:
        Free-form owner tag (used by strategy executors to group copies).
    vo:
        Virtual organisation the job is accounted to.  Empty means "the
        site's default VO" — fair-share sites map it to their first
        configured VO, plain FIFO sites ignore it entirely.
    """

    runtime: float = 0.0
    job_id: int = field(default_factory=_job_ids.__next__)
    state: JobState = JobState.CREATED
    submit_time: float = float("nan")
    start_time: float = float("nan")
    end_time: float = float("nan")
    queue_time: float = float("nan")
    site: str = ""
    tag: str = ""
    vo: str = ""
    #: at-least-once ghost: a copy that *landed* although the client saw
    #: its submission fail (lost ack).  Cleared when the client's
    #: sibling-cancel reconciles it (counted by the grid)
    duplicate: bool = field(default=False, repr=False, compare=False)
    #: completion Event while RUNNING (owned by the executing site)
    completion_event: object | None = field(default=None, repr=False, compare=False)
    #: client start watcher (set by GridSimulator.submit, cleared on
    #: delivery/cancel) — carried on the job so the start path does not
    #: pay a watcher-registry lookup per job
    on_start: object | None = field(default=None, repr=False, compare=False)

    @property
    def latency(self) -> float:
        """Seconds from submission to execution start (inf if never ran)."""
        if self.state in (JobState.RUNNING, JobState.COMPLETED):
            return self.start_time - self.submit_time
        return float("inf")

    @property
    def is_outlier(self) -> bool:
        """True if the job never started (lost, stuck, cancelled, failed)."""
        return self.state in (
            JobState.LOST,
            JobState.STUCK,
            JobState.CANCELLED,
            JobState.FAILED,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Job(#{self.job_id}, {self.state.value}, site={self.site or '-'})"
