"""WMS federation: several brokers with partial, differently-stale views.

Production grids run more than one Workload Management Server: each VO
or region operates brokers that *own* a subset of the computing
elements (they receive those sites' load reports on the normal
information-system cadence) while the rest of the grid is visible only
through the federated information system, which propagates with extra
lag.  Jobs therefore route through brokers whose views disagree — a
stronger version of the paper's §1 partial-information effect, and the
reason two users submitting the same second can land on very different
queues.

:class:`FederatedBroker` extends a Workload Manager with split refresh:
owned sites re-measure every ``info_refresh`` seconds, remote sites
every ``info_refresh + info_lag``.  Match-making delay, ranking noise
and the dispatch path are inherited unchanged, so a single broker
owning every site with zero lag *is* the plain WMS (pinned
byte-for-byte by ``tests/test_federation.py``).

The federated view is a pure information-system overlay
(:class:`_FederatedInfoMixin`), so it composes with either dispatch
engine: :class:`FederatedBroker` rides the per-job event oracle,
:class:`BatchedFederatedBroker` the windowed bucket lane of
:class:`~repro.gridsim.wms.BatchedWorkloadManager` — federation gets
the batched speedup for free because bucket resolution ranks through
``current_snapshot()``, which is exactly what the mixin overrides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.site import ComputingElement
from repro.gridsim.wms import BatchedWorkloadManager, WorkloadManager
from repro.util.validation import check_nonnegative

__all__ = ["BatchedFederatedBroker", "BrokerConfig", "FederatedBroker"]


@dataclass(frozen=True)
class BrokerConfig:
    """Static description of one federated broker.

    Attributes
    ----------
    name:
        Broker label (e.g. ``"wms.cern"``).
    sites:
        Names of the computing elements this broker owns (fresh load
        reports).  Every other site in the grid is still rankable, but
        only through the lagged federated view.
    info_lag:
        Extra staleness (s) added to the information-system refresh
        period for non-owned sites.  0 means the broker sees the whole
        grid on the normal cadence.
    """

    name: str
    sites: tuple[str, ...]
    info_lag: float = 600.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("broker name must be non-empty")
        if not self.sites:
            raise ValueError(f"broker {self.name!r} must own at least one site")
        dupes = {s for s in self.sites if self.sites.count(s) > 1}
        if dupes:
            raise ValueError(
                f"broker {self.name!r} lists duplicate site(s): "
                f"{', '.join(sorted(dupes))}"
            )
        check_nonnegative("info_lag", self.info_lag)


class _FederatedInfoMixin:
    """Split-refresh information system shared by both dispatch engines.

    Overrides only the snapshot machinery of the underlying Workload
    Manager (owned sites fresh, remote sites lagged); the submission
    path — per-job events or windowed buckets — comes from the sibling
    base class.
    """

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[ComputingElement],
        rng: np.random.Generator,
        *,
        owned: Sequence[str],
        info_lag: float = 600.0,
        name: str = "wms",
        **kwargs,
    ) -> None:
        owned_set = set(owned)
        unknown = owned_set - {s.name for s in sites}
        if unknown:
            raise ValueError(
                f"broker {name!r} owns unknown site(s): "
                f"{', '.join(sorted(unknown))}"
            )
        check_nonnegative("info_lag", info_lag)
        self.name = name
        self.info_lag = float(info_lag)
        # resolved before super().__init__, which measures loads once
        self._owned_idx = [
            i for i, s in enumerate(sites) if s.name in owned_set
        ]
        self._remote_idx = [
            i for i, s in enumerate(sites) if s.name not in owned_set
        ]
        self._remote_time = 0.0
        super().__init__(sim, sites, rng, **kwargs)

    # -- information system -------------------------------------------------

    def _measure_loads(self) -> np.ndarray:
        # the initial full measurement (constructor) also primes the
        # remote view; afterwards owned/remote refresh independently
        self._remote_time = self.sim.now
        return super()._measure_loads()

    def _refresh_partial(self, indices: list[int]) -> None:
        loads = self._snapshot_list
        sites = self.sites
        guess = self.runtime_guess
        for i in indices:
            loads[i] = sites[i].estimated_wait(guess)
        self._snapshot = np.asarray(loads)
        if self._health_aware:
            # penalties travel with the load reports: a remote site's
            # ban reaches this broker only at the *lagged* refresh, so a
            # lagged broker keeps feeding a banned site for up to one
            # refresh window plus its info_lag — the federated failure
            # mode the grid-weather experiment measures
            self._refresh_health(indices)

    def current_snapshot(self) -> np.ndarray:
        """Owned sites on the normal cadence, remote with ``info_lag``."""
        now = self.sim.now
        if now - self._snapshot_time >= self.info_refresh:
            self._refresh_partial(self._owned_idx)
            self._snapshot_time = now
        if (
            self._remote_idx
            and now - self._remote_time >= self.info_refresh + self.info_lag
        ):
            self._refresh_partial(self._remote_idx)
            self._remote_time = now
        return self._snapshot

    def snapshot_staleness(self) -> float:
        """Worst-case age of the split view: owned cadence vs lagged remote.

        Pure read (no refresh), like the base implementation — the
        trace's broker-hop events record how stale a ranking could be.
        """
        now = self.sim.now
        staleness = now - self._snapshot_time
        if self._remote_idx:
            staleness = max(staleness, now - self._remote_time)
        return staleness

    def end_outage(self) -> None:
        """Recover with a cold *federated* view as well.

        The base recovery keeps the owned-site snapshot stale for one
        refresh window; a federated broker additionally restarts its
        remote clock, so the lagged view stays pre-outage for up to
        ``info_refresh + info_lag`` — rejoining brokers are the stalest
        rankers on the grid, which is what failover clients route into.
        """
        super().end_outage()
        self._remote_time = self.sim.now

    def owned_sites(self) -> list[str]:
        """Names of the sites this broker owns."""
        return [self.sites[i].name for i in self._owned_idx]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name}, owns={len(self._owned_idx)}/"
            f"{len(self.sites)} sites, lag={self.info_lag:g}s)"
        )


class FederatedBroker(_FederatedInfoMixin, WorkloadManager):
    """Federated broker on the per-job event dispatch oracle."""


class BatchedFederatedBroker(_FederatedInfoMixin, BatchedWorkloadManager):
    """Federated broker on the windowed bucket dispatch lane."""
