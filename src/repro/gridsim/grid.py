"""The grid facade: configuration, wiring and the client-visible API.

``GridSimulator`` assembles the EGEE-like stack (sites + WMS + background
load + fault injection) from a declarative :class:`GridConfig` and exposes
the operations a client-side strategy needs: submit, cancel, observe
start events, advance time.
"""

from __future__ import annotations

import copy
import math
import os
import pickle
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from functools import partial
from typing import Callable

import numpy as np

from repro.gridsim.background import BackgroundLoad
from repro.gridsim.events import Simulator
from repro.gridsim.fairshare import (
    FairShareComputingElement,
    FairShareVectorComputingElement,
    normalize_vo_shares,
)
from repro.gridsim.faults import FaultModel, SubmitFaultConfig
from repro.gridsim.federation import (
    BatchedFederatedBroker,
    BrokerConfig,
    FederatedBroker,
)
from repro.gridsim.health import HealthConfig, HealthService
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.middleware import MiddlewareDomain, RetryPolicy
from repro.gridsim.outages import OutageProcess
from repro.gridsim.registry import MetricsRegistry
from repro.gridsim.site import ComputingElement, VectorComputingElement
from repro.gridsim.tracing import TraceRecorder
from repro.gridsim.weather import (
    ResubmissionAgent,
    ResubmitConfig,
    StormProcess,
    WeatherConfig,
)
from repro.gridsim.wms import BatchedWorkloadManager, WorkloadManager
from repro.traces.generator import DiurnalProfile
from repro.util.rng import RngLike, as_rng, spawn_rngs
from repro.util.validation import check_positive

__all__ = [
    "SiteConfig",
    "GridConfig",
    "GridSimulator",
    "GridSnapshot",
    "configure_warm_cache",
    "default_grid_config",
    "federated_grid_config",
    "warmed_grid",
    "warmed_snapshot",
]

#: site engine selected by :attr:`GridConfig.site_engine`
_SITE_ENGINES = {
    "vector": VectorComputingElement,
    "event": ComputingElement,
}

#: fair-share flavour of each site engine (sites declaring >= 2 VOs)
_FAIRSHARE_ENGINES = {
    "vector": FairShareVectorComputingElement,
    "event": FairShareComputingElement,
}


def _default_site_engine() -> str:
    """Engine default, overridable via ``REPRO_SITE_ENGINE`` (CI matrix)."""
    return os.environ.get("REPRO_SITE_ENGINE", "vector")


#: WMS engine selected by :attr:`GridConfig.wms_engine` —
#: ``(plain WMS class, federated broker class)`` per engine
_WMS_ENGINES = {
    "batched": (BatchedWorkloadManager, BatchedFederatedBroker),
    "event": (WorkloadManager, FederatedBroker),
}


def _default_wms_engine() -> str:
    """WMS engine default, overridable via ``REPRO_WMS_ENGINE`` (CI matrix)."""
    return os.environ.get("REPRO_WMS_ENGINE", "batched")


@dataclass(frozen=True)
class SiteConfig:
    """Static description of one computing centre.

    Attributes
    ----------
    name:
        Site label (e.g. ``"ce03.biomed.example"``).
    n_cores:
        Worker cores behind the CE.
    utilization:
        Target background utilisation (≈0.9–0.97 reproduces EGEE's
        saturated production regime).
    runtime_median, runtime_sigma:
        Log-normal parameters of background job runtimes.
    vo_shares:
        ``(vo_name, share)`` pairs declaring the site's fair-share
        allocation.  Empty or a single entry keeps the site on the plain
        FIFO engines (exactly today's behaviour); two or more switch it
        to the fair-share engines with per-VO queues.
    vo_traffic:
        Optional ``(vo_name, weight)`` pairs for the *background traffic*
        mix (defaults to ``vo_shares`` — production demand proportional
        to allocation).  Skewing it away from the shares models a VO
        overdriving its allocation.
    """

    name: str
    n_cores: int
    utilization: float = 0.9
    runtime_median: float = 3600.0
    runtime_sigma: float = 0.8
    vo_shares: tuple[tuple[str, float], ...] = ()
    vo_traffic: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class GridConfig:
    """Full grid description (sites + middleware behaviour).

    Attributes
    ----------
    sites:
        Computing centres.
    matchmaking_median, matchmaking_sigma:
        Log-normal match-making delay at the WMS — the latency floor.
    info_refresh:
        Staleness period of the information system (s).
    ranking_noise:
        Multiplicative log-normal noise applied when ranking sites.
    faults:
        Outlier-producing fault channels.
    diurnal_amplitude:
        Amplitude of the shared daily load modulation (0 disables).
    site_engine:
        ``"vector"`` (default, or ``REPRO_SITE_ENGINE``) runs sites on
        the two-lane :class:`~repro.gridsim.site.VectorComputingElement`;
        ``"event"`` keeps the fully event-driven oracle.
    wms_engine:
        ``"batched"`` (default, or ``REPRO_WMS_ENGINE``) resolves
        match-making in windowed dispatch buckets — one event per
        information-refresh window, site selection vectorised over the
        bucket — and pools client timeout timers on the kernel's coarse
        timer wheel; ``"event"`` keeps the per-job dispatch oracle with
        exact heap timers.  The batched lane is a law-level
        approximation (dispatches land on window boundaries), pinned
        against the oracle by ``tests/test_wms_engine_equivalence.py``.
    fairshare_halflife:
        Decay half-life (s) of the per-VO usage window on fair-share
        sites (``math.inf`` disables decay).
    brokers:
        Federated WMS brokers (:class:`~repro.gridsim.federation.BrokerConfig`).
        Empty keeps the single all-seeing WMS — today's behaviour,
        byte-for-byte.  With brokers, submissions route round-robin (or
        explicitly via :meth:`GridSimulator.submit`'s ``via``) and each
        broker ranks owned sites on fresh estimates, the rest through
        the lagged federated view.
    weather:
        Grid weather regime (:class:`~repro.gridsim.weather.WeatherConfig`):
        per-site renewal outages, correlated storms and scheduled
        black-hole windows.  ``None`` (the default) keeps today's calm
        grid byte-for-byte.
    health:
        Site health state machine
        (:class:`~repro.gridsim.health.HealthConfig`): observed-outcome
        EWMAs, bans, probe re-admission, and health-aware ranking on
        every broker.  ``None`` disables the operator loop entirely.
    resubmit:
        Service-side self-healing agent
        (:class:`~repro.gridsim.weather.ResubmitConfig`) that resubmits
        failed-and-missing tasks under a retry budget.  ``None`` leaves
        recovery entirely to user-side strategies.
    submit_faults:
        At-least-once submission-path fault channel
        (:class:`~repro.gridsim.faults.SubmitFaultConfig`): submit
        attempts error with ``p_fail``, and a failed attempt may still
        have *landed* (``p_landed``), minting a duplicate the instant
        the client retries.  ``None`` keeps the path reliable.
    retry:
        Client-side resilience
        (:class:`~repro.gridsim.middleware.RetryPolicy`): capped
        exponential backoff with seeded jitter, per-attempt submit
        timeouts and per-broker circuit breakers driving failover
        across :attr:`GridSimulator.brokers`.  ``None`` means one
        attempt per copy, exactly today's clients.
    tracing:
        Opt-in end-to-end task tracing
        (:class:`~repro.gridsim.tracing.TraceRecorder`): records typed
        lifecycle events (submit, broker hop, enqueue, start,
        complete/cancel/fail, retry, rescue, duplicate mint/reconcile)
        for every client task.  ``False`` (default) keeps every hook on
        its ``_tr is None`` fast path — a traced run replays the
        untraced one byte-for-byte, tracing just writes it down.

    Configuring any of ``retry``, ``submit_faults``, scheduled
    ``weather.broker_outages`` or a storm ``broker_prob`` activates the
    grid's :class:`~repro.gridsim.middleware.MiddlewareDomain`;
    otherwise submissions take the historical path byte-for-byte.
    """

    sites: tuple[SiteConfig, ...]
    matchmaking_median: float = 60.0
    matchmaking_sigma: float = 0.6
    info_refresh: float = 300.0
    ranking_noise: float = 0.3
    faults: FaultModel = field(default_factory=FaultModel)
    diurnal_amplitude: float = 0.0
    site_engine: str = field(default_factory=_default_site_engine)
    wms_engine: str = field(default_factory=_default_wms_engine)
    fairshare_halflife: float = 86_400.0
    brokers: tuple[BrokerConfig, ...] = ()
    weather: WeatherConfig | None = None
    health: HealthConfig | None = None
    resubmit: ResubmitConfig | None = None
    submit_faults: SubmitFaultConfig | None = None
    retry: RetryPolicy | None = None
    tracing: bool = False

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("grid needs at least one site")
        if self.site_engine not in _SITE_ENGINES:
            raise ValueError(
                f"unknown site_engine {self.site_engine!r}; "
                f"available: {', '.join(_SITE_ENGINES)}"
            )
        if self.wms_engine not in _WMS_ENGINES:
            raise ValueError(
                f"unknown wms_engine {self.wms_engine!r}; "
                f"available: {', '.join(_WMS_ENGINES)}"
            )
        names = [sc.name for sc in self.sites]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise ValueError(
                f"duplicate site name(s): {', '.join(dupes)} — site names "
                "key cancellation and broker ownership, so they must be "
                "unique"
            )
        for sc in self.sites:
            if int(sc.n_cores) < 1:
                raise ValueError(
                    f"site {sc.name!r} must have >= 1 core, got {sc.n_cores}"
                )
            if sc.vo_shares:
                shares = normalize_vo_shares(sc.vo_shares)
                if sc.vo_traffic:
                    known = {n for n, _ in shares}
                    stray = [n for n, _ in sc.vo_traffic if n not in known]
                    if stray:
                        raise ValueError(
                            f"site {sc.name!r}: vo_traffic names VO(s) "
                            f"absent from vo_shares: {', '.join(stray)}"
                        )
            elif sc.vo_traffic:
                raise ValueError(
                    f"site {sc.name!r} sets vo_traffic without vo_shares"
                )
        if not self.fairshare_halflife > 0.0:
            raise ValueError(
                f"fairshare_halflife must be > 0, got {self.fairshare_halflife!r}"
            )
        if self.brokers:
            bnames = [b.name for b in self.brokers]
            bdupes = sorted({n for n in bnames if bnames.count(n) > 1})
            if bdupes:
                raise ValueError(
                    f"duplicate broker name(s): {', '.join(bdupes)}"
                )
            site_names = set(names)
            for b in self.brokers:
                stray = [s for s in b.sites if s not in site_names]
                if stray:
                    raise ValueError(
                        f"broker {b.name!r} owns unknown site(s): "
                        f"{', '.join(stray)}"
                    )
        if self.weather is not None:
            if not isinstance(self.weather, WeatherConfig):
                raise TypeError(
                    "weather must be a WeatherConfig, "
                    f"got {type(self.weather).__name__}"
                )
            storm = self.weather.storm
            if storm is not None and storm.subset_size > len(self.sites):
                raise ValueError(
                    f"storm subset_size={storm.subset_size} exceeds the "
                    f"{len(self.sites)} configured site(s)"
                )
            site_names = {sc.name for sc in self.sites}
            for bh in self.weather.black_holes:
                if bh.site not in site_names:
                    raise ValueError(
                        f"black-hole site {bh.site!r} is not a configured "
                        f"site; available: {', '.join(sorted(site_names))}"
                    )
            broker_names = {b.name for b in self.brokers}
            for bo in self.weather.broker_outages:
                if bo.broker not in broker_names:
                    available = (
                        f"available: {', '.join(sorted(broker_names))}"
                        if broker_names
                        else "this grid configures no federated brokers"
                    )
                    raise ValueError(
                        f"broker_outages names unknown broker "
                        f"{bo.broker!r}; {available}"
                    )
            if storm is not None and storm.broker_prob > 0.0 and not self.brokers:
                raise ValueError(
                    f"storm broker_prob={storm.broker_prob!r} needs "
                    "federated brokers (GridConfig.brokers is empty)"
                )
        if self.health is not None and not isinstance(self.health, HealthConfig):
            raise TypeError(
                f"health must be a HealthConfig, got {type(self.health).__name__}"
            )
        if self.resubmit is not None and not isinstance(
            self.resubmit, ResubmitConfig
        ):
            raise TypeError(
                "resubmit must be a ResubmitConfig, "
                f"got {type(self.resubmit).__name__}"
            )
        if self.submit_faults is not None and not isinstance(
            self.submit_faults, SubmitFaultConfig
        ):
            raise TypeError(
                "submit_faults must be a SubmitFaultConfig, "
                f"got {type(self.submit_faults).__name__}"
            )
        if self.retry is not None and not isinstance(self.retry, RetryPolicy):
            raise TypeError(
                f"retry must be a RetryPolicy, got {type(self.retry).__name__}"
            )


def default_grid_config(
    *,
    n_sites: int = 12,
    seed: int = 7,
    utilization: float = 0.92,
    p_lost: float = 0.02,
    p_stuck: float = 0.03,
    diurnal_amplitude: float = 0.3,
) -> GridConfig:
    """An EGEE-biomed-flavoured default: heterogeneous, busy, faulty.

    Core counts span 8–128 (grid sites vary by two orders of magnitude);
    utilisation defaults near saturation so queue waits dominate, and the
    fault channels inject a ρ of ~5% before queueing outliers.
    """
    rng = np.random.default_rng(seed)
    cores_choices = np.array([8, 16, 24, 32, 48, 64, 96, 128])
    sites = tuple(
        SiteConfig(
            name=f"ce{i:02d}",
            n_cores=int(rng.choice(cores_choices)),
            utilization=float(utilization * rng.uniform(0.9, 1.05)),
            runtime_median=float(rng.uniform(1800.0, 7200.0)),
            runtime_sigma=float(rng.uniform(0.6, 1.1)),
        )
        for i in range(n_sites)
    )
    return GridConfig(
        sites=sites,
        faults=FaultModel(p_lost=p_lost, p_stuck=p_stuck),
        diurnal_amplitude=diurnal_amplitude,
    )


def federated_grid_config(
    *,
    n_sites: int = 8,
    n_brokers: int = 2,
    vo_shares: tuple[tuple[str, float], ...] = (
        ("biomed", 0.5),
        ("atlas", 0.3),
        ("cms", 0.2),
    ),
    seed: int = 7,
    utilization: float = 0.85,
    info_lag: float = 900.0,
    p_lost: float = 0.02,
    p_stuck: float = 0.02,
) -> GridConfig:
    """A multi-VO, multi-broker variant of :func:`default_grid_config`.

    Sites are drawn like the default config (heterogeneous cores and
    runtimes) but declare ``vo_shares`` fair-share allocations, and
    ``n_brokers`` federated brokers each own a contiguous slice of the
    sites with ``info_lag`` staleness towards the rest.
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1, got {n_sites}")
    if not 1 <= n_brokers <= n_sites:
        raise ValueError(
            f"n_brokers must be in [1, n_sites={n_sites}], got {n_brokers}"
        )
    rng = np.random.default_rng(seed)
    cores_choices = np.array([16, 24, 32, 48, 64, 96, 128])
    sites = tuple(
        SiteConfig(
            name=f"ce{i:02d}",
            n_cores=int(rng.choice(cores_choices)),
            utilization=float(utilization * rng.uniform(0.9, 1.05)),
            runtime_median=float(rng.uniform(1800.0, 7200.0)),
            runtime_sigma=float(rng.uniform(0.6, 1.1)),
            vo_shares=vo_shares,
        )
        for i in range(n_sites)
    )
    bounds = np.linspace(0, n_sites, n_brokers + 1).round().astype(int)
    brokers = tuple(
        BrokerConfig(
            name=f"wms-{k}",
            sites=tuple(s.name for s in sites[bounds[k] : bounds[k + 1]]),
            info_lag=info_lag,
        )
        for k in range(n_brokers)
    )
    return GridConfig(
        sites=sites,
        faults=FaultModel(p_lost=p_lost, p_stuck=p_stuck),
        brokers=brokers,
    )


class GridSimulator:
    """Executable grid built from a :class:`GridConfig`."""

    def __init__(self, config: GridConfig, seed: RngLike = None) -> None:
        self.config = config
        self.sim = Simulator()
        #: unified counter/histogram/gauge namespace every subsystem
        #: publishes into (middleware stats, weather counters, tracing
        #: latency histogram); reading it never touches the laws
        self.metrics = MetricsRegistry()
        #: opt-in task tracing — None keeps every hook on its fast path
        self._tr = (
            TraceRecorder(self.sim, self.metrics) if config.tracing else None
        )
        # extra broker streams are appended *after* the historical
        # 2 + n_sites children, weather streams after those, and the
        # middleware chaos/jitter streams last, so degenerate
        # (broker-free, calm, fault-free) configs keep every RNG stream
        # byte-identical to the original layout
        n_extra_brokers = max(0, len(config.brokers) - 1)
        n_weather = 0
        if config.weather is not None:
            if config.weather.site_outages is not None:
                n_weather += len(config.sites)
            if config.weather.storm is not None:
                n_weather += 1
        n_mw = (config.submit_faults is not None) + (config.retry is not None)
        rngs = spawn_rngs(
            as_rng(seed),
            2 + len(config.sites) + n_extra_brokers + n_weather + n_mw,
        )
        self._fault_rng = rngs[0]
        diurnal = (
            DiurnalProfile(amplitude=config.diurnal_amplitude)
            if config.diurnal_amplitude > 0.0
            else None
        )
        site_cls = _SITE_ENGINES[config.site_engine]
        fairshare_cls = _FAIRSHARE_ENGINES[config.site_engine]
        self.sites = [
            fairshare_cls(
                sc.name,
                sc.n_cores,
                self.sim,
                vo_shares=sc.vo_shares,
                fairshare_halflife=config.fairshare_halflife,
                on_start=self._notify_start,
            )
            if len(sc.vo_shares) >= 2
            else site_cls(
                sc.name, sc.n_cores, self.sim, on_start=self._notify_start
            )
            for sc in config.sites
        ]
        wms_kwargs = dict(
            matchmaking_median=config.matchmaking_median,
            matchmaking_sigma=config.matchmaking_sigma,
            info_refresh=config.info_refresh,
            ranking_noise=config.ranking_noise,
        )
        wms_cls, broker_cls = _WMS_ENGINES[config.wms_engine]
        #: client timeout timers ride the pooled wheel on the batched lane
        self._pooled_timers = config.wms_engine == "batched"
        if config.brokers:
            broker_rngs = [rngs[1], *rngs[2 + len(config.sites):]]
            self.brokers = [
                broker_cls(
                    self.sim,
                    self.sites,
                    rng,
                    owned=bc.sites,
                    info_lag=bc.info_lag,
                    name=bc.name,
                    **wms_kwargs,
                )
                for bc, rng in zip(config.brokers, broker_rngs)
            ]
        else:
            self.brokers = [
                wms_cls(self.sim, self.sites, rngs[1], **wms_kwargs)
            ]
        #: the primary broker (the only one on broker-free grids)
        self.wms = self.brokers[0]
        self._broker_by_name = {
            getattr(b, "name", str(i)): b for i, b in enumerate(self.brokers)
        }
        self._next_broker = 0
        self.background = [
            BackgroundLoad(
                site,
                self.sim,
                rng,
                utilization=sc.utilization,
                runtime_median=sc.runtime_median,
                runtime_sigma=sc.runtime_sigma,
                diurnal=diurnal,
                vo_mix=(sc.vo_traffic or sc.vo_shares)
                if len(sc.vo_shares) >= 2
                else None,
            )
            for site, sc, rng in zip(
                self.sites, config.sites, rngs[2 : 2 + len(config.sites)]
            )
        ]
        for bg in self.background:
            bg.start()
        #: name -> site, so cancel() resolves job.site in O(1)
        self._site_by_name = {s.name: s for s in self.sites}
        # -- grid weather / health / self-healing (all optional) ---------
        self.outage_processes: list[OutageProcess] = []
        self.storm: StormProcess | None = None
        if config.weather is not None:
            w_rngs = rngs[2 + len(config.sites) + n_extra_brokers :]
            oc = config.weather.site_outages
            if oc is not None:
                for site, rng in zip(self.sites, w_rngs):
                    proc = OutageProcess(
                        site,
                        self.sim,
                        rng,
                        mean_uptime=oc.mean_uptime,
                        mean_downtime=oc.mean_downtime,
                        kill_running=oc.kill_running,
                    )
                    proc.start()
                    self.outage_processes.append(proc)
                w_rngs = w_rngs[len(self.sites) :]
            if config.weather.storm is not None:
                self.storm = StormProcess(
                    self.sites,
                    self.sim,
                    w_rngs[0],
                    config.weather.storm,
                    brokers=self.brokers if config.brokers else None,
                )
                self.storm.start()
            for bh in config.weather.black_holes:
                site = self._site_by_name[bh.site]
                self.sim.schedule_at(bh.start, site.begin_black_hole)
                if math.isfinite(bh.duration):
                    self.sim.schedule_at(
                        bh.start + bh.duration, site.end_black_hole
                    )
            for bo in config.weather.broker_outages:
                broker = self._broker_by_name[bo.broker]
                self.sim.schedule_at(
                    bo.start, partial(broker.begin_outage, bo.mode)
                )
                if math.isfinite(bo.duration):
                    self.sim.schedule_at(
                        bo.start + bo.duration, broker.end_outage
                    )
        self._health: HealthService | None = None
        if config.health is not None:
            self._health = HealthService(self.sites, self.sim, config.health)
            for site in self.sites:
                site.on_fail = self._notify_fail
            for broker in self.brokers:
                broker.enable_health()
        self._agent: ResubmissionAgent | None = None
        if config.resubmit is not None:
            self._agent = ResubmissionAgent(self.sim, config.resubmit)
            self._agent.start()
        # -- middleware fault domain (optional) --------------------------
        self._mw: MiddlewareDomain | None = None
        mw_needed = (
            config.retry is not None
            or config.submit_faults is not None
            or (
                config.weather is not None
                and (
                    config.weather.broker_outages
                    or (
                        config.weather.storm is not None
                        and config.weather.storm.broker_prob > 0.0
                    )
                )
            )
        )
        if mw_needed:
            mw_rngs = rngs[
                2 + len(config.sites) + n_extra_brokers + n_weather :
            ]
            k = 0
            chaos_rng = jitter_rng = None
            if config.submit_faults is not None:
                chaos_rng = mw_rngs[k]
                k += 1
            if config.retry is not None:
                jitter_rng = mw_rngs[k]
            self._mw = MiddlewareDomain(
                self,
                retry=config.retry,
                faults=config.submit_faults,
                chaos_rng=chaos_rng,
                jitter_rng=jitter_rng,
            )
        #: optional (task, job) audit trail for the chaos harness's
        #: conservation auditor — None (off, zero cost) unless enabled
        self.task_ledger: list | None = None
        #: block-drawn fault uniforms (one per Bernoulli draw, consumed
        #: in the same order the scalar channel draws were)
        self._fault_uniforms: deque[float] = deque()
        #: counters
        self.jobs_submitted = 0
        self.jobs_lost = 0
        self.jobs_stuck = 0
        #: at-least-once duplicates cleaned up by sibling-cancel
        self.duplicates_reconciled = 0
        if self._tr is not None:
            for broker in self.brokers:
                broker._tr = self._tr
            if self._agent is not None:
                self._agent._tr = self._tr
            if config.health is None:
                # health grids already route failures through
                # _notify_fail; tracing needs the same signal
                for site in self.sites:
                    site.on_fail = self._notify_fail
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Publish every subsystem's gauges into :attr:`metrics`.

        Sources are ``(obj, attr)`` pairs or bound methods so the
        registry pickles with the grid (warm-cache snapshots).
        """
        m = self.metrics
        for attr in (
            "jobs_submitted",
            "jobs_lost",
            "jobs_stuck",
            "duplicates_reconciled",
        ):
            m.register_gauge(f"grid.{attr}", self, attr)
        m.register_gauge("grid.jobs_completed", self._jobs_completed_total)
        m.register_gauge("weather.outages_started", self._outages_started_total)
        m.register_gauge("weather.storms_started", self._storms_started_total)
        for site in self.sites:
            m.register_gauge(f"site.{site.name}.jobs_killed", site, "jobs_killed")
            m.register_gauge(
                f"site.{site.name}.black_hole_failures", site, "jobs_failed_bh"
            )
            if hasattr(site, "usage_shares"):
                # fair-share engines publish their decayed usage split
                m.register_gauge(f"site.{site.name}.usage_shares", site.usage_shares)
        for i, broker in enumerate(self.brokers):
            name = getattr(broker, "name", str(i))
            m.register_gauge(f"broker.{name}.dispatches", broker, "dispatch_count")
            m.register_gauge(
                f"broker.{name}.outages_started", broker, "outages_started"
            )
        if self._health is not None:
            m.register_gauge("health.report", self._health.report)
        if self._agent is not None:
            m.register_gauge("resubmit.detected", self._agent, "detected")
            m.register_gauge(
                "resubmit.resubmissions", self._agent, "resubmissions"
            )
        if self._mw is not None:
            m.register_gauge("mw.duplicates", self._mw, "duplicates")

    def _outages_started_total(self) -> int:
        """Scheduled + storm-driven site outages begun so far."""
        total = sum(p.outages_started for p in self.outage_processes)
        if self.storm is not None:
            total += self.storm.outages_started
        return total

    def _storms_started_total(self) -> int:
        return self.storm.storms_started if self.storm is not None else 0

    def _jobs_completed_total(self) -> int:
        return sum(s.jobs_completed for s in self.sites)

    @property
    def trace(self) -> TraceRecorder | None:
        """The task-lifecycle recorder, or ``None`` when tracing is off."""
        return self._tr

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (s)."""
        return self.sim.now

    def run_until(self, t: float) -> None:
        """Advance virtual time to ``t``."""
        self.sim.run_until(t)

    def warm_up(self, duration: float = 6 * 3600.0) -> None:
        """Let the background load fill the queues before measuring."""
        check_positive("duration", duration)
        self.sim.run_until(self.sim.now + duration)

    # -- client API ------------------------------------------------------

    def submit(
        self,
        job: Job,
        on_start: Callable[[Job], None] | None = None,
        *,
        via: int | str | None = None,
        task=None,
    ) -> Job:
        """Submit a job through the fault-prone middleware path.

        Parameters
        ----------
        job:
            A fresh :class:`Job` (state CREATED).
        on_start:
            Callback fired the moment the job starts on a worker.
        via:
            Broker to route through on federated grids — an index into
            :attr:`brokers`, a broker name, or ``None`` for the default
            policy (round-robin across brokers; the single WMS when the
            grid has no federation).
        task:
            The owning :class:`~repro.gridsim.client.TaskCore`, giving
            the middleware fault domain a retry context (backoff timers,
            attempt counters, duplicate registration).  Ignored — and
            free — on grids without a middleware fault domain; without a
            task, a failed submit attempt is simply LOST (no retries).
        """
        if self._mw is not None:
            return self._mw.submit(job, on_start, via, task)
        job.submit_time = self.sim.now
        self.jobs_submitted += 1
        tr = self._tr
        if tr is not None and task is not None:
            tr.submit(task, job)
        faults = self.config.faults
        if faults.p_lost != 0.0 or faults.p_stuck != 0.0:
            # the fault uniforms are consumed inline, with the same
            # refill idiom as submit_many — keep the two in lockstep,
            # they share the _fault_rng stream.  The second draw only
            # happens when the job survives the first channel, exactly
            # like the historical per-channel Bernoullis.  Fault-free
            # grids skip the draws entirely: the stream is private to
            # this channel, so no other law can observe the skipped
            # uniforms
            uniforms = self._fault_uniforms
            if len(uniforms) < 2:
                uniforms.extend(self._fault_rng.random(256).tolist())
            if uniforms.popleft() < faults.p_lost:
                job.state = JobState.LOST
                self.jobs_lost += 1
                if tr is not None:
                    tr.fail(job, "lost")
                return job
            if uniforms.popleft() < faults.p_stuck:
                # the job will sit in a mis-configured queue forever:
                # model it as matching that never dispatches
                job.state = JobState.STUCK
                self.jobs_stuck += 1
                if tr is not None:
                    tr.fail(job, "stuck")
                return job
        # attach the watcher only to jobs that can actually start: a
        # watcher on a lost/stuck job would never fire and only pins a
        # job→task reference cycle for the garbage collector
        if on_start is not None:
            job.on_start = on_start
        brokers = self.brokers
        if via is None and len(brokers) == 1:
            broker = brokers[0]
        else:
            broker = self.broker_for(via)
        if tr is not None:
            tr.hop(job, broker)
        broker.submit(job)
        return job

    def submit_many(
        self,
        jobs: list[Job],
        on_start: Callable[[Job], None] | None = None,
        *,
        via: int | str | None = None,
        task=None,
    ) -> list[Job]:
        """Submit a batch of sibling copies in one call.

        Law-identical to looping :meth:`submit` (same per-job fault
        draws in the same order, same match-making delay stream), but
        the survivors reach the broker through one
        ``WorkloadManager.submit_many`` call — the lane burst strategies
        use so a ``b``-copy round costs one pass through the middleware
        instead of ``b``.

        With a middleware fault domain each copy takes its own resilient
        attempt (per-copy fault draws, retries and failover), so a burst
        under ``via=None`` round-robins per copy instead of pinning the
        whole burst to one broker — resilient clients spread their
        copies.
        """
        if self._mw is not None:
            mw = self._mw
            for job in jobs:
                mw.submit(job, on_start, via, task)
            return jobs
        now = self.sim.now
        faults = self.config.faults
        tr = self._tr
        live: list[Job] = []
        if faults.p_lost == 0.0 and faults.p_stuck == 0.0:
            # fault-free grid: no uniforms to consume (private stream,
            # nothing downstream can observe the skipped draws)
            self.jobs_submitted += len(jobs)
            for job in jobs:
                job.submit_time = now
                if tr is not None and task is not None:
                    tr.submit(task, job)
                if on_start is not None:
                    job.on_start = on_start
                live.append(job)
        else:
            uniforms = self._fault_uniforms
            for job in jobs:
                job.submit_time = now
                self.jobs_submitted += 1
                if tr is not None and task is not None:
                    tr.submit(task, job)
                if len(uniforms) < 2:
                    uniforms.extend(self._fault_rng.random(256).tolist())
                if uniforms.popleft() < faults.p_lost:
                    job.state = JobState.LOST
                    self.jobs_lost += 1
                    if tr is not None:
                        tr.fail(job, "lost")
                    continue
                if uniforms.popleft() < faults.p_stuck:
                    job.state = JobState.STUCK
                    self.jobs_stuck += 1
                    if tr is not None:
                        tr.fail(job, "stuck")
                    continue
                if on_start is not None:
                    job.on_start = on_start
                live.append(job)
        if live:
            broker = self.broker_for(via)
            if tr is not None:
                for job in live:
                    tr.hop(job, broker)
            broker.submit_many(live)
        return jobs

    def broker_for(self, via: int | str | None = None) -> WorkloadManager:
        """Resolve a submission's broker (see :meth:`submit`)."""
        brokers = self.brokers
        if via is None:
            if len(brokers) == 1:
                return brokers[0]
            broker = brokers[self._next_broker]
            self._next_broker = (self._next_broker + 1) % len(brokers)
            return broker
        if isinstance(via, str):
            try:
                return self._broker_by_name[via]
            except KeyError:
                raise ValueError(
                    f"unknown broker {via!r}; available: "
                    f"{', '.join(self._broker_by_name)}"
                ) from None
        if not 0 <= via < len(brokers):
            raise ValueError(
                f"broker index {via} out of range; this grid has "
                f"{len(brokers)} broker(s)"
            )
        return brokers[via]

    def _submit_plain(self, job: Job, on_start, broker) -> None:
        """The accept tail shared with the middleware fault domain.

        Same fault-uniform consumption as :meth:`submit` /
        :meth:`submit_many` (they stay inlined for the calm-grid hot
        path) — a middleware-domain attempt that reaches the broker
        draws exactly the channels a plain submission would.
        """
        faults = self.config.faults
        tr = self._tr
        if faults.p_lost != 0.0 or faults.p_stuck != 0.0:
            uniforms = self._fault_uniforms
            if len(uniforms) < 2:
                uniforms.extend(self._fault_rng.random(256).tolist())
            if uniforms.popleft() < faults.p_lost:
                job.state = JobState.LOST
                self.jobs_lost += 1
                if tr is not None:
                    tr.fail(job, "lost")
                return
            if uniforms.popleft() < faults.p_stuck:
                job.state = JobState.STUCK
                self.jobs_stuck += 1
                if tr is not None:
                    tr.fail(job, "stuck")
                return
        if on_start is not None:
            job.on_start = on_start
        broker.submit(job)

    def enable_task_ledger(self) -> list:
        """Start recording every client ``(task, job)`` pair.

        The chaos harness's conservation auditor
        (:func:`~repro.gridsim.chaos.audit_conservation`) replays this
        ledger after a run to prove every task is accounted for exactly
        once.  Off by default (``task_ledger is None``) — a long
        population run would otherwise pin every job ever minted.
        """
        if self.task_ledger is None:
            self.task_ledger = []
        return self.task_ledger

    def cancel(self, job: Job) -> None:
        """Cancel a job wherever it is (matching, queued, running, stuck).

        CREATED jobs cancel too: under a retry policy a copy sits in
        that state between failed submit attempts, and the sibling
        cancel that settles its task must kill the pending retry saga.
        """
        job.on_start = None
        tr = self._tr
        if job.duplicate:
            # an at-least-once ghost reconciled by sibling-cancel
            job.duplicate = False
            self.duplicates_reconciled += 1
            if tr is not None:
                tr.dup_reconciled(job)
        if job.state is JobState.MATCHING:
            self.wms.cancel_matching(job)
            if tr is not None:
                tr.cancel(job)
            return
        if job.state in (JobState.STUCK, JobState.LOST, JobState.CREATED):
            job.state = JobState.CANCELLED
            if tr is not None:
                tr.cancel(job)
            return
        if job.state in (JobState.QUEUED, JobState.RUNNING):
            site = self._site_by_name.get(job.site)
            if site is not None:
                site.cancel(job)
                if tr is not None:
                    tr.cancel(job)

    def cancel_many(self, jobs: list[Job]) -> None:
        """Cancel a batch of jobs in one grid call (sibling copies).

        Matching/stuck/lost jobs die by state flip; queued and running
        jobs are grouped per site and handed to the site's
        ``cancel_many``, so each touched site pays one dispatch /
        reconciliation pass for the whole batch instead of one per job.
        This is the cancellation lane :class:`~repro.gridsim.client.TaskCore`
        uses to kill a task's sibling copies the instant one starts.
        """
        tr = self._tr
        by_site: dict[str, list[Job]] = {}
        for job in jobs:
            job.on_start = None
            if job.duplicate:
                job.duplicate = False
                self.duplicates_reconciled += 1
                if tr is not None:
                    tr.dup_reconciled(job)
            state = job.state
            if state is JobState.MATCHING:
                job.state = JobState.CANCELLED
                if tr is not None:
                    tr.cancel(job)
            elif state in (JobState.STUCK, JobState.LOST, JobState.CREATED):
                job.state = JobState.CANCELLED
                if tr is not None:
                    tr.cancel(job)
            elif state in (JobState.QUEUED, JobState.RUNNING):
                by_site.setdefault(job.site, []).append(job)
                if tr is not None:
                    tr.cancel(job)
        for name, bunch in by_site.items():
            site = self._site_by_name.get(name)
            if site is not None:
                site.cancel_many(bunch)

    def schedule_timeout(self, delay: float, callback: Callable[[], None]):
        """Arm a cancellable client timeout (strategy ``t_inf``, probes).

        Routes to the kernel's pooled timer wheel under the batched WMS
        engine (O(1) arm/cancel, fires within one wheel granule after
        the deadline) and to an exact heap event under the ``"event"``
        oracle, so the oracle's timing stays bit-faithful to the
        historical per-job pipeline.
        """
        if self._pooled_timers:
            return self.sim.schedule_pooled(delay, callback)
        return self.sim.schedule(delay, callback)

    # -- snapshots -------------------------------------------------------

    def _check_pristine(self) -> None:
        if self.jobs_submitted:
            raise RuntimeError(
                "can only snapshot/clone a pristine grid (no client "
                "submissions); capture after warm_up(), before probing "
                "or running strategies"
            )

    def clone(self) -> "GridSimulator":
        """Fork a bit-identical copy of this grid.

        The copy shares nothing with the original: RNG states, the event
        heap, site queues, running jobs and every counter are duplicated,
        so both grids continue *identically* to how the original would
        have continued alone.  Only pristine grids can be cloned — once
        client jobs are submitted, the heap may hold strategy/probe
        closures whose copies would still reference the original grid.
        """
        return self.snapshot().restore()

    def snapshot(self) -> "GridSnapshot":
        """Capture the current state as a restorable :class:`GridSnapshot`."""
        return GridSnapshot(self)

    def report_failed(self, jobs: list[Job]) -> None:
        """Report jobs a client gave up on to the health service.

        Strategy timeouts are the WMS's main signal that a site is
        swallowing work: a job still QUEUED at its site when the client's
        ``t_inf`` fires counts as one observed failure against that site.
        No-op on grids without a health machine.
        """
        health = self._health
        if health is None:
            return
        for job in jobs:
            if job.state is JobState.QUEUED and job.site:
                health.observe_failure(job.site)

    # -- internals -------------------------------------------------------

    def _notify_start(self, job: Job) -> None:
        # record the start before the watcher runs: settling a task
        # cancels its siblings, and those cancel events must not precede
        # the start that triggered them
        if self._tr is not None:
            self._tr.start(job)
        if self._health is not None and job.site:
            self._health.observe_success(job.site)
        watcher = job.on_start
        if watcher is not None:
            job.on_start = None
            watcher(job)

    def _notify_fail(self, job: Job) -> None:
        # site-side instant failures (black-hole CE) reach the health
        # machine through the site's on_fail hook
        if self._health is not None and job.site:
            self._health.observe_failure(job.site)
        if self._tr is not None:
            self._tr.fail(job, "failed")

    # -- telemetry -------------------------------------------------------

    def weather_report(self) -> dict:
        """Cumulative weather/health/self-healing telemetry.

        Cheap enough to call repeatedly; always available (zeros on calm
        grids), with ``"health"`` / ``"resubmit"`` sections present only
        when those services are configured.  Every value is read through
        :attr:`metrics` — this is a view over the registry, not a
        parallel set of books.
        """
        m = self.metrics
        report: dict = {
            "outages_started": m.value("weather.outages_started"),
            "storms_started": m.value("weather.storms_started"),
            "jobs_killed": {
                s.name: m.value(f"site.{s.name}.jobs_killed")
                for s in self.sites
            },
            "black_hole_failures": {
                s.name: m.value(f"site.{s.name}.black_hole_failures")
                for s in self.sites
            },
        }
        if self._mw is not None:
            report["brokers"] = self._mw.report()
            report["duplicates"] = {
                "created": m.value("mw.duplicates"),
                "reconciled": m.value("grid.duplicates_reconciled"),
            }
        if self._health is not None:
            report["health"] = m.value("health.report")
        if self._agent is not None:
            report["resubmit"] = {
                "detected": m.value("resubmit.detected"),
                "resubmissions": m.value("resubmit.resubmissions"),
            }
        return report

    def total_queue_length(self) -> int:
        """Jobs waiting across all sites."""
        return sum(s.queue_length for s in self.sites)

    def total_busy_cores(self) -> int:
        """Cores in use across all sites."""
        return sum(s.busy_cores for s in self.sites)

    def utilization(self) -> float:
        """Fraction of all cores currently busy."""
        total = sum(s.n_cores for s in self.sites)
        return self.total_busy_cores() / total


class GridSnapshot:
    """A frozen grid state; :meth:`restore` forks fresh grids from it.

    The snapshot serialises the grid once at capture time (pickle — all
    gridsim-internal callbacks are bound methods or ``partial``s, which
    serialise by reference through the object graph), so the grid it was
    taken from may keep running and every ``restore()`` is a cheap
    deserialisation yielding an independent simulator that continues
    exactly as the original would have at capture time.  Grids carrying
    un-picklable attachments fall back to a deep-copied master.
    """

    def __init__(self, grid: GridSimulator) -> None:
        grid._check_pristine()
        self.time = grid.now
        self._payload: bytes | None
        self._master: GridSimulator | None
        try:
            self._payload = pickle.dumps(grid, pickle.HIGHEST_PROTOCOL)
            self._master = None
        except Exception:
            self._payload = None
            self._master = copy.deepcopy(grid)

    @property
    def nbytes(self) -> int:
        """Serialised size (0 for the deep-copy fallback, which can't tell)."""
        return len(self._payload) if self._payload is not None else 0

    def restore(self) -> GridSimulator:
        """Fork a runnable grid from the snapshot (repeatable)."""
        if self._payload is not None:
            return pickle.loads(self._payload)
        return copy.deepcopy(self._master)


#: warmed-grid snapshots keyed by (config, seed, duration); the cache
#: holds frozen state only — warmed_grid() hands out restored forks.
#: Bounded both by entry count and by total pickled bytes (LRU), so
#: many-config campaigns neither thrash a tiny cache nor hoard memory.
_WARM_CACHE: OrderedDict[tuple, GridSnapshot] = OrderedDict()


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


_WARM_CACHE_MAX = _env_int("REPRO_WARM_CACHE_MAX", 16)
_WARM_CACHE_MAX_BYTES = _env_int("REPRO_WARM_CACHE_BYTES", 256 * 1024 * 1024)


def configure_warm_cache(
    max_entries: int | None = None, max_bytes: int | None = None
) -> None:
    """Set the warmed-snapshot cache limits (and evict down to them).

    Defaults come from ``REPRO_WARM_CACHE_MAX`` (entries, default 16)
    and ``REPRO_WARM_CACHE_BYTES`` (total pickled size, default 256 MiB)
    read at import time; pass explicit values to override at runtime.
    """
    global _WARM_CACHE_MAX, _WARM_CACHE_MAX_BYTES
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        _WARM_CACHE_MAX = int(max_entries)
    if max_bytes is not None:
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        _WARM_CACHE_MAX_BYTES = int(max_bytes)
    _warm_cache_evict()


def _warm_cache_evict() -> None:
    """Drop least-recently-used snapshots past the entry/byte budgets."""
    total = sum(snap.nbytes for snap in _WARM_CACHE.values())
    while _WARM_CACHE and (
        len(_WARM_CACHE) > _WARM_CACHE_MAX or total > _WARM_CACHE_MAX_BYTES
    ):
        _, evicted = _WARM_CACHE.popitem(last=False)
        total -= evicted.nbytes


def warmed_snapshot(
    config: GridConfig,
    seed: int,
    duration: float = 6 * 3600.0,
) -> GridSnapshot:
    """The frozen warmed state behind :func:`warmed_grid` (integer seeds).

    Experiments that fork several same-seed grids (``val-des`` executes
    each strategy on one, ``abl-adopt`` one per fleet) grab the snapshot
    once and :meth:`~GridSnapshot.restore` per execution — including in
    worker processes, where shipping the pickled payload is far cheaper
    than re-warming.
    """
    check_positive("duration", duration)
    if not isinstance(seed, int):
        raise TypeError(
            f"warmed_snapshot caches integer seeds only, got {type(seed).__name__}"
        )
    key = (config, int(seed), float(duration))
    snap = _WARM_CACHE.get(key)
    if snap is None:
        master = GridSimulator(config, seed=seed)
        master.warm_up(duration)
        snap = master.snapshot()
        _WARM_CACHE[key] = snap
        _warm_cache_evict()
    else:
        _WARM_CACHE.move_to_end(key)
    return snap


def warmed_grid(
    config: GridConfig,
    seed: RngLike = None,
    duration: float = 6 * 3600.0,
) -> GridSimulator:
    """A grid warmed for ``duration`` seconds, served from a keyed cache.

    The first call for a given ``(config, seed, duration)`` builds and
    warms a master grid; subsequent calls fork bit-identical clones of
    it, so experiments that repeatedly need "a fresh grid with the same
    seed, warmed the same way" pay the warm-up once.  Clones are
    indistinguishable from independently warmed grids because
    construction and warm-up are deterministic given the seed.

    Only integer seeds are cached — generator seeds mutate and cannot
    key a cache, so those fall back to a direct warm-up.
    """
    check_positive("duration", duration)
    if not isinstance(seed, int):
        grid = GridSimulator(config, seed=seed)
        grid.warm_up(duration)
        return grid
    return warmed_snapshot(config, seed, duration).restore()
