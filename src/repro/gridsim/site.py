"""Computing elements: batch queue + worker cores of one grid site.

Two engines implement the same site contract:

* :class:`ComputingElement` — the original event-driven FIFO.  Every job
  (client *and* background) is a :class:`Job` whose start and completion
  are heap events.  It is kept as the law oracle: the equivalence suite
  (``tests/test_site_engine_equivalence.py``) replays identical workloads
  through both engines and compares traces.
* :class:`VectorComputingElement` — the production two-lane engine.
  Client-visible jobs (probes, strategy copies, cancellations) keep the
  exact event-kernel semantics, while anonymous background jobs flow
  through a vectorised lane: arrival/runtime chunks are fed as arrays and
  a Lindley-style recurrence over the per-core free-time heap
  (``start = max(arrival, min free)``, ``free ← start + runtime``)
  commits whole blocks of start/completion times with no per-job events,
  advanced lazily to the current sim time and reconciled at every client
  interaction point.

Both engines support in-queue cancellation (strategy timeouts) and
mid-run kills (burst copies whose sibling started first), plus the
outage hooks :meth:`begin_outage` / :meth:`end_outage` used by
:class:`~repro.gridsim.outages.OutageProcess` and the *black-hole*
hooks :meth:`begin_black_hole` / :meth:`end_black_hole` used by
:mod:`repro.gridsim.weather`: a black-holed CE keeps accepting jobs
and instantly "completes" them as failures (``JobState.FAILED``), so
its queue-length estimate stays at zero and the information system
keeps ranking it best — the classic traffic-eating attractor.  On the
vectorised engine the state flip reconciles the background lane first
(same pattern as ``begin_outage``) and then consumes arrivals without
occupying cores for as long as the hole is active.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from functools import partial
from heapq import heapify, heappop, heappush, heapreplace
from typing import Callable

import numpy as np

from repro.gridsim.events import Event, Simulator
from repro.gridsim.jobs import Job, JobState

__all__ = ["ComputingElement", "VectorComputingElement"]


class ComputingElement:
    """A site's gateway: FIFO batch queue feeding ``n_cores`` workers.

    EGEE sites run heterogeneous batch systems behind a common interface
    (§3.1); a FIFO queue with a fixed core pool captures the queueing
    behaviour that dominates probe latency.  Cancellation is supported
    both in-queue (strategy timeouts) and mid-run (burst copies whose
    sibling started first).

    This is the fully event-driven engine — every job pays heap events
    for arrival, start and completion.  Production grids default to
    :class:`VectorComputingElement`; this class remains the oracle the
    vectorised lane is verified against.
    """

    #: while True the CE accepts and instantly "completes" every job as
    #: a failure (grid-weather black hole); class attribute so that
    #: unconfigured grids never pay an instance slot for it
    black_hole = False
    #: failure watcher (health service): called with each non-background
    #: job the site fails
    on_fail: Callable[[Job], None] | None = None
    #: match-making penalty published to health-aware brokers
    #: (1.0 ok, >1 degraded, inf banned)
    health_penalty = 1.0

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.name = name
        self.n_cores = int(n_cores)
        self.sim = sim
        self.free_cores = int(n_cores)
        self.queue: deque[Job] = deque()
        #: cancelled jobs still sitting in ``queue`` (lazy removal —
        #: popped and skipped by ``_try_start``, so cancellation is O(1)
        #: instead of an O(n) scan of the deque)
        self._queue_husks = 0
        self.on_start = on_start
        #: jobs currently executing, keyed by job id; each carries its
        #: completion :class:`Event` in ``job.completion_event``
        self.running_jobs: dict[int, Job] = {}
        #: gate used by outage processes: while False, queued jobs do not
        #: start even if cores are free
        self.dispatch_enabled = True
        #: cumulative counters for utilisation diagnostics
        self.jobs_started = 0
        self.jobs_completed = 0
        #: running jobs killed by outages / black-hole flips
        self.jobs_killed = 0
        #: jobs failed on arrival (or drained) by a black hole
        self.jobs_failed_bh = 0

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        """Accept a dispatched job into the batch queue."""
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = self.sim._now
        self.queue.append(job)
        if self.free_cores > 0 and self.dispatch_enabled:
            self._try_start()

    def enqueue_many(self, jobs: list[Job]) -> int:
        """Accept a batch of dispatched jobs; returns how many enqueued.

        The whole batch enters the queue before any start fires (one
        dispatch pass at the end instead of one per job), so a start
        callback that cancels a sibling later in the same batch finds it
        already queued and leaves a husk — bit-identical to what the
        vectorised engine's batch path produces.  Jobs no longer in a
        dispatchable state on entry are skipped.
        """
        if self.black_hole:
            return self._fail_batch(jobs)
        n = 0
        now = self.sim._now
        for job in jobs:
            if job.state not in (JobState.MATCHING, JobState.CREATED):
                continue
            job.state = JobState.QUEUED
            job.site = self.name
            job.queue_time = now
            self.queue.append(job)
            n += 1
        if n and self.free_cores > 0 and self.dispatch_enabled:
            self._try_start()
        return n

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; returns ``True`` if it acted.

        Queued jobs are removed from the queue; running jobs are killed
        and their core released (EGEE's ``glite-wms-job-cancel``
        semantics).  Jobs already completed are left untouched.
        """
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False  # queued, but at some other site
            # lazy removal: leave a husk in the deque for _try_start to
            # skip; queue_length discounts it immediately
            job.state = JobState.CANCELLED
            self._queue_husks += 1
            return True
        if job.state is JobState.RUNNING:
            ev = job.completion_event
            if ev is not None:
                ev.cancel()
                job.completion_event = None
            self.running_jobs.pop(job.job_id, None)
            job.state = JobState.CANCELLED
            job.end_time = self.sim.now
            self.free_cores += 1
            if self.dispatch_enabled:
                self._try_start()
            return True
        return False

    def cancel_many(self, jobs: list[Job]) -> int:
        """Cancel a batch of sibling jobs at this site; returns the count.

        Two-phase semantics, identical on both engines so their client
        traces stay comparable: all queued jobs become husks *first*,
        then running jobs are killed, and only then does a single
        dispatch pass hand the freed cores out — so a core freed by one
        sibling can never briefly start another sibling that the same
        batch was about to cancel (which the per-job :meth:`cancel` loop
        allowed).
        """
        n = 0
        freed = False
        for job in jobs:
            if job.state is JobState.QUEUED and job.site == self.name:
                job.state = JobState.CANCELLED
                self._queue_husks += 1
                n += 1
        for job in jobs:
            if job.state is JobState.RUNNING:
                ev = job.completion_event
                if ev is not None:
                    ev.cancel()
                    job.completion_event = None
                self.running_jobs.pop(job.job_id, None)
                job.state = JobState.CANCELLED
                job.end_time = self.sim.now
                self.free_cores += 1
                freed = True
                n += 1
        if freed and self.dispatch_enabled:
            self._try_start()
        return n

    # -- outage hooks ------------------------------------------------------

    def begin_outage(self, rng: np.random.Generator, kill_running: float) -> None:
        """Close the dispatch gate and kill running jobs w.p. ``kill_running``."""
        # close the gate first, then kill (unscheduled outage semantics);
        # freed cores stay idle until recovery because the gate is closed
        self.dispatch_enabled = False
        for job in list(self.running_jobs.values()):
            if rng.random() < kill_running:
                self.cancel(job)
                self.jobs_killed += 1

    def end_outage(self) -> None:
        """Reopen the dispatch gate and drain the queue."""
        self.dispatch_enabled = True
        self._try_start()

    # -- black-hole hooks --------------------------------------------------

    def begin_black_hole(self) -> None:
        """Flip into the attractor state: fail queued work, kill running.

        From this instant the CE "completes" every accepted job as an
        instant :data:`JobState.FAILED`, keeping its queue empty and all
        cores free — so its published wait estimate is the best on the
        grid and the information system keeps feeding it traffic.
        Idempotent.
        """
        if self.black_hole:
            return
        self.black_hole = True
        now = self.sim._now
        on_fail = self.on_fail
        for job in self.queue:
            if job.state is not JobState.QUEUED:
                continue
            job.state = JobState.FAILED
            job.end_time = now
            self.jobs_failed_bh += 1
            if on_fail is not None and job.tag != "background":
                on_fail(job)
        self.queue.clear()
        self._queue_husks = 0
        for job in list(self.running_jobs.values()):
            ev = job.completion_event
            if ev is not None:
                ev.cancel()
                job.completion_event = None
            job.state = JobState.FAILED
            job.end_time = now
            self.free_cores += 1
            self.jobs_killed += 1
        self.running_jobs.clear()

    def end_black_hole(self) -> None:
        """Resume normal operation (queue and cores are already empty)."""
        if not self.black_hole:
            return
        self.black_hole = False
        if self.dispatch_enabled:
            self._try_start()

    def _fail_now(self, job: Job) -> None:
        """Instantly fail an arriving job (black-hole intercept)."""
        now = self.sim._now
        job.state = JobState.FAILED
        job.site = self.name
        job.queue_time = now
        job.end_time = now
        self.jobs_failed_bh += 1
        if self.on_fail is not None and job.tag != "background":
            self.on_fail(job)

    def _fail_batch(self, jobs: list[Job]) -> int:
        """Black-hole path of ``enqueue_many``: every job fails on arrival.

        Returns the count so WMS dispatch accounting still sees them as
        accepted — exactly how the real attractor keeps drawing traffic.
        """
        n = 0
        for job in jobs:
            if job.state not in (JobState.MATCHING, JobState.CREATED):
                continue
            self._fail_now(job)
            n += 1
        return n

    # -- internals ---------------------------------------------------------

    def _try_start(self) -> None:
        if not self.dispatch_enabled:
            return
        while self.free_cores > 0 and self.queue:
            job = self.queue.popleft()
            if job.state is not JobState.QUEUED:
                self._queue_husks -= 1
                continue
            self.free_cores -= 1
            job.state = JobState.RUNNING
            job.start_time = self.sim._now
            self.jobs_started += 1
            # partial (not a lambda): completion events must survive the
            # snapshot/clone deep copy, and closures copy as shared refs
            job.completion_event = self.sim.schedule(
                job.runtime, partial(self._complete, job)
            )
            self.running_jobs[job.job_id] = job
            # background jobs never have start watchers; skipping the
            # notification call for them halves the per-start overhead
            # on saturated grids
            if self.on_start is not None and job.tag != "background":
                self.on_start(job)

    def _complete(self, job: Job) -> None:
        job.completion_event = None
        self.running_jobs.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            return  # killed in the meantime
        job.state = JobState.COMPLETED
        job.end_time = self.sim._now
        self.jobs_completed += 1
        self.free_cores += 1
        if self.queue and self.dispatch_enabled:
            self._try_start()

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not running)."""
        return len(self.queue) - self._queue_husks

    @property
    def busy_cores(self) -> int:
        """Cores currently executing jobs."""
        return self.n_cores - self.free_cores

    def estimated_wait(self, mean_runtime_guess: float) -> float:
        """Crude queue-wait estimate the information system publishes.

        ``queue_length · mean_runtime / cores`` — deliberately naive, as
        real grid information systems publish coarse summaries.
        """
        return self.queue_length * mean_runtime_guess / self.n_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CE({self.name}, cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )


class VectorComputingElement:
    """Two-lane computing element: event-kernel clients, vectorised background.

    The background production workload — the overwhelming majority of a
    grid's traffic — never touches the event heap here.  Its arrivals
    come in pre-drawn chunks (:meth:`feed_background`), and the site
    resolves their start/completion times with a Lindley-style recurrence
    over the per-core free-time min-heap::

        start_i = max(arrival_i, min(core_free))
        core_free.replace_min(start_i + runtime_i)

    processed in arrival order (exactly FIFO) and **lazily**: commits
    only happen up to the current sim time, at the reconciliation points
    — client enqueue/cancel, outage toggles, telemetry reads
    (``queue_length`` / ``busy_cores`` / ``estimated_wait``) and chunk
    refills.  Client-visible jobs keep the event-kernel contract of
    :class:`ComputingElement`: ``on_start`` fires at the exact start
    instant, completions are real events, cancellation works queued and
    mid-run.

    The one scheduling device is the *wake*: while a client job waits in
    the FIFO, everything ahead of it (arrival times and runtimes of
    pending background work, committed free times) is already known, so
    its start instant is fully determined.  The site schedules a single
    event at that predicted time; any action that can move the
    prediction earlier (a queued or running cancellation, an outage
    recovery) re-aims it, and an outage closing the gate disarms it.
    Prediction and commit run the identical float arithmetic over the
    identical heap, so client traces are bit-identical to the
    event-driven oracle wherever no same-timestamp tie is involved.
    """

    #: grid-weather hooks, mirrored from :class:`ComputingElement`
    black_hole = False
    on_fail: Callable[[Job], None] | None = None
    health_penalty = 1.0

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.name = name
        self.n_cores = int(n_cores)
        self.sim = sim
        self.on_start = on_start
        #: min-heap of absolute times at which each core finishes its
        #: committed work; values <= now mean the core is idle
        self._core_free: list[float] = [0.0] * int(n_cores)
        #: pending background arrivals (sorted times + matching runtimes);
        #: entries before ``_bg_i`` are committed (started), entries at or
        #: after it are queued or not yet arrived
        self._bg_t: list[float] = []
        self._bg_r: list[float] = []
        self._bg_i = 0
        #: committed background entries trimmed off the front of the arrays
        self._bg_done = 0
        #: client jobs in arrival order (husks skipped lazily)
        self._client_q: deque[Job] = deque()
        self._client_husks = 0
        #: the single predicted-start event armed for the head client job
        self._wake: Event | None = None
        #: min-heap of ``(end, job_id, job)`` for running client jobs —
        #: completions are pure bookkeeping (the core release is already
        #: encoded in the free-time heap at commit), so instead of one
        #: kernel event per client job they drain lazily: at the top of
        #: every ``_advance``, before cancellations, and via the kernel
        #: reconciler when a run loop returns.  Entries for killed jobs
        #: stay as husks and are skipped on drain.
        self._client_ends: list[tuple[float, int, Job]] = []
        sim.add_reconciler(self._drain_completions)
        self.running_jobs: dict[int, Job] = {}
        self.dispatch_enabled = True
        #: no start may be committed before this instant — raised to the
        #: recovery time when an outage gate reopens, because work that
        #: "would have" started during the downtime actually starts the
        #: moment dispatch resumes
        self._dispatch_floor = 0.0
        self._started = 0
        self._killed = 0
        #: running jobs killed by outages / black-hole flips
        self.jobs_killed = 0
        #: jobs failed on arrival (or drained) by a black hole
        self.jobs_failed_bh = 0
        #: earliest instant the next commit can happen — ``_advance``
        #: returns immediately while ``now`` is before it.  Computed at
        #: the end of every walk; any mutation that could create an
        #: *earlier* start (client arrival, core release, gate reopen,
        #: new background chunk) resets it to 0 to force a walk.
        self._next_due = 0.0
        #: bumped whenever the inputs of a head-start prediction change
        #: (core release, dispatch-floor move) — commits alone never do,
        #: because prediction and commit run the identical recurrence.
        #: ``_ensure_wake`` skips the predictor while the armed wake was
        #: computed for the same head job at the same epoch.
        self._lane_epoch = 0
        self._wake_head: Job | None = None
        self._wake_epoch = -1

    # -- background lane ---------------------------------------------------

    def feed_background(self, times: list[float], runtimes: list[float]) -> None:
        """Append a chunk of background arrivals (sorted, all in the future).

        Called by :class:`~repro.gridsim.background.BackgroundLoad` once
        per refill; the reconciliation here also trims committed entries
        so pending arrays stay chunk-sized on healthy sites.
        """
        self._advance()
        i = self._bg_i
        if i:
            del self._bg_t[:i]
            del self._bg_r[:i]
            self._bg_done += i
            self._bg_i = 0
        self._bg_t.extend(times)
        self._bg_r.extend(runtimes)
        if times and times[0] < self._next_due:
            # a new arrival can never start before it arrives, so the
            # memo only needs *lowering* to the chunk head — feeds are
            # all-future, so the walk stays deferred instead of being
            # forced on the next reconciliation point
            self._next_due = times[0]

    def background_delivered(self) -> int:
        """Background arrivals whose arrival time has passed (lazy count)."""
        self._advance()
        return self._bg_done + bisect_right(self._bg_t, self.sim._now)

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        """Accept a dispatched client job into the FIFO."""
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = self.sim._now
        cq = self._client_q
        if self._client_husks == len(cq):
            # no live client ahead: the new arrival may start as soon as
            # a core frees past the floor, so *lower* the memo to that
            # bound (behind a live head, FIFO order keeps the next
            # commit as-is).  Work ahead of it — background arrivals at
            # or before its queue time — starts no earlier than the same
            # bound, so the memo stays a valid next-commit lower bound
            # and the walk is skipped entirely while all cores stay busy
            e = self._core_free[0]
            if self._dispatch_floor > e:
                e = self._dispatch_floor
            if e < self._next_due:
                self._next_due = e
        cq.append(job)
        self._advance()  # background ahead of it commits; may start it now
        if job.state is JobState.QUEUED:
            self._ensure_wake()

    def enqueue_many(self, jobs: list[Job]) -> int:
        """Accept a batch of dispatched jobs; returns how many enqueued.

        All jobs are appended to the FIFO first (same ``queue_time``,
        FIFO order = batch order, exactly as a loop over
        :meth:`enqueue` would produce), then one reconciliation pass
        commits whatever can start and one wake re-aim covers the whole
        batch — instead of an ``_advance`` + ``_ensure_wake`` per job.
        Jobs cancelled by a start callback fired mid-batch die as queue
        husks, the same outcome the per-job path reaches via
        :meth:`~repro.gridsim.wms.WorkloadManager.cancel_matching`.
        """
        if self.black_hole:
            return self._fail_batch(jobs)
        now = self.sim._now
        cq = self._client_q
        if self._client_husks == len(cq):
            # no live client ahead: the batch head may start once a core
            # frees past the floor (same memo lowering as ``enqueue``)
            e = self._core_free[0]
            if self._dispatch_floor > e:
                e = self._dispatch_floor
            if e < self._next_due:
                self._next_due = e
        n = 0
        for job in jobs:
            if job.state not in (JobState.MATCHING, JobState.CREATED):
                continue
            job.state = JobState.QUEUED
            job.site = self.name
            job.queue_time = now
            cq.append(job)
            n += 1
        if n:
            self._advance()
            self._ensure_wake()
        return n

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running client job; returns ``True`` if it acted."""
        ends = self._client_ends
        if ends and ends[0][0] <= self.sim._now:
            # a completion at or before now beats the cancel (the oracle
            # fires the completion event first) — settle those before
            # deciding whether the job is still cancellable
            self._drain_completions()
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False  # queued, but at some other site
            job.state = JobState.CANCELLED
            self._client_husks += 1
            # a removed entry only moves *later* starts earlier, so the
            # wake needs re-aiming only when the cancelled job was the
            # head client — if some earlier client is still queued, its
            # prediction (and the wake) are untouched
            for q in self._client_q:
                if q is job:
                    self._ensure_wake()
                    break
                if q.state is JobState.QUEUED:
                    break
            return True
        if job.state is JobState.RUNNING:
            ev = job.completion_event
            if ev is not None:
                ev.cancel()
                job.completion_event = None
            self.running_jobs.pop(job.job_id, None)
            job.state = JobState.CANCELLED
            now = self.sim._now
            job.end_time = now
            self._release_core(job.start_time + job.runtime, now)
            self._killed += 1
            self._next_due = 0.0  # the freed core may start earlier work
            self._lane_epoch += 1
            self._advance()  # the freed core may start queued work this instant
            self._ensure_wake()
            return True
        return False

    def cancel_many(self, jobs: list[Job]) -> int:
        """Cancel a batch of sibling jobs at this site; returns the count.

        Same two-phase semantics as the event engine's
        :meth:`ComputingElement.cancel_many` — queued husks first, then
        running kills, then a **single** reconciliation + wake re-aim
        for the whole batch instead of one per cancelled job.
        """
        n = 0
        freed = False
        now = self.sim._now
        ends = self._client_ends
        if ends and ends[0][0] <= now:
            self._drain_completions()  # due completions beat the cancels
        for job in jobs:
            if job.state is JobState.QUEUED and job.site == self.name:
                job.state = JobState.CANCELLED
                self._client_husks += 1
                n += 1
        for job in jobs:
            if job.state is JobState.RUNNING:
                ev = job.completion_event
                if ev is not None:
                    ev.cancel()
                    job.completion_event = None
                self.running_jobs.pop(job.job_id, None)
                job.state = JobState.CANCELLED
                job.end_time = now
                self._release_core(job.start_time + job.runtime, now)
                self._killed += 1
                freed = True
                n += 1
        if n:
            if freed:
                self._next_due = 0.0  # freed cores may start earlier work
                self._lane_epoch += 1
                self._advance()
            self._ensure_wake()
        return n

    # -- outage hooks ------------------------------------------------------

    def begin_outage(self, rng: np.random.Generator, kill_running: float) -> None:
        """Close the dispatch gate and kill running jobs w.p. ``kill_running``.

        The oracle draws one uniform per running job in start order; here
        client jobs draw first (insertion order), then the anonymous
        background cores — same draw count, i.i.d., law-identical.
        """
        self._advance()
        killed0 = self._killed
        self.dispatch_enabled = False
        if self._wake is not None:
            self._wake.cancel()
            self._wake = None
        for job in list(self.running_jobs.values()):
            if rng.random() < kill_running:
                self.cancel(job)
        now = self.sim._now
        # surviving client ends, to tell client cores from background cores
        client_ends = sorted(
            j.start_time + j.runtime for j in self.running_jobs.values()
        )
        cf = self._core_free
        changed = False
        for k, v in enumerate(cf):
            if v <= now:
                continue
            pos = bisect_left(client_ends, v)
            if pos < len(client_ends) and client_ends[pos] == v:
                client_ends.pop(pos)
                continue
            if rng.random() < kill_running:
                cf[k] = now
                self._killed += 1
                changed = True
        if changed:
            heapify(cf)
        self.jobs_killed += self._killed - killed0

    def end_outage(self) -> None:
        """Reopen the dispatch gate and drain whatever can start now."""
        self.dispatch_enabled = True
        self._dispatch_floor = self.sim._now
        self._next_due = 0.0  # downtime arrivals start the moment we reopen
        self._lane_epoch += 1
        self._advance()
        self._ensure_wake()

    # -- black-hole hooks --------------------------------------------------

    def begin_black_hole(self) -> None:
        """Flip into the attractor state (see the oracle's docstring).

        Reconciles the background lane first, then fails every waiting
        job (client FIFO and arrived-but-unstarted background entries)
        and kills everything running, freeing all cores to *now* — so
        the published wait estimate collapses to zero.  Idempotent.
        """
        if self.black_hole:
            return
        self._advance()
        self.black_hole = True
        if self._wake is not None:
            self._wake.cancel()
            self._wake = None
        now = self.sim._now
        on_fail = self.on_fail
        for job in self._client_q:
            if job.state is not JobState.QUEUED:
                continue
            job.state = JobState.FAILED
            job.end_time = now
            self.jobs_failed_bh += 1
            if on_fail is not None and job.tag != "background":
                on_fail(job)
        self._client_q.clear()
        self._client_husks = 0
        # background arrivals waiting in the lane fail without starting
        j = bisect_right(self._bg_t, now, self._bg_i)
        self.jobs_failed_bh += j - self._bg_i
        self._bg_i = j
        for job in list(self.running_jobs.values()):
            ev = job.completion_event
            if ev is not None:
                ev.cancel()
                job.completion_event = None
            job.state = JobState.FAILED
            job.end_time = now
            self._release_core(job.start_time + job.runtime, now)
            self._killed += 1
            self.jobs_killed += 1
        self.running_jobs.clear()
        # every core still busy now runs background work — kill those too
        cf = self._core_free
        changed = False
        for k, v in enumerate(cf):
            if v > now:
                cf[k] = now
                self._killed += 1
                self.jobs_killed += 1
                changed = True
        if changed:
            heapify(cf)

    def end_black_hole(self) -> None:
        """Resume normal operation; arrivals during the hole stay failed."""
        if not self.black_hole:
            return
        # drain (as failures) anything that arrived inside the hole
        j = bisect_right(self._bg_t, self.sim._now, self._bg_i)
        self.jobs_failed_bh += j - self._bg_i
        self._bg_i = j
        self.black_hole = False
        self._next_due = 0.0
        self._lane_epoch += 1
        if self.dispatch_enabled:
            self._advance()
            self._ensure_wake()

    def _fail_now(self, job: Job) -> None:
        """Instantly fail an arriving client job (black-hole intercept)."""
        now = self.sim._now
        job.state = JobState.FAILED
        job.site = self.name
        job.queue_time = now
        job.end_time = now
        self.jobs_failed_bh += 1
        if self.on_fail is not None and job.tag != "background":
            self.on_fail(job)

    def _fail_batch(self, jobs: list[Job]) -> int:
        """Black-hole path of ``enqueue_many``: every job fails on arrival."""
        n = 0
        for job in jobs:
            if job.state not in (JobState.MATCHING, JobState.CREATED):
                continue
            self._fail_now(job)
            n += 1
        return n

    # -- the vector lane ---------------------------------------------------

    def _advance(self) -> None:
        """Commit every start with start time <= now (reconciliation point).

        Walks the merged FIFO (pending background arrivals + client
        deque) in arrival order, applying the Lindley recurrence.  Client
        commits fire ``on_start`` synchronously, exactly like the
        oracle's ``_try_start``; since callbacks may re-enter (cancel a
        sibling at this very site), all loop state lives on ``self`` and
        locals are refreshed after every callback.

        The next commit instant is fully determined at the end of each
        walk (the head item's start over the settled free-time heap), so
        it is memoised in ``_next_due``: reconciliation points that fall
        before it — the overwhelming majority of telemetry reads and
        client interactions on a busy grid — return after one comparison
        instead of re-binding the whole walk state.
        """
        t = self.sim._now
        ends = self._client_ends
        if ends and ends[0][0] <= t:
            self._drain_completions()
        if self.black_hole:
            # arrivals inside a hole fail instantly, never occupying cores
            j = bisect_right(self._bg_t, t, self._bg_i)
            if j > self._bg_i:
                self.jobs_failed_bh += j - self._bg_i
                self._bg_i = j
            return
        if t < self._next_due or not self.dispatch_enabled:
            return
        floor = self._dispatch_floor
        cf = self._core_free
        bg_t, bg_r = self._bg_t, self._bg_r
        n_bg = len(bg_t)
        cq = self._client_q
        QUEUED = JobState.QUEUED
        while True:
            while cq and cq[0].state is not QUEUED:
                cq.popleft()
                self._client_husks -= 1
            head = cq[0] if cq else None
            ct = head.queue_time if head is not None else 0.0
            i = self._bg_i
            if i < n_bg and (head is None or bg_t[i] <= ct):
                # bulk-commit the background run ahead of the head client
                # on pure locals — background starts never call out, so
                # no re-entrancy can bite, and the per-commit attribute
                # traffic of the one-at-a-time loop disappears
                bt = bg_t[i]
                started = 0
                while True:
                    m = cf[0]
                    if floor > m:
                        m = floor
                    s = bt if bt > m else m
                    if s > t:
                        self._bg_i = i
                        self._started += started
                        self._next_due = s
                        return
                    heapreplace(cf, s + bg_r[i])
                    i += 1
                    started += 1
                    if i >= n_bg:
                        break
                    bt = bg_t[i]
                    if head is not None and bt > ct:
                        break
                self._bg_i = i
                self._started += started
                continue  # the head client may be startable now
            if head is not None:
                s = ct
                m = cf[0]
                if floor > m:
                    m = floor
                if m > s:
                    s = m
                if s > t:
                    self._next_due = s
                    return
                cq.popleft()
                heapreplace(cf, s + head.runtime)
                self._started += 1
                self._start_client(head, s)
                # the callback may have cancelled jobs, advanced the lane
                # re-entrantly, or closed the gate — refresh everything
                if not self.dispatch_enabled:
                    return
                cf = self._core_free
                bg_t, bg_r = self._bg_t, self._bg_r
                n_bg = len(bg_t)
            else:
                self._next_due = float("inf")
                return

    def _start_client(self, job: Job, start: float) -> None:
        job.state = JobState.RUNNING
        job.start_time = start
        # completion is pure bookkeeping (the core release is already in
        # the free-time heap), so no kernel event: the end instant rides
        # the lazy heap, computed with arithmetic identical to the
        # heap entry, and drains at the next reconciliation point
        heappush(self._client_ends, (start + job.runtime, job.job_id, job))
        self.running_jobs[job.job_id] = job
        if self.on_start is not None and job.tag != "background":
            self.on_start(job)

    def _drain_completions(self) -> None:
        """Settle every client completion due at or before now.

        The vectorised-lane twin of the oracle's ``_complete`` event:
        flips due running jobs to ``COMPLETED`` with their exact end
        instant.  Entries whose job was killed mid-run are husks and are
        skipped.  Idempotent and event-free, so it doubles as the
        kernel reconciler that makes post-run state inspection match
        the event oracle.
        """
        ends = self._client_ends
        if not ends:
            return
        now = self.sim._now
        pop_running = self.running_jobs.pop
        RUNNING = JobState.RUNNING
        COMPLETED = JobState.COMPLETED
        while ends and ends[0][0] <= now:
            end, _, job = heappop(ends)
            if job.state is not RUNNING:
                continue  # killed in the meantime — a stale husk
            pop_running(job.job_id, None)
            job.state = COMPLETED
            job.end_time = end

    def _release_core(self, end_value: float, now: float) -> None:
        """Return a running client job's core (its free time becomes now).

        The entry is found by its exact float value: commits write
        ``start + runtime`` into the heap and the completion event with
        the identical arithmetic, so a running client's end value is
        guaranteed present.  A miss means the heap invariant broke —
        fail loudly rather than skew core accounting for the rest of
        the campaign.
        """
        cf = self._core_free
        try:
            idx = cf.index(end_value)
        except ValueError:
            raise RuntimeError(
                f"core-free heap of {self.name!r} lost entry {end_value!r} "
                "for a running client job — site engine invariant broken"
            ) from None
        cf[idx] = now
        heapify(cf)

    # -- the wake ----------------------------------------------------------

    def _ensure_wake(self) -> None:
        """(Re-)aim the single start event at the head client's start time."""
        if not self.dispatch_enabled:
            return  # re-armed by end_outage
        head = None
        for job in self._client_q:
            if job.state is JobState.QUEUED:
                head = job
                break
        w = self._wake
        if head is None:
            if w is not None:
                w.cancel()
                self._wake = None
            return
        if (
            w is not None
            and not w.cancelled
            and head is self._wake_head
            and self._wake_epoch == self._lane_epoch
        ):
            return  # same head, same prediction inputs: the wake holds
        s = self._predict_start(head)
        self._wake_head = head
        self._wake_epoch = self._lane_epoch
        if w is not None:
            if not w.cancelled and w.time == s:
                return
            w.cancel()
        self._wake = self.sim.schedule_at(s, self._on_wake)

    def _predict_start(self, head: Job) -> float:
        """The head client's start instant, given everything ahead of it.

        Runs the same recurrence as :meth:`_advance` on a copy of the
        free-time heap, without committing — commitments beyond the
        current time would be invalidated by cancellations or outages,
        predictions are simply re-made.
        """
        h = self._core_free.copy()
        floor = self._dispatch_floor
        ct = head.queue_time
        bg_t, bg_r = self._bg_t, self._bg_r
        i, n = self._bg_i, len(bg_t)
        while i < n:
            bt = bg_t[i]
            if bt > ct:
                break
            m = h[0]
            if floor > m:
                m = floor
            s = bt if bt > m else m
            heapreplace(h, s + bg_r[i])
            i += 1
        m = h[0]
        if floor > m:
            m = floor
        return ct if ct > m else m

    def _on_wake(self) -> None:
        self._wake = None
        self._advance()
        self._ensure_wake()

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Jobs waiting (arrived, not started), both lanes."""
        self._advance()
        n_bg = bisect_right(self._bg_t, self.sim._now, self._bg_i) - self._bg_i
        return n_bg + len(self._client_q) - self._client_husks

    @property
    def busy_cores(self) -> int:
        """Cores currently executing jobs."""
        self._advance()
        now = self.sim._now
        return sum(1 for v in self._core_free if v > now)

    @property
    def free_cores(self) -> int:
        """Cores currently idle."""
        return self.n_cores - self.busy_cores

    @property
    def jobs_started(self) -> int:
        """Cumulative starts (both lanes), reconciled to now."""
        self._advance()
        return self._started

    @property
    def jobs_completed(self) -> int:
        """Cumulative completions: started minus running minus killed."""
        self._advance()
        now = self.sim._now
        busy = sum(1 for v in self._core_free if v > now)
        return self._started - busy - self._killed

    def estimated_wait(self, mean_runtime_guess: float) -> float:
        """Crude queue-wait estimate the information system publishes."""
        return self.queue_length * mean_runtime_guess / self.n_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VectorCE({self.name}, cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )
