"""Computing elements: batch queue + worker cores of one grid site."""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable

from repro.gridsim.events import Event, Simulator
from repro.gridsim.jobs import Job, JobState

__all__ = ["ComputingElement"]


class ComputingElement:
    """A site's gateway: FIFO batch queue feeding ``n_cores`` workers.

    EGEE sites run heterogeneous batch systems behind a common interface
    (§3.1); a FIFO queue with a fixed core pool captures the queueing
    behaviour that dominates probe latency.  Cancellation is supported
    both in-queue (strategy timeouts) and mid-run (burst copies whose
    sibling started first).
    """

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.name = name
        self.n_cores = int(n_cores)
        self.sim = sim
        self.free_cores = int(n_cores)
        self.queue: deque[Job] = deque()
        #: cancelled jobs still sitting in ``queue`` (lazy removal —
        #: popped and skipped by ``_try_start``, so cancellation is O(1)
        #: instead of an O(n) scan of the deque)
        self._queue_husks = 0
        self.on_start = on_start
        #: jobs currently executing, keyed by job id; each carries its
        #: completion :class:`Event` in ``job.completion_event``
        self.running_jobs: dict[int, Job] = {}
        #: gate used by outage processes: while False, queued jobs do not
        #: start even if cores are free
        self.dispatch_enabled = True
        #: cumulative counters for utilisation diagnostics
        self.jobs_started = 0
        self.jobs_completed = 0

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        """Accept a dispatched job into the batch queue."""
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        job.state = JobState.QUEUED
        job.site = self.name
        self.queue.append(job)
        if self.free_cores > 0 and self.dispatch_enabled:
            self._try_start()

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job; returns ``True`` if it acted.

        Queued jobs are removed from the queue; running jobs are killed
        and their core released (EGEE's ``glite-wms-job-cancel``
        semantics).  Jobs already completed are left untouched.
        """
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False  # queued, but at some other site
            # lazy removal: leave a husk in the deque for _try_start to
            # skip; queue_length discounts it immediately
            job.state = JobState.CANCELLED
            self._queue_husks += 1
            return True
        if job.state is JobState.RUNNING:
            ev = job.completion_event
            if ev is not None:
                ev.cancel()
                job.completion_event = None
            self.running_jobs.pop(job.job_id, None)
            job.state = JobState.CANCELLED
            job.end_time = self.sim.now
            self.free_cores += 1
            if self.dispatch_enabled:
                self._try_start()
            return True
        return False

    # -- internals ---------------------------------------------------------

    def _try_start(self) -> None:
        if not self.dispatch_enabled:
            return
        while self.free_cores > 0 and self.queue:
            job = self.queue.popleft()
            if job.state is not JobState.QUEUED:
                self._queue_husks -= 1
                continue
            self.free_cores -= 1
            job.state = JobState.RUNNING
            job.start_time = self.sim._now
            self.jobs_started += 1
            # partial (not a lambda): completion events must survive the
            # snapshot/clone deep copy, and closures copy as shared refs
            job.completion_event = self.sim.schedule(
                job.runtime, partial(self._complete, job)
            )
            self.running_jobs[job.job_id] = job
            # background jobs never have start watchers; skipping the
            # notification call for them halves the per-start overhead
            # on saturated grids
            if self.on_start is not None and job.tag != "background":
                self.on_start(job)

    def _complete(self, job: Job) -> None:
        job.completion_event = None
        self.running_jobs.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            return  # killed in the meantime
        job.state = JobState.COMPLETED
        job.end_time = self.sim._now
        self.jobs_completed += 1
        self.free_cores += 1
        if self.queue and self.dispatch_enabled:
            self._try_start()

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not running)."""
        return len(self.queue) - self._queue_husks

    @property
    def busy_cores(self) -> int:
        """Cores currently executing jobs."""
        return self.n_cores - self.free_cores

    def estimated_wait(self, mean_runtime_guess: float) -> float:
        """Crude queue-wait estimate the information system publishes.

        ``queue_length · mean_runtime / cores`` — deliberately naive, as
        real grid information systems publish coarse summaries.
        """
        return self.queue_length * mean_runtime_guess / self.n_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CE({self.name}, cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )
