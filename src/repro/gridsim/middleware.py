"""Client-side middleware resilience: retries, breakers, failover.

PR 6 made the *sites* unreliable; this module makes the *middleware*
unreliable and gives clients the machinery real production stacks grew
in response (DIRAC-style failover submission):

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  seeded jitter and a per-attempt submit timeout, bounding how long a
  client chases one copy through a broken submission path;
* :class:`CircuitBreaker` — per-broker closed → open → half-open
  breaker on consecutive submit failures, so clients stop hammering a
  downed broker and fail over to its siblings;
* :class:`MiddlewareDomain` — the per-grid controller wired in by
  :class:`~repro.gridsim.grid.GridSimulator` when any middleware fault
  feature is configured.  It owns the broker choice (round-robin →
  breaker-driven failover), the submission-path fault draws
  (:class:`~repro.gridsim.faults.SubmitFaultConfig`, including the
  at-least-once lost-ack duplicates), the retry timers, and all
  per-broker telemetry.

Grids that configure none of this never construct a domain: every
submission takes exactly the historical code path, byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

from repro.gridsim.faults import SubmitFaultConfig
from repro.gridsim.jobs import Job, JobState
from repro.util.validation import (
    check_int_at_least,
    check_nonnegative,
    check_positive,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gridsim.grid import GridSimulator

__all__ = ["CircuitBreaker", "MiddlewareDomain", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side submit retry/failover policy.

    Attributes
    ----------
    max_attempts:
        Total submit attempts per logical copy (1 = no retries).
    backoff_base, backoff_factor, backoff_max:
        Capped exponential backoff before attempt ``k``:
        ``min(base · factor^(k-1), backoff_max)`` seconds.
    jitter:
        Multiplicative jitter fraction: each backoff is scaled by a
        uniform draw from ``[1-jitter, 1+jitter]`` taken from the grid's
        dedicated jitter stream — deterministic given the grid seed, so
        chaos runs replay exactly.
    submit_timeout:
        How long the client waits for a submit acknowledgement before
        treating the attempt as failed (the only way it ever learns a
        black-holed broker swallowed the call).
    breaker_threshold:
        Consecutive observed submit failures that trip a broker's
        circuit breaker open.
    breaker_reset:
        Seconds an open breaker waits before letting one half-open
        trial attempt through.
    """

    max_attempts: int = 4
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_max: float = 600.0
    jitter: float = 0.25
    submit_timeout: float = 120.0
    breaker_threshold: int = 3
    breaker_reset: float = 1_800.0

    def __post_init__(self) -> None:
        check_int_at_least("max_attempts", self.max_attempts, 1)
        check_nonnegative("backoff_base", self.backoff_base)
        if not self.backoff_factor >= 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        check_nonnegative("backoff_max", self.backoff_max)
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(
                f"jitter must be in [0, 1), got {self.jitter!r}"
            )
        check_positive("submit_timeout", self.submit_timeout)
        check_int_at_least("breaker_threshold", self.breaker_threshold, 1)
        check_positive("breaker_reset", self.breaker_reset)


class CircuitBreaker:
    """Per-broker breaker: closed → open → half-open on submit failures.

    Closed counts consecutive failures; at ``threshold`` it opens and
    :meth:`allow` refuses traffic for ``reset_timeout`` seconds.  After
    the cooldown one half-open trial is let through: a success closes
    the breaker, a failure re-opens it (another full cooldown, another
    trip on the counter).
    """

    __slots__ = ("threshold", "reset_timeout", "failures", "opened_at", "trips")

    def __init__(self, threshold: int, reset_timeout: float) -> None:
        self.threshold = threshold
        self.reset_timeout = reset_timeout
        self.failures = 0
        #: time the breaker last opened (None = closed)
        self.opened_at: float | None = None
        #: transitions into the open state (telemetry)
        self.trips = 0

    @property
    def state(self) -> str:
        """``"closed"`` or ``"open"`` (half-open is transient: it exists
        only inside the :meth:`allow` call that admits the trial)."""
        return "closed" if self.opened_at is None else "open"

    def allow(self, now: float) -> bool:
        """May a submit attempt go to this broker right now?"""
        opened = self.opened_at
        if opened is None:
            return True
        # half-open: one trial per cooldown window.  Re-arm the window
        # immediately so concurrent clients don't all pile onto the
        # trial; the trial's own outcome closes or re-opens the breaker
        if now - opened >= self.reset_timeout:
            self.opened_at = now
            return True
        return False

    def record_failure(self, now: float) -> None:
        """Count an observed submit failure (may trip the breaker)."""
        self.failures += 1
        if self.opened_at is not None:
            # a failed half-open trial: re-open for a fresh cooldown
            self.opened_at = now
            self.trips += 1
        elif self.failures >= self.threshold:
            self.opened_at = now
            self.trips += 1

    def record_success(self) -> None:
        """An accepted submit: reset the failure run, close the breaker."""
        self.failures = 0
        self.opened_at = None


#: telemetry keys of one broker's stats dict (order = report order)
_STAT_KEYS = ("submits", "rejects", "black_holed", "failovers")


class MiddlewareDomain:
    """The grid's middleware fault domain controller.

    Built by :class:`~repro.gridsim.grid.GridSimulator` only when broker
    outages, submission-path faults or a retry policy are configured;
    ``GridSimulator.submit`` delegates here in that case.  Zero-fault
    configs never construct one, so the historical submit path stays
    untouched.
    """

    def __init__(
        self,
        grid: "GridSimulator",
        *,
        retry: RetryPolicy | None,
        faults: SubmitFaultConfig | None,
        chaos_rng=None,
        jitter_rng=None,
    ) -> None:
        self.grid = grid
        self.retry = retry
        self.faults = faults
        self._chaos_rng = chaos_rng
        self._jitter_rng = jitter_rng
        #: per-broker counters, aligned with ``grid.brokers``; the
        #: Counter objects live in the grid's MetricsRegistry, so
        #: ``mw.<broker>.<key>`` reads there see the same cells the hot
        #: path increments — one set of books, not two
        reg = grid.metrics
        self.stats = [
            {
                key: reg.counter(f"mw.{getattr(b, 'name', str(i))}.{key}")
                for key in _STAT_KEYS
            }
            for i, b in enumerate(grid.brokers)
        ]
        #: per-broker breakers (empty without a retry policy — failover
        #: is meaningless for a client that never retries)
        self.breakers = (
            [
                CircuitBreaker(retry.breaker_threshold, retry.breaker_reset)
                for _ in grid.brokers
            ]
            if retry is not None
            else []
        )
        #: at-least-once duplicates minted (lost-ack ghosts that landed)
        self.duplicates = 0

    # -- submission ------------------------------------------------------

    def submit(self, job: Job, on_start, via, task) -> Job:
        """The resilient counterpart of ``GridSimulator.submit``."""
        grid = self.grid
        job.submit_time = grid.sim.now
        grid.jobs_submitted += 1
        if task is not None:
            task.client_attempts += 1
            tr = grid._tr
            if tr is not None:
                tr.submit(task, job)
        self._attempt(job, on_start, via, task, 0)
        return job

    def _preferred(self, via) -> int:
        """Index of the broker this attempt would normally route to."""
        grid = self.grid
        broker = grid.broker_for(via)
        brokers = grid.brokers
        return 0 if len(brokers) == 1 else brokers.index(broker)

    def _choose(self, pref: int, now: float) -> int:
        """Apply breaker-driven failover to the preferred broker."""
        breakers = self.breakers
        if not breakers or breakers[pref].allow(now):
            return pref
        n = len(breakers)
        for k in range(1, n):
            i = (pref + k) % n
            if breakers[i].allow(now):
                self.stats[i]["failovers"].inc()
                return i
        # every breaker open: hammer the preferred one anyway (there is
        # nowhere better, and the attempt doubles as a half-open trial)
        return pref

    def _attempt(self, job: Job, on_start, via, task, attempt: int) -> None:
        grid = self.grid
        idx = self._choose(self._preferred(via), grid.sim.now)
        stats = self.stats[idx]
        stats["submits"].inc()
        broker = grid.brokers[idx]
        tr = grid._tr
        if tr is not None:
            tr.hop(job, broker)
        if not broker.accepting:
            if broker.outage_mode == "black-hole":
                # the broker swallowed the call; the client only learns
                # at its own submit timeout (if it has one)
                stats["black_holed"].inc()
                policy = self.retry
                if policy is None or task is None:
                    job.state = JobState.LOST
                    if tr is not None:
                        tr.fail(job, "lost")
                    return
                task.retry_pending += 1
                task.arm(
                    policy.submit_timeout,
                    partial(self._ack_timeout, job, on_start, via, task, idx, attempt),
                )
                return
            # synchronous rejection
            stats["rejects"].inc()
            self._failed(job, on_start, via, task, idx, attempt)
            return
        f = self.faults
        if (
            f is not None
            and f.p_fail > 0.0
            and self._chaos_rng.random() < f.p_fail
        ):
            stats["rejects"].inc()
            if f.p_landed > 0.0 and self._chaos_rng.random() < f.p_landed:
                self._landed(job, on_start, via, task, idx, attempt, broker)
            else:
                self._failed(job, on_start, via, task, idx, attempt)
            return
        # clean accept: the historical fault channels + dispatch
        if self.breakers:
            self.breakers[idx].record_success()
        grid._submit_plain(job, on_start, broker)

    # -- failure handling ------------------------------------------------

    def _failed(self, job: Job, on_start, via, task, idx: int, attempt: int) -> None:
        """A client-visible submit failure: back off and retry, or give up."""
        grid = self.grid
        if self.breakers:
            self.breakers[idx].record_failure(grid.sim.now)
        policy = self.retry
        tr = grid._tr
        if policy is None or task is None or attempt + 1 >= policy.max_attempts:
            job.state = JobState.LOST
            if tr is not None:
                tr.fail(job, "lost")
            return
        delay = min(
            policy.backoff_base * policy.backoff_factor**attempt,
            policy.backoff_max,
        )
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        task.retry_pending += 1
        if tr is not None:
            tr.retry(job, attempt + 1, delay)
        task.arm(delay, partial(self._retry, job, on_start, via, task, attempt + 1))

    def _retry(self, job: Job, on_start, via, task, attempt: int) -> None:
        task.retry_pending -= 1
        # the task may have settled (a sibling started) or the strategy's
        # own timeout may have cancelled this copy while the backoff ran
        if task.done or job.state is not JobState.CREATED:
            return
        grid = self.grid
        grid.jobs_submitted += 1
        task.client_attempts += 1
        job.submit_time = grid.sim.now
        tr = grid._tr
        if tr is not None:
            tr.submit(task, job)
        self._attempt(job, on_start, via, task, attempt)

    def _ack_timeout(self, job: Job, on_start, via, task, idx: int, attempt: int) -> None:
        """The submit timeout fired on a black-holed attempt."""
        task.retry_pending -= 1
        if task.done or job.state is not JobState.CREATED:
            return
        self._failed(job, on_start, via, task, idx, attempt)

    def _landed(self, job: Job, on_start, via, task, idx: int, attempt: int, broker) -> None:
        """A failed attempt whose job actually reached the broker.

        The landed copy keeps going through the normal accept path.  A
        client without retry machinery just saw a spurious error —
        behaviourally a clean accept.  A retrying client mints a fresh
        sibling copy and retries *that*, so both copies are now live:
        the landed one becomes an at-least-once duplicate the task's
        sibling-cancel must reconcile.
        """
        grid = self.grid
        policy = self.retry
        if policy is None or task is None:
            grid._submit_plain(job, on_start, broker)
            return
        if self.breakers:
            # the client observed a failure, whatever actually happened
            self.breakers[idx].record_failure(grid.sim.now)
        job.duplicate = True
        self.duplicates += 1
        tr = grid._tr
        if tr is not None:
            tr.dup(job)
        grid._submit_plain(job, on_start, broker)
        retry_job = Job(runtime=job.runtime, tag=job.tag, vo=job.vo)
        task.jobs_used += 1
        task.active_jobs.append(retry_job)
        if tr is not None:
            tr.adopt(task, retry_job)
        if grid.task_ledger is not None:
            grid.task_ledger.append((task, retry_job))
        agent = grid._agent
        if agent is not None:
            agent.watch(task, retry_job)
        if attempt + 1 >= policy.max_attempts:
            # out of budget: the fresh copy dies unsubmitted, but the
            # landed ghost is still in flight and can win the task
            retry_job.state = JobState.LOST
            if tr is not None:
                tr.fail(retry_job, "lost")
            return
        delay = min(
            policy.backoff_base * policy.backoff_factor**attempt,
            policy.backoff_max,
        )
        if policy.jitter > 0.0:
            delay *= 1.0 + policy.jitter * (
                2.0 * self._jitter_rng.random() - 1.0
            )
        task.retry_pending += 1
        if tr is not None:
            tr.retry(retry_job, attempt + 1, delay)
        task.arm(delay, partial(self._retry, retry_job, on_start, via, task, attempt + 1))

    # -- telemetry -------------------------------------------------------

    def totals(self) -> dict:
        """Cross-broker counter totals (cheap; the monitor samples this).

        Plain-int view over the registry counters the submission path
        increments in place.
        """
        out = dict.fromkeys(_STAT_KEYS, 0)
        for stats in self.stats:
            for k in _STAT_KEYS:
                out[k] += stats[k].value
        out["breaker_trips"] = sum(b.trips for b in self.breakers)
        out["duplicates"] = self.duplicates
        return out

    def report(self) -> dict:
        """Per-broker telemetry keyed by broker name."""
        grid = self.grid
        out = {}
        for i, broker in enumerate(grid.brokers):
            entry = {k: self.stats[i][k].value for k in _STAT_KEYS}
            entry["outages"] = broker.outages_started
            if self.breakers:
                entry["breaker_trips"] = self.breakers[i].trips
                entry["breaker_state"] = self.breakers[i].state
            out[getattr(broker, "name", str(i))] = entry
        return out
