"""Trace replay: real SWF/GWF workloads as the background stream.

The synthetic :class:`~repro.gridsim.background.BackgroundLoad` keeps a
site near a target utilisation with Poisson arrivals; this bridge
instead *replays* a recorded production workload — the Parallel
Workloads Archive (SWF) or Grid Workloads Archive (GWF) traces the
paper's related work mines — through the very same site lanes:

* on a :class:`~repro.gridsim.site.VectorComputingElement` (or its
  fair-share flavour) the replayed arrivals flow through the chunked
  array lane — zero events, zero Job objects per replayed job;
* on the event oracle each arrival becomes a background
  :class:`~repro.gridsim.jobs.Job`, so the replay is engine-equivalent
  and testable against the Lindley lane.

``tests/test_replay.py`` round-trips the bundled toy trace through
parse → replay → telemetry on both engines.
"""

from __future__ import annotations

from collections import deque
from itertools import repeat
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.gridsim.background import DEFAULT_CHUNK
from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job
from repro.traces.gwf import read_gwf_workload
from repro.traces.swf import read_swf_workload
from repro.util.validation import check_positive

__all__ = ["TraceReplayLoad", "replay_arrays_from_trace"]


def replay_arrays_from_trace(
    source: str | Path,
    fmt: str | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(arrivals, runtimes)`` of an SWF/GWF trace file, replay-ready.

    ``fmt`` is ``"swf"``, ``"gwf"`` or ``None`` to infer: first from the
    file extension, otherwise from the comment convention of the first
    non-blank line (``;`` opens SWF headers, ``#`` GWF ones; a bare data
    row parses identically either way, so SWF is assumed).
    """
    path = Path(source)
    if fmt is None:
        suffix = path.suffix.lower().lstrip(".")
        if suffix in ("swf", "gwf"):
            fmt = suffix
        else:
            with open(path, "r", encoding="utf-8") as fh:
                for line in fh:
                    stripped = line.strip()
                    if stripped:
                        fmt = "gwf" if stripped.startswith("#") else "swf"
                        break
                else:
                    raise ValueError(f"{path}: empty trace file")
    if fmt == "swf":
        return read_swf_workload(path)
    if fmt == "gwf":
        return read_gwf_workload(path)
    raise ValueError(f"unknown trace format {fmt!r}; expected 'swf' or 'gwf'")


class TraceReplayLoad:
    """Replays a fixed (arrival, runtime) workload into one site.

    Drop-in alternative to
    :class:`~repro.gridsim.background.BackgroundLoad`: same ``start()``
    entry point, same chunked delivery (one refill event per
    ``chunk_size`` arrivals), but the stream is the recorded trace —
    shifted so its first arrival lands ``offset`` seconds after
    ``start()`` — instead of drawn randomness.  Time and runtime scaling
    let a trace recorded on a bigger machine be squeezed onto a small
    simulated site.

    Parameters
    ----------
    site:
        The computing element to feed (either engine, fair-share or
        plain).
    sim:
        The simulator driving the site.
    arrivals, runtimes:
        The workload (seconds); arrivals need not start at zero but must
        be sorted after the rebase.
    time_scale:
        Multiplier applied to inter-arrival times (0.5 = replay twice as
        fast).
    runtime_scale:
        Multiplier applied to runtimes.
    vo:
        Optional VO label for every replayed job (fair-share sites
        account the replay to that VO; plain sites ignore it).
    offset:
        Delay (s) between ``start()`` and the first arrival.
    """

    def __init__(
        self,
        site,
        sim: Simulator,
        arrivals: Sequence[float] | np.ndarray,
        runtimes: Sequence[float] | np.ndarray,
        *,
        time_scale: float = 1.0,
        runtime_scale: float = 1.0,
        vo: str = "",
        offset: float = 0.0,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> None:
        arr = np.asarray(arrivals, dtype=np.float64)
        run = np.asarray(runtimes, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("replay needs at least one arrival")
        if arr.shape != run.shape:
            raise ValueError(
                f"{arr.size} arrivals but {run.size} runtimes"
            )
        if (np.diff(arr) < 0.0).any():
            raise ValueError("arrivals must be sorted ascending")
        if (run <= 0.0).any():
            raise ValueError("runtimes must be > 0")
        check_positive("time_scale", time_scale)
        check_positive("runtime_scale", runtime_scale)
        if offset < 0.0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.site = site
        self.sim = sim
        self.vo = vo
        self.chunk_size = int(chunk_size)
        self._arr = (arr - arr[0]) * float(time_scale) + float(offset)
        self._run = run * float(runtime_scale)
        self._cursor = 0
        self._base = 0.0
        self._bulk = hasattr(site, "feed_background")
        self._vo_idx = getattr(
            getattr(site, "fairshare", None), "index_of", lambda _n: 0
        )(vo)
        self._runtimes: deque[float] = deque()
        self._started = False

    @property
    def jobs_total(self) -> int:
        """Number of jobs the trace will replay."""
        return int(self._arr.size)

    @property
    def jobs_generated(self) -> int:
        """Replayed arrivals whose arrival time has passed.

        Counted against the replay's own stream (a site may carry a
        synthetic :class:`BackgroundLoad` besides the replay, so the
        site-level delivered counter would alias the two).
        """
        if self._bulk:
            reached = self.sim.now - self._base
            return int(
                np.searchsorted(self._arr[: self._cursor], reached, side="right")
            )
        return self._cursor - len(self._runtimes)

    @property
    def exhausted(self) -> bool:
        """True once every trace job has been handed to the site."""
        return self._cursor >= self._arr.size

    def start(self) -> None:
        """Begin the replay (call once); arrivals are rebased to now."""
        if self._started:
            raise RuntimeError("replay already started")
        self._started = True
        self._base = self.sim.now
        self._refill()

    def _refill(self) -> None:
        lo = self._cursor
        hi = min(lo + self.chunk_size, self._arr.size)
        times = (self._base + self._arr[lo:hi]).tolist()
        runtimes = self._run[lo:hi].tolist()
        self._cursor = hi
        if self._bulk:
            if self._vo_idx:
                self.site.feed_background(
                    times, runtimes, [self._vo_idx] * len(times)
                )
            else:
                self.site.feed_background(times, runtimes)
        else:
            self._runtimes.extend(runtimes)
            self.sim.schedule_many(times, repeat(self._deliver))
        if hi < self._arr.size:
            self.sim.schedule_at(times[-1], self._refill)

    def _deliver(self) -> None:
        job = Job(runtime=self._runtimes.popleft(), tag="background", vo=self.vo)
        job.submit_time = self.sim._now
        self.site.enqueue(job)
