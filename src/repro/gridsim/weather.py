"""Grid weather: correlated outage storms, black-hole sites, self-healing.

Independent per-site renewal outages (:mod:`repro.gridsim.outages`)
miss the two failure regimes that actually shape production-grid
workloads ("Mining the Workload of Real Grid Computing Systems"):

* **storms** — correlated multi-site outages (a shared service, a
  network segment, a power event takes a random subset of sites down
  *together*), modelled here as a Poisson storm process
  (:class:`StormProcess`);
* **black holes** — sites whose CE accepts jobs and instantly
  "completes" them as failures, so their published queue estimate is
  permanently the best on the grid and match-making keeps feeding them
  (:class:`BlackHoleConfig`, executed by the site engines'
  ``begin_black_hole`` / ``end_black_hole`` hooks).

The counterpart is the middleware's answer: a service-side
:class:`ResubmissionAgent` (modelled on the resubmit daemons of grid
analysis environments — see "Resource Management Services for a Grid
Analysis Environment") that periodically sweeps for failed-and-missing
work and resubmits it under a retry budget with exponential backoff, as
a *system* policy composable with the paper's *user-side* strategies.

All configs validate eagerly in ``__post_init__`` so a bad campaign
dies at construction, not three simulated days in.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from repro.gridsim.jobs import JobState
from repro.util.validation import (
    check_int_at_least,
    check_nonnegative,
    check_positive,
    check_probability,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.gridsim.events import Simulator

__all__ = [
    "OutageConfig",
    "StormConfig",
    "BlackHoleConfig",
    "BrokerOutageConfig",
    "WeatherConfig",
    "StormProcess",
    "ResubmitConfig",
    "ResubmissionAgent",
]

#: how a downed broker treats submissions (see ``WorkloadManager.begin_outage``)
_BROKER_MODES = ("reject", "black-hole")


@dataclass(frozen=True)
class OutageConfig:
    """Independent per-site renewal outages, applied to every site.

    The declarative form of wiring one
    :class:`~repro.gridsim.outages.OutageProcess` per site by hand —
    each site gets its own RNG stream and its own up/down renewal.
    """

    #: mean up period between outages (s, exponential)
    mean_uptime: float = 86_400.0
    #: mean outage duration (s, exponential)
    mean_downtime: float = 3_600.0
    #: probability each running job is killed when the site goes down
    kill_running: float = 0.0

    def __post_init__(self) -> None:
        check_positive("mean_uptime", self.mean_uptime)
        check_positive("mean_downtime", self.mean_downtime)
        check_probability("kill_running", self.kill_running)


@dataclass(frozen=True)
class StormConfig:
    """Correlated multi-site outage storms (shared Poisson process)."""

    #: mean time between storms (s, exponential)
    mean_interval: float = 86_400.0
    #: mean storm duration (s, exponential, shared by the hit subset)
    mean_duration: float = 7_200.0
    #: sites taken down together per storm
    subset_size: int = 2
    #: probability each running job on a hit site is killed
    kill_running: float = 0.0
    #: probability the storm also downs one random federated broker for
    #: its duration (middleware and site share the failure cause — a
    #: network segment, a machine room).  0 consumes no extra draws, so
    #: site-only storm configs keep their RNG streams byte-identical.
    broker_prob: float = 0.0
    #: outage mode of a storm-hit broker
    broker_mode: str = "reject"

    def __post_init__(self) -> None:
        check_positive("mean_interval", self.mean_interval)
        check_positive("mean_duration", self.mean_duration)
        check_int_at_least("subset_size", self.subset_size, 1)
        check_probability("kill_running", self.kill_running)
        check_probability("broker_prob", self.broker_prob)
        if self.broker_mode not in _BROKER_MODES:
            raise ValueError(
                f"unknown broker_mode {self.broker_mode!r}; "
                f"available: {', '.join(_BROKER_MODES)}"
            )


@dataclass(frozen=True)
class BlackHoleConfig:
    """A deterministic black-hole window at one named site.

    Deterministic on purpose: the attractor dynamics (traffic piling
    into the hole) are what the experiments measure, so the hole itself
    consumes no randomness and stays bit-identical across engines.
    """

    #: name of the site that turns into a black hole
    site: str
    #: instant the hole opens (virtual seconds)
    start: float = 0.0
    #: how long it lasts; ``inf`` = never recovers
    duration: float = float("inf")

    def __post_init__(self) -> None:
        if not isinstance(self.site, str) or not self.site:
            raise ValueError(
                f"black-hole site must be a non-empty string, got {self.site!r}"
            )
        check_nonnegative("start", self.start)
        if not self.duration > 0.0:  # inf allowed
            raise ValueError(
                f"duration must be > 0, got {self.duration!r}"
            )


@dataclass(frozen=True)
class BrokerOutageConfig:
    """A scheduled outage window at one named federated broker.

    Deterministic like :class:`BlackHoleConfig` — what the experiments
    measure is how clients and failover react, so the outage itself
    consumes no randomness and stays bit-identical across engines.
    """

    #: name of the broker that goes down
    broker: str
    #: instant the broker goes down (virtual seconds)
    start: float = 0.0
    #: how long it stays down; ``inf`` = never recovers
    duration: float = 3_600.0
    #: ``"reject"`` fails submissions synchronously, ``"black-hole"``
    #: swallows them (the client learns only from its submit timeout)
    mode: str = "reject"

    def __post_init__(self) -> None:
        if not isinstance(self.broker, str) or not self.broker:
            raise ValueError(
                f"broker must be a non-empty broker name, got {self.broker!r}"
            )
        check_nonnegative("start", self.start)
        if not self.duration > 0.0:  # inf allowed
            raise ValueError(
                f"duration must be > 0, got {self.duration!r}"
            )
        if self.mode not in _BROKER_MODES:
            raise ValueError(
                f"unknown mode {self.mode!r}; "
                f"available: {', '.join(_BROKER_MODES)}"
            )


@dataclass(frozen=True)
class WeatherConfig:
    """The grid's weather regime: any mix of the four processes."""

    #: independent per-site renewal outages (None = calm)
    site_outages: OutageConfig | None = None
    #: correlated storm process (None = no storms)
    storm: StormConfig | None = None
    #: scheduled black-hole windows
    black_holes: tuple[BlackHoleConfig, ...] = ()
    #: scheduled broker outage windows (middleware fault domain)
    broker_outages: tuple[BrokerOutageConfig, ...] = ()

    def __post_init__(self) -> None:
        if self.site_outages is not None and not isinstance(
            self.site_outages, OutageConfig
        ):
            raise TypeError(
                "site_outages must be an OutageConfig, "
                f"got {type(self.site_outages).__name__}"
            )
        if self.storm is not None and not isinstance(self.storm, StormConfig):
            raise TypeError(
                f"storm must be a StormConfig, got {type(self.storm).__name__}"
            )
        object.__setattr__(self, "black_holes", tuple(self.black_holes))
        for bh in self.black_holes:
            if not isinstance(bh, BlackHoleConfig):
                raise TypeError(
                    "black_holes entries must be BlackHoleConfig, "
                    f"got {type(bh).__name__}"
                )
        object.__setattr__(self, "broker_outages", tuple(self.broker_outages))
        for bo in self.broker_outages:
            if not isinstance(bo, BrokerOutageConfig):
                raise TypeError(
                    "broker_outages entries must be BrokerOutageConfig, "
                    f"got {type(bo).__name__}"
                )


class StormProcess:
    """Shared Poisson storm process downing random site subsets together.

    Each storm hits ``subset_size`` distinct sites drawn without
    replacement (sorted, so the order of ``begin_outage`` calls — and
    therefore kill-draw consumption — is deterministic given the
    choice); sites already down ride the storm out unaffected.  The
    whole subset recovers together after one shared exponential
    duration, mirroring the shared-cause semantics (one broken service,
    one fix).
    """

    def __init__(
        self,
        sites: list,
        sim: "Simulator",
        rng: np.random.Generator,
        config: StormConfig,
        brokers: list | None = None,
    ) -> None:
        if config.subset_size > len(sites):
            raise ValueError(
                f"storm subset_size={config.subset_size} exceeds the "
                f"{len(sites)} configured site(s)"
            )
        if config.broker_prob > 0.0 and not brokers:
            raise ValueError(
                "storm broker_prob > 0 needs federated brokers to hit"
            )
        self.sites = sites
        self.sim = sim
        self.rng = rng
        self.config = config
        self.brokers = brokers or []
        self.storms_started = 0
        #: individual site-down events across all storms
        self.outages_started = 0
        #: broker-down events across all storms
        self.broker_outages_started = 0

    def start(self) -> None:
        """Schedule the first storm."""
        self.sim.schedule(
            self.rng.exponential(self.config.mean_interval), self._storm
        )

    def _storm(self) -> None:
        cfg = self.config
        n = len(self.sites)
        picks = sorted(self.rng.choice(n, size=cfg.subset_size, replace=False))
        duration = self.rng.exponential(cfg.mean_duration)
        self.storms_started += 1
        hit = []
        for k in picks:
            site = self.sites[k]
            if not site.dispatch_enabled:
                continue  # already down: the storm changes nothing for it
            site.begin_outage(self.rng, cfg.kill_running)
            self.outages_started += 1
            hit.append(site)
        if hit:
            self.sim.schedule(duration, partial(self._recover, hit))
        # the broker draws come strictly *after* the site draws, so
        # site-only storms (broker_prob == 0) consume exactly the
        # historical stream — and skip the branch entirely
        if cfg.broker_prob > 0.0 and self.rng.random() < cfg.broker_prob:
            broker = self.brokers[int(self.rng.integers(len(self.brokers)))]
            if broker.accepting:  # already-down brokers ride it out
                broker.begin_outage(cfg.broker_mode)
                self.broker_outages_started += 1
                self.sim.schedule(duration, partial(self._recover_broker, broker))
        # the next storm clock runs from the storm *start* (Poisson
        # arrivals are oblivious to how long the damage lasts)
        self.sim.schedule(self.rng.exponential(cfg.mean_interval), self._storm)

    def _recover(self, hit: list) -> None:
        for site in hit:
            if not site.dispatch_enabled:
                site.end_outage()

    def _recover_broker(self, broker) -> None:
        if not broker.accepting:
            broker.end_outage()


@dataclass(frozen=True)
class ResubmitConfig:
    """Retry budget and backoff of the self-healing resubmission agent."""

    #: seconds between monitoring sweeps
    period: float = 300.0
    #: system-side resubmissions allowed per task
    max_retries: int = 3
    #: backoff before the first resubmission (s)
    backoff_base: float = 60.0
    #: multiplier applied per successive resubmission of the same task
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        check_int_at_least("max_retries", self.max_retries, 0)
        check_nonnegative("backoff_base", self.backoff_base)
        if not self.backoff_factor >= 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )


#: job states the agent treats as dead-and-gone (resubmission candidates)
_DEAD = (JobState.LOST, JobState.STUCK, JobState.FAILED)


class ResubmissionAgent:
    """Service-side monitor that resubmits failed-and-missing work.

    Strategy executors register every ``(task, job)`` pair they submit
    (:meth:`watch`); each sweep drops finished tasks, finds watched jobs
    that died without their task completing, and — if the task still has
    retry budget — schedules one system-side resubmission after an
    exponential backoff.  The agent is a *system* policy: it composes
    with (and is invisible to) the paper's user-side strategies, which
    keep their own timeouts and their own resubmission logic.
    """

    #: task-lifecycle recorder (grid-assigned on traced runs)
    _tr = None

    def __init__(self, sim: "Simulator", config: ResubmitConfig) -> None:
        self.sim = sim
        self.config = config
        #: live watch list of (task, job) pairs
        self._watch: list = []
        #: dead jobs noticed across all sweeps
        self.detected = 0
        #: system-side resubmissions performed
        self.resubmissions = 0

    def start(self) -> None:
        """Begin the periodic monitoring sweeps."""
        self.sim.schedule(self.config.period, self._sweep)

    def watch(self, task, job) -> None:
        """Register a submitted job for monitoring on behalf of ``task``."""
        self._watch.append((task, job))

    def _sweep(self) -> None:
        cfg = self.config
        live = []
        for task, job in self._watch:
            if task.done:
                continue  # the task made it; stop watching all its jobs
            if job.state in _DEAD:
                if getattr(task, "retry_pending", 0):
                    # the client's own retry policy is mid-flight on this
                    # task: rescuing now would double-submit.  Keep
                    # watching — if the client gives up, a later sweep
                    # still finds the dead job.  (getattr: duck-typed
                    # tasks without the middleware counters never defer)
                    live.append((task, job))
                    continue
                self.detected += 1
                if task.agent_retries < cfg.max_retries:
                    delay = cfg.backoff_base * (
                        cfg.backoff_factor**task.agent_retries
                    )
                    task.agent_retries += 1
                    self.sim.schedule(delay, partial(self._resubmit, task))
                continue  # dead jobs leave the watch list either way
            live.append((task, job))
        self._watch = live
        self.sim.schedule(cfg.period, self._sweep)

    def _resubmit(self, task) -> None:
        if task.done:
            return  # a sibling copy started while the backoff ran
        self.resubmissions += 1
        if self._tr is not None:
            self._tr.rescue(task)
        # submit_copy registers the new job with this agent again
        task.submit_copy()
