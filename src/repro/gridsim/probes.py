"""The paper's probe measurement protocol on the simulated grid (§3.2).

A constant number of probe slots is maintained: each slot submits a probe
job (near-null runtime), waits until it starts or hits the measurement
timeout (10,000 s — then cancels it and counts an outlier), and
immediately submits the next probe.  The output is a
:class:`~repro.traces.TraceSet`, so the whole modeling pipeline (ECDF →
strategy optimisation) runs unchanged on simulated data.

Each slot is a slotted :class:`~repro.gridsim.client.TaskCore` subclass,
so probes share the strategy executors' lifecycle bookkeeping — pooled
timeout timers under the batched WMS engine, exact heap timers under the
event oracle — instead of carrying their own closure-based state.
"""

from __future__ import annotations

import numpy as np

from repro.gridsim.client import TaskCore
from repro.gridsim.grid import GridSimulator
from repro.gridsim.jobs import Job
from repro.traces.dataset import TraceSet
from repro.traces.records import PROBE_TIMEOUT
from repro.util.validation import check_positive

__all__ = ["ProbeExperiment"]


class _ProbeSlot(TaskCore):
    """One slot's current probe: a single copy plus its timeout timer."""

    __slots__ = ("exp",)

    tag = "probe"
    trace_label = "probe"

    def __init__(self, exp: "ProbeExperiment") -> None:
        super().__init__(exp.grid, exp.probe_runtime)
        self.exp = exp
        self.submit_copy()
        self.arm(exp.timeout, self._timeout)

    def finished(self, winner: Job) -> None:
        exp = self.exp
        exp._record(self.t_start, winner.start_time - self.t_start, 0)
        # §3.2: "a new probe was submitted each time another one
        # completed" — schedule the next probe after the (near-null)
        # payload finishes
        self.grid.sim.schedule(exp.probe_runtime, exp._launch_probe)

    def _timeout(self) -> None:
        if self.done:
            return
        self.expire()
        self.exp._record(self.t_start, float("inf"), 1)
        self.exp._launch_probe()


class ProbeExperiment:
    """Constant-in-flight probe measurement campaign."""

    def __init__(
        self,
        grid: GridSimulator,
        *,
        n_slots: int = 20,
        timeout: float = PROBE_TIMEOUT,
        probe_runtime: float = 1.0,
    ) -> None:
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        check_positive("timeout", timeout)
        check_positive("probe_runtime", probe_runtime)
        self.grid = grid
        self.n_slots = int(n_slots)
        self.timeout = timeout
        self.probe_runtime = probe_runtime
        self._submit_times: list[float] = []
        self._latencies: list[float] = []
        self._codes: list[int] = []
        self._deadline = 0.0

    def run(self, duration: float, *, name: str = "gridsim-probes") -> TraceSet:
        """Run the campaign for ``duration`` virtual seconds.

        Probes still pending at the end of the campaign are not recorded
        (their outcome is unknown), matching the paper's trace semantics.
        Each call is an independent campaign: per-run state is reset, so
        a reused experiment never leaks records from a previous run.
        """
        check_positive("duration", duration)
        self._submit_times = []
        self._latencies = []
        self._codes = []
        start = self.grid.now
        self._deadline = start + duration
        for _ in range(self.n_slots):
            self._launch_probe()
        # run long enough for the last probes to resolve: one timeout
        # (plus the pooled wheel's granule of firing lateness) past the
        # deadline covers every pending probe
        self.grid.run_until(
            self._deadline
            + self.timeout
            + self.grid.sim.pooled_granularity
            + 1.0
        )
        if not self._submit_times:
            raise RuntimeError("probe campaign recorded no probes")
        order = np.argsort(self._submit_times, kind="stable")
        return TraceSet(
            name=name,
            submit_times=np.asarray(self._submit_times)[order] - start,
            latencies=np.asarray(self._latencies)[order],
            status_codes=np.asarray(self._codes, dtype=np.int8)[order],
            timeout=self.timeout,
        )

    # -- slot machinery ----------------------------------------------------

    def _launch_probe(self) -> None:
        if self.grid.now >= self._deadline:
            return
        _ProbeSlot(self)

    def _record(self, submit_time: float, latency: float, code: int) -> None:
        if submit_time >= self._deadline:
            return
        self._submit_times.append(submit_time)
        self._latencies.append(latency)
        self._codes.append(code)
