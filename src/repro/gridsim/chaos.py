"""Deterministic chaos harness: seeded fault schedules + conservation audit.

The middleware fault domain (broker outages, at-least-once submission
faults, client retries and failover) multiplies the ways a task's copies
can end — started, cancelled by sibling-cancel, lost to a fault channel,
rejected out of retry budget, or minted as a lost-ack duplicate and
reconciled later.  This module is the race detector for all of it:

* :func:`fault_schedule` turns ``(base config, seed)`` into a
  reproducible chaos regime — scheduled broker outages, submission-path
  faults and a retry policy, every parameter drawn from one seeded
  generator so a failing schedule replays exactly;
* :func:`standard_schedules` names the three hand-built acceptance
  scenarios (broker outage mid-dispatch-bucket, duplicate-on-retry,
  storm hitting broker and owned sites together);
* :func:`run_chaos` runs a mixed-strategy campaign under a schedule
  with the grid's task ledger enabled, then audits it;
* :func:`audit_conservation` replays the ledger and proves every task
  is accounted for **exactly once**: every minted copy belongs to
  exactly one task, done tasks hold exactly one started copy and no
  in-flight stragglers, duplicates are reconciled or won, and the
  grid-level attempt counters foot with the per-task ones;
* :func:`chaos_matrix` sweeps schedules across the 2×2 site×WMS engine
  matrix — the CI smoke job (``repro chaos --matrix``) runs this.

Everything is deterministic given ``(config, seed)``; no wall clocks,
no unseeded randomness.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import partial

import numpy as np

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim.client import launch_task
from repro.gridsim.faults import FaultModel, SubmitFaultConfig
from repro.gridsim.federation import BrokerConfig
from repro.gridsim.grid import GridConfig, GridSimulator, SiteConfig
from repro.gridsim.jobs import JobState
from repro.gridsim.middleware import RetryPolicy
from repro.gridsim.weather import (
    BrokerOutageConfig,
    StormConfig,
    WeatherConfig,
)
from repro.util.validation import check_int_at_least, check_positive

__all__ = [
    "ChaosResult",
    "ConservationReport",
    "audit_conservation",
    "chaos_grid_config",
    "chaos_matrix",
    "fault_schedule",
    "run_chaos",
    "standard_schedules",
]

#: the engine corners the matrix sweep visits (site_engine, wms_engine)
_CORNERS = (
    ("vector", "batched"),
    ("vector", "event"),
    ("event", "batched"),
    ("event", "event"),
)


def chaos_grid_config(
    *,
    n_sites: int = 4,
    n_brokers: int = 2,
    seed: int = 7,
    utilization: float = 0.8,
    p_lost: float = 0.02,
    p_stuck: float = 0.02,
) -> GridConfig:
    """A small federated grid the chaos schedules perturb.

    Plain FIFO sites (no fair-share) keep runs fast; two brokers give
    failover somewhere to go.  Deterministic given ``seed``.
    """
    check_int_at_least("n_sites", n_sites, 1)
    if not 1 <= n_brokers <= n_sites:
        raise ValueError(
            f"n_brokers must be in [1, n_sites={n_sites}], got {n_brokers}"
        )
    rng = np.random.default_rng(seed)
    cores_choices = np.array([8, 16, 24, 32, 48])
    sites = tuple(
        SiteConfig(
            name=f"ce{i:02d}",
            n_cores=int(rng.choice(cores_choices)),
            utilization=float(utilization * rng.uniform(0.9, 1.05)),
            runtime_median=float(rng.uniform(1800.0, 5400.0)),
            runtime_sigma=float(rng.uniform(0.6, 1.0)),
        )
        for i in range(n_sites)
    )
    bounds = np.linspace(0, n_sites, n_brokers + 1).round().astype(int)
    brokers = tuple(
        BrokerConfig(
            name=f"wms-{k}",
            sites=tuple(s.name for s in sites[bounds[k] : bounds[k + 1]]),
            info_lag=600.0,
        )
        for k in range(n_brokers)
    )
    return GridConfig(
        sites=sites,
        faults=FaultModel(p_lost=p_lost, p_stuck=p_stuck),
        brokers=brokers,
    )


def fault_schedule(
    base: GridConfig,
    seed: int,
    *,
    start: float = 6 * 3600.0,
    window: float = 4 * 3600.0,
    n_broker_outages: int = 2,
    mean_outage: float = 1_800.0,
    p_fail: float = 0.15,
    p_landed: float = 0.5,
    retry: RetryPolicy | None = RetryPolicy(),
) -> GridConfig:
    """Generate a seeded chaos regime on top of ``base``.

    Draws ``n_broker_outages`` scheduled broker-outage windows (random
    broker, start uniform in ``[start, start+window)``, exponential
    duration, random reject/black-hole mode) and layers the
    submission-path fault channel plus ``retry`` on top.  The same
    ``(base, seed)`` always yields the same config — a failing chaos run
    replays bit-for-bit.
    """
    if not base.brokers:
        raise ValueError("fault_schedule needs a federated base config")
    check_positive("window", window)
    rng = np.random.default_rng(seed)
    names = [b.name for b in base.brokers]
    outages = []
    for _ in range(n_broker_outages):
        broker = names[int(rng.integers(len(names)))]
        t0 = float(start + rng.uniform(0.0, window))
        duration = float(60.0 + rng.exponential(mean_outage))
        mode = "reject" if rng.random() < 0.5 else "black-hole"
        outages.append(
            BrokerOutageConfig(
                broker=broker, start=t0, duration=duration, mode=mode
            )
        )
    prev = base.weather
    weather = WeatherConfig(
        site_outages=prev.site_outages if prev is not None else None,
        storm=prev.storm if prev is not None else None,
        black_holes=prev.black_holes if prev is not None else (),
        broker_outages=tuple(outages),
    )
    return dataclasses.replace(
        base,
        weather=weather,
        submit_faults=SubmitFaultConfig(p_fail=p_fail, p_landed=p_landed),
        retry=retry,
    )


def standard_schedules(
    base: GridConfig, *, start: float = 6 * 3600.0
) -> list[tuple[str, GridConfig]]:
    """The three named acceptance scenarios, built on ``base``.

    * ``outage-mid-bucket`` — a scheduled reject outage opening at an
      instant that is *not* a dispatch-quantum boundary, so the batched
      lane has a half-filled bucket in flight when the broker dies;
    * ``dup-on-retry`` — a flaky submission path where most failures
      actually landed: every retry is a potential duplicate;
    * ``storm-broker-site`` — storms that take a broker down *together
      with* a site subset (shared cause), in black-hole mode, so clients
      burn their submit timeout learning the broker is gone.
    """
    if not base.brokers:
        raise ValueError("standard_schedules needs a federated base config")
    retry = RetryPolicy(
        max_attempts=4,
        backoff_base=30.0,
        backoff_max=600.0,
        submit_timeout=120.0,
        breaker_threshold=2,
        breaker_reset=900.0,
    )
    first = base.brokers[0].name
    # deliberately off-boundary: the default dispatch quantum is
    # info_refresh/16 = 18.75 s, and start+101.3 is aligned to neither
    mid_bucket = dataclasses.replace(
        base,
        weather=WeatherConfig(
            broker_outages=(
                BrokerOutageConfig(
                    broker=first,
                    start=start + 101.3,
                    duration=2_700.0,
                    mode="reject",
                ),
                BrokerOutageConfig(
                    broker=first,
                    start=start + 7_200.0,
                    duration=1_800.0,
                    mode="black-hole",
                ),
            )
        ),
        retry=retry,
    )
    dup_on_retry = dataclasses.replace(
        base,
        submit_faults=SubmitFaultConfig(p_fail=0.35, p_landed=0.6),
        retry=retry,
    )
    storm_both = dataclasses.replace(
        base,
        weather=WeatherConfig(
            storm=StormConfig(
                mean_interval=5_400.0,
                mean_duration=1_800.0,
                subset_size=min(2, len(base.sites)),
                kill_running=0.3,
                broker_prob=1.0,
                broker_mode="black-hole",
            )
        ),
        submit_faults=SubmitFaultConfig(p_fail=0.1, p_landed=0.5),
        retry=retry,
    )
    return [
        ("outage-mid-bucket", mid_bucket),
        ("dup-on-retry", dup_on_retry),
        ("storm-broker-site", storm_both),
    ]


# -- conservation audit ----------------------------------------------------


@dataclass(frozen=True)
class ConservationReport:
    """Outcome of one task-conservation audit.

    ``by_state`` partitions every ledgered job by its final state;
    ``violations`` is empty iff every task is accounted for exactly
    once (see :func:`audit_conservation` for the invariants).
    """

    tasks: int
    done_tasks: int
    jobs: int
    by_state: dict = field(default_factory=dict)
    duplicates: int = 0
    duplicates_reconciled: int = 0
    violations: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True iff the audit found no violations."""
        return not self.violations

    def verify(self) -> "ConservationReport":
        """Raise ``AssertionError`` listing every violation (chainable)."""
        if self.violations:
            raise AssertionError(
                "task conservation violated:\n  "
                + "\n  ".join(self.violations)
            )
        return self


#: a settled task may hold copies only in these states (plus one winner)
_SETTLED = (
    JobState.COMPLETED,
    JobState.CANCELLED,
    JobState.LOST,
    JobState.STUCK,
    JobState.FAILED,
)
_STARTED = (JobState.RUNNING, JobState.COMPLETED)
_IN_FLIGHT = (JobState.CREATED, JobState.MATCHING, JobState.QUEUED)


def audit_conservation(grid: GridSimulator) -> ConservationReport:
    """Prove every ledgered task is accounted for exactly once.

    Requires :meth:`GridSimulator.enable_task_ledger` to have been on
    for the whole campaign, every submission to have gone through a
    :class:`~repro.gridsim.client.TaskCore`, and every task to be
    settled (finished or expired) before the audit.  Checked invariants:

    * every task's ledger entries match its ``jobs_used`` counter — no
      copy minted off the books, none double-registered;
    * a done task holds **at most one** started copy (RUNNING or
      COMPLETED — the winner) and **no** in-flight copies (CREATED /
      MATCHING / QUEUED): sibling-cancel really settled everything,
      including retry sagas and lost-ack duplicates;
    * every at-least-once duplicate was either reconciled by
      sibling-cancel or *is* the task's winner — and the reconciliation
      counters foot with the mint counter;
    * the grid's submission counter foots with the per-task attempt
      counters (middleware grids) or the ledger size (plain grids).
    """
    ledger = grid.task_ledger
    if ledger is None:
        raise RuntimeError(
            "no task ledger: call grid.enable_task_ledger() before the "
            "campaign you want audited"
        )
    violations: list[str] = []
    groups: dict[int, tuple[object, list]] = {}
    for task, job in ledger:
        groups.setdefault(id(task), (task, []))[1].append(job)
    by_state: dict[str, int] = {}
    done_tasks = 0
    winners = 0
    dup_live = 0
    for task, jobs in groups.values():
        label = f"task@{id(task):#x}"
        if len(jobs) != task.jobs_used:
            violations.append(
                f"{label}: {len(jobs)} ledgered copies but jobs_used="
                f"{task.jobs_used} (copies minted off the books?)"
            )
        if len(set(map(id, jobs))) != len(jobs):
            violations.append(f"{label}: a copy was ledgered twice")
        started = [j for j in jobs if j.state in _STARTED]
        in_flight = [j for j in jobs if j.state in _IN_FLIGHT]
        for j in jobs:
            by_state[j.state.value] = by_state.get(j.state.value, 0) + 1
            if j.duplicate:
                dup_live += 1
                if not (task.done and j.state in _STARTED):
                    violations.append(
                        f"{label}: duplicate {j!r} neither reconciled by "
                        "sibling-cancel nor the task's winner"
                    )
        if task.done:
            done_tasks += 1
            if len(started) > 1:
                violations.append(
                    f"{label}: done with {len(started)} started copies "
                    "(sibling-cancel raced a second start)"
                )
            winners += len(started)
            if in_flight:
                violations.append(
                    f"{label}: done but {len(in_flight)} copies still "
                    f"in flight ({', '.join(j.state.value for j in in_flight)})"
                )
        else:
            violations.append(
                f"{label}: not settled — finish or expire() every task "
                "before auditing"
            )
    mw = grid._mw
    if mw is not None:
        if mw.duplicates != grid.duplicates_reconciled + dup_live:
            violations.append(
                f"duplicate ledger leak: minted {mw.duplicates}, "
                f"reconciled {grid.duplicates_reconciled}, "
                f"{dup_live} won — the books don't balance"
            )
        attempts = sum(t.client_attempts for t, _ in groups.values())
        if attempts != grid.jobs_submitted:
            violations.append(
                f"attempt counters disagree: tasks made {attempts} "
                f"attempts, grid counted {grid.jobs_submitted}"
            )
    elif len(ledger) != grid.jobs_submitted:
        violations.append(
            f"ledger holds {len(ledger)} copies but the grid counted "
            f"{grid.jobs_submitted} submissions"
        )
    return ConservationReport(
        tasks=len(groups),
        done_tasks=done_tasks,
        jobs=len(ledger),
        by_state=by_state,
        duplicates=mw.duplicates if mw is not None else 0,
        duplicates_reconciled=grid.duplicates_reconciled,
        violations=tuple(violations),
    )


# -- chaos campaigns -------------------------------------------------------


@dataclass(frozen=True)
class ChaosResult:
    """One chaos campaign: outcome stats + its conservation report."""

    finished: int
    gave_up: int
    mean_latency: float
    report: ConservationReport
    weather: dict
    #: recorded lifecycle events when ``config.tracing`` was on
    #: (see :mod:`repro.gridsim.tracing`); empty otherwise
    events: tuple = ()

    @property
    def ok(self) -> bool:
        """True iff the conservation audit passed."""
        return self.report.ok


def run_chaos(
    config: GridConfig,
    *,
    seed: int = 11,
    n_tasks: int = 60,
    warm: float = 6 * 3600.0,
    task_interval: float = 180.0,
    runtime: float = 600.0,
    t_inf: float = 1_800.0,
    horizon: float = 10 * 3600.0,
) -> ChaosResult:
    """Run a mixed-strategy campaign under ``config`` and audit it.

    Tasks cycle through the paper's three strategies (single, multiple
    ``b=2``, delayed) so sibling-cancel, burst submission and staggered
    copies all meet the fault schedule.  Unfinished tasks are expired at
    the horizon (their in-flight copies cancelled — exactly what a
    giving-up client does), then the task ledger is audited.
    """
    check_int_at_least("n_tasks", n_tasks, 1)
    grid = GridSimulator(config, seed=seed)
    grid.warm_up(warm)
    grid.enable_task_ledger()
    strategies = (
        SingleResubmission(t_inf=t_inf),
        MultipleSubmission(b=2, t_inf=t_inf),
        DelayedResubmission(t0=t_inf / 1.5, t_inf=t_inf),
    )
    results: list[tuple[float, int]] = []
    tasks: list = []
    pending = [n_tasks]

    def on_done() -> None:
        pending[0] -= 1
        if pending[0] == 0:
            grid.sim.stop()

    def launch(strategy) -> None:
        tasks.append(
            launch_task(grid, strategy, runtime, results, on_done=on_done)
        )

    for i in range(n_tasks):
        grid.sim.schedule_at(
            grid.now + i * task_interval,
            partial(launch, strategies[i % len(strategies)]),
        )
    grid.run_until(grid.now + horizon)
    for task in tasks:
        task.expire()
    report = audit_conservation(grid)
    j = np.array([r[0] for r in results])
    return ChaosResult(
        finished=len(results),
        gave_up=n_tasks - len(results),
        mean_latency=float(j.mean()) if j.size else float("nan"),
        report=report,
        weather=grid.weather_report(),
        events=tuple(grid._tr.events) if grid._tr is not None else (),
    )


def chaos_matrix(
    base: GridConfig | None = None,
    schedules: list[tuple[str, GridConfig]] | None = None,
    *,
    seed: int = 11,
    n_tasks: int = 45,
    warm: float = 6 * 3600.0,
    horizon: float = 10 * 3600.0,
) -> list[dict]:
    """Audit every schedule on all four site×WMS engine corners.

    Returns one row dict per (corner, schedule) with the campaign stats
    and the audit outcome; callers decide whether to ``verify()``.
    """
    if base is None:
        base = chaos_grid_config()
    if schedules is None:
        schedules = standard_schedules(base, start=warm)
    rows = []
    for site_engine, wms_engine in _CORNERS:
        for name, cfg in schedules:
            run_cfg = dataclasses.replace(
                cfg, site_engine=site_engine, wms_engine=wms_engine
            )
            out = run_chaos(
                run_cfg,
                seed=seed,
                n_tasks=n_tasks,
                warm=warm,
                horizon=horizon,
            )
            rows.append(
                {
                    "corner": f"{site_engine}×{wms_engine}",
                    "schedule": name,
                    "finished": out.finished,
                    "gave_up": out.gave_up,
                    "jobs": out.report.jobs,
                    "duplicates": out.report.duplicates,
                    "reconciled": out.report.duplicates_reconciled,
                    "ok": out.ok,
                    "violations": out.report.violations,
                }
            )
    return rows
