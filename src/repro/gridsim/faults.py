"""Per-stage fault injection.

Paper §1 lists the fault sources observed on EGEE: network/connectivity,
local configuration, middleware version skew, data access, scheduling.
The simulator abstracts them into two outlier-producing channels at the
points where they bite:

* **lost submissions** — the job disappears between the UI and any queue
  (credential/connectivity failures); the client only learns via its own
  timeout;
* **stuck jobs** — the job reaches a mis-configured site and waits in a
  queue it will never leave (wall-clock misconfiguration, dead worker).

Both channels leave the job unstarted, which is exactly how the paper's
ρ is defined (never started before the probe timeout).

:class:`SubmitFaultConfig` adds the *submission-path* channel of the
middleware fault domain: the UI→WMS call itself errors with probability
``p_fail``, and — the at-least-once twist — a failed call may still have
landed (``p_landed``: the ack was lost, not the job).  A resilient
client that retries such a call mints a duplicate that runs, burns cost,
and must be reconciled by sibling-cancel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_probability

__all__ = ["FaultModel", "SubmitFaultConfig"]


@dataclass(frozen=True)
class FaultModel:
    """Bernoulli fault channels applied per job.

    Attributes
    ----------
    p_lost:
        Probability a submission is swallowed before reaching a queue.
    p_stuck:
        Probability a dispatched job lands in a queue it never leaves.
    """

    p_lost: float = 0.0
    p_stuck: float = 0.0

    def __post_init__(self) -> None:
        check_probability("p_lost", self.p_lost)
        check_probability("p_stuck", self.p_stuck)
        if self.p_lost + self.p_stuck >= 1.0:
            raise ValueError(
                f"p_lost + p_stuck must be < 1, got {self.p_lost + self.p_stuck}"
            )

    @property
    def rho(self) -> float:
        """Overall outlier probability injected by the fault channels.

        A job is an outlier if lost, or (not lost but) stuck:
        ``ρ = p_lost + (1-p_lost)·p_stuck``.  Queueing can add more
        outliers on top (jobs that simply never reach a core before the
        measurement timeout).
        """
        return self.p_lost + (1.0 - self.p_lost) * self.p_stuck

    def draw_lost(self, rng: np.random.Generator) -> bool:
        """Sample the lost-submission channel."""
        return bool(rng.random() < self.p_lost)

    def draw_stuck(self, rng: np.random.Generator) -> bool:
        """Sample the stuck-at-site channel."""
        return bool(rng.random() < self.p_stuck)


@dataclass(frozen=True)
class SubmitFaultConfig:
    """At-least-once fault channel on the UI→WMS submission call.

    Attributes
    ----------
    p_fail:
        Probability a submit attempt returns an error to the client
        (independent per attempt, drawn from the grid's dedicated chaos
        stream).
    p_landed:
        Conditional probability that a *failed* attempt actually landed
        at the broker — the error ate the acknowledgement, not the job.
        The landed copy runs as a duplicate the instant the client
        retries; ``0`` makes every failure a clean failure.
    """

    p_fail: float = 0.0
    p_landed: float = 0.0

    def __post_init__(self) -> None:
        check_probability("p_fail", self.p_fail)
        check_probability("p_landed", self.p_landed)
