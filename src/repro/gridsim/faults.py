"""Per-stage fault injection.

Paper §1 lists the fault sources observed on EGEE: network/connectivity,
local configuration, middleware version skew, data access, scheduling.
The simulator abstracts them into two outlier-producing channels at the
points where they bite:

* **lost submissions** — the job disappears between the UI and any queue
  (credential/connectivity failures); the client only learns via its own
  timeout;
* **stuck jobs** — the job reaches a mis-configured site and waits in a
  queue it will never leave (wall-clock misconfiguration, dead worker).

Both channels leave the job unstarted, which is exactly how the paper's
ρ is defined (never started before the probe timeout).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import check_probability

__all__ = ["FaultModel"]


@dataclass(frozen=True)
class FaultModel:
    """Bernoulli fault channels applied per job.

    Attributes
    ----------
    p_lost:
        Probability a submission is swallowed before reaching a queue.
    p_stuck:
        Probability a dispatched job lands in a queue it never leaves.
    """

    p_lost: float = 0.0
    p_stuck: float = 0.0

    def __post_init__(self) -> None:
        check_probability("p_lost", self.p_lost)
        check_probability("p_stuck", self.p_stuck)
        if self.p_lost + self.p_stuck >= 1.0:
            raise ValueError(
                f"p_lost + p_stuck must be < 1, got {self.p_lost + self.p_stuck}"
            )

    @property
    def rho(self) -> float:
        """Overall outlier probability injected by the fault channels.

        A job is an outlier if lost, or (not lost but) stuck:
        ``ρ = p_lost + (1-p_lost)·p_stuck``.  Queueing can add more
        outliers on top (jobs that simply never reach a core before the
        measurement timeout).
        """
        return self.p_lost + (1.0 - self.p_lost) * self.p_stuck

    def draw_lost(self, rng: np.random.Generator) -> bool:
        """Sample the lost-submission channel."""
        return bool(rng.random() < self.p_lost)

    def draw_stuck(self, rng: np.random.Generator) -> bool:
        """Sample the stuck-at-site channel."""
        return bool(rng.random() < self.p_stuck)
