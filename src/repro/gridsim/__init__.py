"""Discrete-event simulation of an EGEE-like production grid.

The paper measures latency by submitting probe jobs through the real EGEE
stack (User Interface → Workload Management Server → Computing Element →
batch queue → worker node, §3.1).  This package provides a mechanistic
substitute: an event-driven simulator with

* heterogeneous sites (core counts, service policies) fronted by
  FIFO batch queues (:mod:`repro.gridsim.site`);
* a WMS performing match-making with stochastic delay and ranking sites
  on *stale* load information (:mod:`repro.gridsim.wms`) — the partial
  information problem of §1;
* per-stage fault injection (lost submissions, stuck jobs) producing the
  outlier ratio ρ (:mod:`repro.gridsim.faults`);
* background production workload with diurnal modulation keeping sites
  near saturation (:mod:`repro.gridsim.background`);
* the paper's constant-probe measurement protocol
  (:mod:`repro.gridsim.probes`), emitting :class:`~repro.traces.TraceSet`;
* client-side strategy executors replaying the three §4–§6 strategies
  against the simulated grid (:mod:`repro.gridsim.client`), including the
  fleet-adoption experiment the paper leaves as future work;
* per-VO fair-share scheduling at sites (:mod:`repro.gridsim.fairshare`)
  — the multi-tenant reality of production grids, with VO labels riding
  the vectorised background chunks;
* WMS federation (:mod:`repro.gridsim.federation`): several brokers,
  each owning a subset of sites and seeing the rest through a lagged
  information-system view;
* grid weather (:mod:`repro.gridsim.weather`): correlated multi-site
  outage storms, black-hole sites that instantly fail the traffic their
  excellent-looking queue attracts, and a service-side self-healing
  resubmission agent;
* a site health state machine (:mod:`repro.gridsim.health`) driving
  operator-style bans and probe re-admission off observed job outcomes,
  with health-aware (and therefore staleness-bound) broker masking;
* replay of recorded SWF/GWF workloads through the background lane
  (:mod:`repro.gridsim.replay`);
* opt-in end-to-end task tracing with latency decomposition and GWF
  export (:mod:`repro.gridsim.tracing`), backed by the per-grid
  counter/histogram/gauge registry (:mod:`repro.gridsim.registry`)
  every subsystem publishes into.

Fleets of strategy-running users per VO are driven by the companion
:mod:`repro.population` package.
"""

from repro.gridsim.chaos import (
    ChaosResult,
    ConservationReport,
    audit_conservation,
    chaos_grid_config,
    chaos_matrix,
    fault_schedule,
    run_chaos,
    standard_schedules,
)
from repro.gridsim.events import PooledTimer, Simulator
from repro.gridsim.fairshare import (
    FairShareComputingElement,
    FairShareState,
    FairShareVectorComputingElement,
)
from repro.gridsim.faults import FaultModel, SubmitFaultConfig
from repro.gridsim.federation import (
    BatchedFederatedBroker,
    BrokerConfig,
    FederatedBroker,
)
from repro.gridsim.grid import (
    GridConfig,
    GridSimulator,
    GridSnapshot,
    SiteConfig,
    configure_warm_cache,
    default_grid_config,
    federated_grid_config,
    warmed_grid,
    warmed_snapshot,
)
from repro.gridsim.health import (
    HealthConfig,
    HealthService,
    HealthState,
    SiteHealth,
)
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.metrics import GridMonitor, GridSample
from repro.gridsim.middleware import (
    CircuitBreaker,
    MiddlewareDomain,
    RetryPolicy,
)
from repro.gridsim.outages import OutageProcess
from repro.gridsim.weather import (
    BlackHoleConfig,
    BrokerOutageConfig,
    OutageConfig,
    ResubmissionAgent,
    ResubmitConfig,
    StormConfig,
    StormProcess,
    WeatherConfig,
)
from repro.gridsim.probes import ProbeExperiment
from repro.gridsim.registry import Counter, Histogram, MetricsRegistry
from repro.gridsim.replay import TraceReplayLoad, replay_arrays_from_trace
from repro.gridsim.tracing import (
    TaskBreakdown,
    TraceRecorder,
    breakdown_tables,
    decompose,
    export_gwf,
    read_trace,
    write_trace,
)
from repro.gridsim.site import ComputingElement, VectorComputingElement
from repro.gridsim.wms import BatchedWorkloadManager, WorkloadManager
from repro.gridsim.client import (
    StrategyOutcome,
    TaskCore,
    launch_task,
    run_strategy_batch,
    run_strategy_on_grid,
)

__all__ = [
    "Simulator",
    "PooledTimer",
    "FaultModel",
    "GridConfig",
    "SiteConfig",
    "GridSimulator",
    "GridSnapshot",
    "BrokerConfig",
    "FederatedBroker",
    "BatchedFederatedBroker",
    "BatchedWorkloadManager",
    "WorkloadManager",
    "ComputingElement",
    "VectorComputingElement",
    "FairShareComputingElement",
    "FairShareState",
    "FairShareVectorComputingElement",
    "TraceReplayLoad",
    "replay_arrays_from_trace",
    "configure_warm_cache",
    "default_grid_config",
    "federated_grid_config",
    "warmed_grid",
    "warmed_snapshot",
    "Job",
    "JobState",
    "GridMonitor",
    "GridSample",
    "OutageProcess",
    "OutageConfig",
    "StormConfig",
    "StormProcess",
    "BlackHoleConfig",
    "BrokerOutageConfig",
    "WeatherConfig",
    "SubmitFaultConfig",
    "RetryPolicy",
    "CircuitBreaker",
    "MiddlewareDomain",
    "ChaosResult",
    "ConservationReport",
    "audit_conservation",
    "chaos_grid_config",
    "chaos_matrix",
    "fault_schedule",
    "run_chaos",
    "standard_schedules",
    "ResubmitConfig",
    "ResubmissionAgent",
    "HealthConfig",
    "HealthService",
    "HealthState",
    "SiteHealth",
    "ProbeExperiment",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TaskBreakdown",
    "TraceRecorder",
    "breakdown_tables",
    "decompose",
    "export_gwf",
    "read_trace",
    "write_trace",
    "StrategyOutcome",
    "TaskCore",
    "launch_task",
    "run_strategy_batch",
    "run_strategy_on_grid",
]
