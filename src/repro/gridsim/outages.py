"""Site outages: scheduled downtime windows for computing elements.

EGEE sites regularly go into (un)scheduled downtime; jobs queued there
stall until the site returns — a major source of the latency outliers the
paper measures.  :class:`OutageProcess` alternates up/down periods per
site: on outage start the CE stops dispatching (cores appear busy); on
recovery the queue drains again.  Jobs already running are killed with a
configurable probability (power loss vs. drained downtime).
"""

from __future__ import annotations

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.site import ComputingElement
from repro.util.validation import check_positive, check_probability

__all__ = ["OutageProcess"]


class OutageProcess:
    """Alternating up/down renewal process attached to one CE.

    Up durations are exponential with mean ``mean_uptime``; outage
    durations exponential with mean ``mean_downtime``.

    Implementation: an outage closes the CE's dispatch gate (queued jobs
    stall) and optionally kills running jobs; recovery reopens the gate
    and drains the queue.
    """

    def __init__(
        self,
        site: ComputingElement,
        sim: Simulator,
        rng: np.random.Generator,
        *,
        mean_uptime: float = 5 * 86_400.0,
        mean_downtime: float = 4 * 3600.0,
        kill_running: float = 0.5,
    ) -> None:
        check_positive("mean_uptime", mean_uptime)
        check_positive("mean_downtime", mean_downtime)
        check_probability("kill_running", kill_running)
        self.site = site
        self.sim = sim
        self.rng = rng
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.kill_running = kill_running
        self.is_down = False
        self.outages_started = 0
        #: jobs this process's outages killed mid-run (both lanes)
        self.jobs_killed = 0

    def start(self) -> None:
        """Arm the process (first outage after one up period)."""
        self.sim.schedule(
            float(self.rng.exponential(self.mean_uptime)), self._go_down
        )

    def _go_down(self) -> None:
        self.is_down = True
        self.outages_started += 1
        # the site closes its dispatch gate first, then kills a share of
        # the running jobs (unscheduled outage semantics); freed cores
        # stay idle until recovery because the gate is closed.  Both site
        # engines implement the hook — the vectorised lane reconciles its
        # background commits to now before sampling the kills.
        before = self.site.jobs_killed
        self.site.begin_outage(self.rng, self.kill_running)
        self.jobs_killed += self.site.jobs_killed - before
        self.sim.schedule(
            float(self.rng.exponential(self.mean_downtime)), self._come_up
        )

    def _come_up(self) -> None:
        self.is_down = False
        self.site.end_outage()
        self.sim.schedule(
            float(self.rng.exponential(self.mean_uptime)), self._go_down
        )
