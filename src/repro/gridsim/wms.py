"""Workload Management Server: match-making and site ranking.

Paper §3.1: a WMS "receives and queues the jobs submitted before
dispatching them to the connected computing centers".  Two EGEE realities
are modelled because they shape the latency distribution:

* **match-making delay** — credential delegation, requirement matching
  and dispatch take a stochastic, heavy-ish time (log-normal), which is
  the floor of the observed latency;
* **stale information** — the WMS ranks sites on load estimates
  refreshed only periodically (grid information systems publish slowly),
  plus ranking noise, so jobs regularly land on queues that are no
  longer the shortest — one of the §1 "partial information" effects.

Two dispatch engines implement the same submission contract (selected by
:attr:`~repro.gridsim.grid.GridConfig.wms_engine`):

* :class:`WorkloadManager` — the event oracle: every submission
  schedules its own dispatch event at ``now + matchmaking delay``.
* :class:`BatchedWorkloadManager` — the production lane: pending
  dispatches are pooled into *buckets*, one per dispatch quantum (the
  information-refresh window split into
  :attr:`BatchedWorkloadManager.SUBWINDOWS` sub-windows), and each
  bucket is resolved by a **single** simulator event at its boundary —
  site selection vectorised over the whole bucket (one numpy ``argmin``
  over ``(est + mm) · noise`` rows) and jobs handed to each chosen site
  in one :meth:`ComputingElement.enqueue_many` call.  Jobs therefore
  reach their queue at the quantum boundary rather than at their exact
  match-making instant — a deliberate, law-level approximation (a few
  seconds against a minutes-scale latency floor) pinned against the
  oracle by ``tests/test_wms_engine_equivalence.py``.
"""

from __future__ import annotations

import math
from collections import deque
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.site import ComputingElement
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["BatchedWorkloadManager", "WorkloadManager"]

#: scalar draws pre-drawn per refill of the WMS randomness blocks
_DRAW_BLOCK = 256

#: states proving a job survived its site enqueue (RUNNING when the
#: site had a free core and started it synchronously)
_ENQUEUED_STATES = (JobState.QUEUED, JobState.RUNNING)


class WorkloadManager:
    """Match-maker and dispatcher over a set of computing elements."""

    #: health-aware ranking (set by :meth:`enable_health`): when on, the
    #: stale snapshot also carries each site's ``health_penalty`` and the
    #: ranking score becomes ``(est + mm) · noise · penalty`` — banned
    #: sites (penalty inf) are masked out of match-making.  Class
    #: attributes so unconfigured grids pay nothing, not even a slot.
    _health_aware = False
    #: any penalty != 1 in the current snapshot (cheap fast-path guard)
    _penalised = False
    #: every site banned — fall back to unpenalised ranking rather than
    #: dispatch nothing (the grid has nowhere better to send work)
    _all_masked = False
    #: broker availability (middleware fault domain).  Class attributes —
    #: like the health flags above — so calm grids pay nothing: they
    #: become instance attributes only once an outage actually begins.
    accepting = True
    #: how a downed broker treats submissions: ``"reject"`` fails them
    #: synchronously, ``"black-hole"`` swallows them (the client learns
    #: only from its own submit timeout)
    outage_mode = "reject"
    #: broker-down windows begun (telemetry)
    outages_started = 0
    #: task-lifecycle recorder (grid-assigned on traced runs); the class
    #: attribute keeps untraced grids on the ``_tr is None`` fast path
    _tr = None

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[ComputingElement],
        rng: np.random.Generator,
        *,
        matchmaking_median: float = 60.0,
        matchmaking_sigma: float = 0.6,
        info_refresh: float = 300.0,
        ranking_noise: float = 0.3,
        runtime_guess: float = 3600.0,
    ) -> None:
        if not sites:
            raise ValueError("WMS needs at least one computing element")
        check_positive("matchmaking_median", matchmaking_median)
        check_nonnegative("matchmaking_sigma", matchmaking_sigma)
        check_positive("info_refresh", info_refresh)
        check_nonnegative("ranking_noise", ranking_noise)
        check_positive("runtime_guess", runtime_guess)
        self.sim = sim
        self.sites = list(sites)
        self.rng = rng
        self.matchmaking_median = matchmaking_median
        self.matchmaking_sigma = matchmaking_sigma
        self.info_refresh = info_refresh
        self.ranking_noise = ranking_noise
        self.runtime_guess = runtime_guess
        # _measure_loads sets both _snapshot_list (hot ranking loop) and
        # _snapshot (the current_snapshot() surface)
        self._snapshot: np.ndarray = self._measure_loads()
        self._snapshot_time: float = sim.now
        self.dispatch_count = 0
        self._log_mm_median = float(np.log(matchmaking_median))
        # block-drawn randomness (law-identical to scalar draws, far
        # cheaper per job): match-making delays and ranking-noise rows
        self._delays: deque[float] = deque()
        self._noise_rows: list[list[float]] = []
        self._noise_next = 0

    # -- information system -------------------------------------------------

    def _measure_loads(self) -> np.ndarray:
        # reading estimated_wait is a reconciliation point on the
        # vectorised site engine: every refresh advances each site's
        # background lane to the refresh instant before publishing.
        # Both views are set together — the list feeds the hot ranking
        # loop, the array is the external current_snapshot() surface
        loads = [s.estimated_wait(self.runtime_guess) for s in self.sites]
        self._snapshot_list = loads
        self._snapshot = np.asarray(loads)
        if self._health_aware:
            self._refresh_health(range(len(self.sites)))
        return self._snapshot

    def enable_health(self) -> None:
        """Fold site health penalties into ranking (health-aware grids).

        Penalties are read only here and at snapshot refreshes, so a ban
        propagates with the information system's staleness — the WMS
        keeps feeding a just-banned site until its next refresh, exactly
        like a production broker working from a stale BDII view.
        """
        self._health_aware = True
        self._pen_list = [1.0] * len(self.sites)
        self._refresh_health(range(len(self.sites)))

    def _refresh_health(self, indices) -> None:
        pl = self._pen_list
        sites = self.sites
        for i in indices:
            pl[i] = sites[i].health_penalty
        self._penalised = any(p != 1.0 for p in pl)
        self._all_masked = self._penalised and all(p == math.inf for p in pl)
        self._pen_vec = np.asarray(pl)

    def current_snapshot(self) -> np.ndarray:
        """Stale load estimates, refreshed every ``info_refresh`` seconds."""
        if self.sim.now - self._snapshot_time >= self.info_refresh:
            self._measure_loads()
            self._snapshot_time = self.sim.now
        return self._snapshot

    def snapshot_staleness(self) -> float:
        """Age (s) of the load view the next dispatch would rank on.

        Pure read — it does not refresh the snapshot, so recording it in
        a trace perturbs nothing.
        """
        return self.sim.now - self._snapshot_time

    # -- broker outages (middleware fault domain) ----------------------------

    def begin_outage(self, mode: str = "reject") -> None:
        """Take the broker down: stop admitting new submissions.

        Work already matched or pooled keeps flowing — a crashed broker's
        previously dispatched jobs are at their sites, not inside it.
        """
        if mode not in ("reject", "black-hole"):
            raise ValueError(
                f"unknown broker outage mode {mode!r}; "
                "available: reject, black-hole"
            )
        self.accepting = False
        self.outage_mode = mode
        self.outages_started += 1

    def end_outage(self) -> None:
        """Recover the broker — with a cold information system.

        A restarted broker has no fresh load reports yet: it keeps
        serving its pre-outage snapshot for one full refresh window
        (increasingly stale the longer the outage lasted), exactly like
        a production WMS rejoining the information system mid-cadence.
        Deterministic on purpose: recovery consumes no randomness.
        """
        self.accepting = True
        self._snapshot_time = self.sim.now

    # -- submission path -----------------------------------------------------

    def submit(self, job: Job, then: Callable[[Job], None] | None = None) -> None:
        """Accept a job: match-making delay, then dispatch to a site.

        ``then`` is invoked right after the job is enqueued at its site
        (used by fault injection wrappers and tests).
        """
        if job.state is not JobState.CREATED:
            raise ValueError(f"cannot submit job in state {job.state}")
        job.state = JobState.MATCHING
        # partial (not a lambda) so pending dispatches survive snapshotting
        self.sim.schedule(self._next_delay(), partial(self._dispatch, job, then))

    def _next_delay(self) -> float:
        """Next match-making delay (block-drawn, law-identical to scalars)."""
        if not self._delays:
            self._delays.extend(
                self.rng.lognormal(
                    mean=self._log_mm_median,
                    sigma=self.matchmaking_sigma,
                    size=_DRAW_BLOCK,
                ).tolist()
            )
        return self._delays.popleft()

    def submit_many(self, jobs: Sequence[Job]) -> None:
        """Submit sibling copies together (law-identical to a submit loop)."""
        for job in jobs:
            self.submit(job)

    def _dispatch(self, job: Job, then: Callable[[Job], None] | None) -> None:
        if job.state is not JobState.MATCHING:
            return  # cancelled while matching
        site = self.select_site()
        self.dispatch_count += 1
        site.enqueue(job)
        tr = self._tr
        if tr is not None and job.state in _ENQUEUED_STATES:
            # a black-holed job died inside enqueue (its fail event came
            # through the site's on_fail hook); only survivors enqueued.
            # RUNNING covers an instant synchronous start.
            tr.enqueue(job)
        if then is not None:
            then(job)

    def select_site(self) -> ComputingElement:
        """Rank sites by stale estimated wait plus multiplicative noise."""
        self.current_snapshot()
        return self.sites[self._select_index()]

    def _select_index(self) -> int:
        """Index of the ranked-best site (snapshot must be current)."""
        est = self._snapshot_list
        # the penalised branches consume the exact same noise draws as
        # the plain ones, so enabling health never shifts any RNG stream
        use_pen = self._penalised and not self._all_masked
        if self.ranking_noise > 0.0:
            if self._noise_next >= len(self._noise_rows):
                self._noise_rows = self.rng.lognormal(
                    0.0, self.ranking_noise, size=(_DRAW_BLOCK, len(est))
                ).tolist()
                self._noise_next = 0
            noise = self._noise_rows[self._noise_next]
            self._noise_next += 1
            mm = self.matchmaking_median
            # site counts are small (5–20): a plain loop beats the fixed
            # overhead of numpy ufuncs + argmin on tiny arrays
            if use_pen:
                pen = self._pen_list
                best = 0
                best_score = (est[0] + mm) * noise[0] * pen[0]
                for i in range(1, len(est)):
                    score = (est[i] + mm) * noise[i] * pen[i]
                    if score < best_score:
                        best = i
                        best_score = score
            else:
                best = 0
                best_score = (est[0] + mm) * noise[0]
                for i in range(1, len(est)):
                    score = (est[i] + mm) * noise[i]
                    if score < best_score:
                        best = i
                        best_score = score
        elif use_pen:
            mm = self.matchmaking_median
            pen = self._pen_list
            best = 0
            best_score = (est[0] + mm) * pen[0]
            for i in range(1, len(est)):
                score = (est[i] + mm) * pen[i]
                if score < best_score:
                    best = i
                    best_score = score
        else:
            best = est.index(min(est))
        return best

    def cancel_matching(self, job: Job) -> bool:
        """Cancel a job still in match-making (before any queue).

        The state flip is the whole protocol on both engines: the
        per-job dispatch event and the batched bucket resolver each
        skip jobs that are no longer ``MATCHING``, so a job sitting in
        a dispatch bucket dies in place without touching any event.
        """
        if job.state is JobState.MATCHING:
            job.state = JobState.CANCELLED
            return True
        return False


class BatchedWorkloadManager(WorkloadManager):
    """Windowed match-making: one event resolves a whole dispatch bucket.

    Submissions draw their match-making delay from the same block-drawn
    stream as the oracle, but instead of scheduling one dispatch event
    per job, each job joins the *bucket* of the dispatch quantum its
    delay lands in (``ceil(ready / dispatch_quantum)`` boundaries, with
    ``dispatch_quantum = info_refresh / SUBWINDOWS``).  A single
    simulator event per bucket then, at the boundary:

    1. drops jobs cancelled while they sat in the bucket,
    2. orders the survivors by their exact match-making instant (so the
       ranking-noise stream is consumed in dispatch order, like the
       oracle),
    3. refreshes the stale snapshot once and ranks **all** jobs in one
       vectorised pass — ``argmin`` over ``(est + mm) · noise`` rows,
    4. hands each site its winners in one ``enqueue_many`` call.

    The approximation relative to the oracle: jobs reach their queue at
    the quantum boundary, not at their exact ready instant, so
    individual latencies shift by less than one quantum (~19 s on the
    default grid, mean half that) while dispatch *counts*, fault rates,
    the site-ranking law and every RNG stream's law stay intact.  The
    quantum is deliberately much finer than the refresh window: buckets
    the width of the whole window resonate with closed-loop clients
    (probe slots resubmitting right after boundary-clustered starts
    wait almost a full window every cycle), which would bias the
    measured latency law the §3.2 protocol exists to capture.
    ``tests/test_wms_engine_equivalence.py`` pins the resulting
    latency/outcome laws against the oracle.
    """

    #: dispatch sub-windows per information-refresh window.  Buckets at
    #: the full window width resonate with closed-loop clients (a probe
    #: slot resubmitting right after a boundary-clustered start waits
    #: almost a whole window every cycle, inflating its measured latency
    #: well past what an open-loop submitter sees); 16 sub-windows cut
    #: the per-job alignment delay to ``info_refresh/32`` in the mean —
    #: a few seconds against a minutes-scale latency floor — while bursts
    #: and population-scale campaigns still fill buckets densely.
    SUBWINDOWS = 16

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: pending dispatches per sub-window boundary:
        #: ``[(ready, job, then), ...]``
        self._buckets: dict[float, list] = {}
        #: dispatch quantum: jobs whose match-making delay lands in the
        #: same quantum resolve together at its upper boundary
        self.dispatch_quantum = self.info_refresh / self.SUBWINDOWS

    @property
    def pending_dispatches(self) -> int:
        """Jobs sitting in unresolved dispatch buckets (diagnostics)."""
        return sum(
            1
            for bucket in self._buckets.values()
            for _, job, _ in bucket
            if job.state is JobState.MATCHING
        )

    def submit(self, job: Job, then: Callable[[Job], None] | None = None) -> None:
        """Accept a job: pool it in its match-making window's bucket."""
        if job.state is not JobState.CREATED:
            raise ValueError(f"cannot submit job in state {job.state}")
        job.state = JobState.MATCHING
        ready = self.sim.now + self._next_delay()
        self._pool_dispatch(ready, job, then)

    def submit_many(self, jobs: Sequence[Job]) -> None:
        """Pool a burst of sibling copies in one pass over the buckets."""
        now = self.sim.now
        next_delay = self._next_delay
        pool = self._pool_dispatch
        for job in jobs:
            if job.state is not JobState.CREATED:
                raise ValueError(f"cannot submit job in state {job.state}")
            job.state = JobState.MATCHING
            pool(now + next_delay(), job, None)

    def _pool_dispatch(self, ready: float, job: Job, then) -> None:
        w = self.dispatch_quantum
        boundary = math.ceil(ready / w) * w
        bucket = self._buckets.get(boundary)
        if bucket is None:
            bucket = self._buckets[boundary] = []
            # partial (not a lambda) so pending buckets survive snapshotting
            self.sim.schedule_at(boundary, partial(self._resolve_bucket, boundary))
        bucket.append((ready, job, then))

    #: bucket size below which the scalar ranking path (blocked noise
    #: rows, shared with the oracle's select_site) beats numpy's fixed
    #: per-call overhead
    _VECTORISE_MIN = 5

    def _resolve_bucket(self, boundary: float) -> None:
        entries = self._buckets.pop(boundary)
        MATCHING = JobState.MATCHING
        CANCELLED = JobState.CANCELLED
        tr = self._tr
        if len(entries) == 1:
            # singleton bucket (sparse campaigns): no sorting, no
            # grouping — essentially the oracle's dispatch body
            _, job, then = entries[0]
            if job.state is not MATCHING:
                return
            self.current_snapshot()
            site = self.sites[self._select_index()]
            self.dispatch_count += site.enqueue_many([job])
            if tr is not None and job.state in _ENQUEUED_STATES:
                tr.enqueue(job)
            if then is not None and job.state is not CANCELLED:
                then(job)
            return
        # order by exact match-making instant (index breaks float ties in
        # submission order, and keeps tuple sorting off the Job objects)
        live = [
            (ready, k, job, then)
            for k, (ready, job, then) in enumerate(entries)
            if job.state is MATCHING
        ]
        if not live:
            return
        live.sort()
        self.current_snapshot()
        k = len(live)
        if k < self._VECTORISE_MIN:
            for _, _, job, then in live:
                if job.state is not MATCHING:
                    continue  # cancelled by an earlier job's callback
                site = self.sites[self._select_index()]
                self.dispatch_count += site.enqueue_many([job])
                if tr is not None and job.state in _ENQUEUED_STATES:
                    tr.enqueue(job)
                if then is not None and job.state is not CANCELLED:
                    then(job)
            return
        est = self._snapshot
        use_pen = self._penalised and not self._all_masked
        if self.ranking_noise > 0.0:
            noise = self.rng.lognormal(0.0, self.ranking_noise, size=(k, est.size))
            scores = (est + self.matchmaking_median) * noise
            if use_pen:
                scores *= self._pen_vec
            choices = scores.argmin(axis=1)
        elif use_pen:
            choices = np.full(
                k,
                int(np.argmin((est + self.matchmaking_median) * self._pen_vec)),
            )
        else:
            choices = np.full(k, int(np.argmin(est)))
        # group winners per site, preserving dispatch order within a site
        groups: dict[int, list] = {}
        for (_, _, job, then), site_i in zip(live, choices.tolist()):
            groups.setdefault(site_i, []).append((job, then))
        for site_i, bunch in groups.items():
            site = self.sites[site_i]
            # re-check state: a callback from an earlier group may have
            # cancelled a job waiting in a later one
            todo = [(job, then) for job, then in bunch if job.state is MATCHING]
            if not todo:
                continue
            self.dispatch_count += site.enqueue_many([job for job, _ in todo])
            if tr is not None:
                for job, _ in todo:
                    if job.state in _ENQUEUED_STATES:
                        tr.enqueue(job)
            for job, then in todo:
                # a job cancelled by a callback mid-group was skipped by
                # enqueue_many and never dispatched — no `then` for it
                if then is not None and job.state is not CANCELLED:
                    then(job)
