"""Workload Management Server: match-making and site ranking.

Paper §3.1: a WMS "receives and queues the jobs submitted before
dispatching them to the connected computing centers".  Two EGEE realities
are modelled because they shape the latency distribution:

* **match-making delay** — credential delegation, requirement matching
  and dispatch take a stochastic, heavy-ish time (log-normal), which is
  the floor of the observed latency;
* **stale information** — the WMS ranks sites on load estimates
  refreshed only periodically (grid information systems publish slowly),
  plus ranking noise, so jobs regularly land on queues that are no
  longer the shortest — one of the §1 "partial information" effects.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from typing import Callable, Sequence

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.site import ComputingElement
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["WorkloadManager"]

#: scalar draws pre-drawn per refill of the WMS randomness blocks
_DRAW_BLOCK = 256


class WorkloadManager:
    """Match-maker and dispatcher over a set of computing elements."""

    def __init__(
        self,
        sim: Simulator,
        sites: Sequence[ComputingElement],
        rng: np.random.Generator,
        *,
        matchmaking_median: float = 60.0,
        matchmaking_sigma: float = 0.6,
        info_refresh: float = 300.0,
        ranking_noise: float = 0.3,
        runtime_guess: float = 3600.0,
    ) -> None:
        if not sites:
            raise ValueError("WMS needs at least one computing element")
        check_positive("matchmaking_median", matchmaking_median)
        check_nonnegative("matchmaking_sigma", matchmaking_sigma)
        check_positive("info_refresh", info_refresh)
        check_nonnegative("ranking_noise", ranking_noise)
        check_positive("runtime_guess", runtime_guess)
        self.sim = sim
        self.sites = list(sites)
        self.rng = rng
        self.matchmaking_median = matchmaking_median
        self.matchmaking_sigma = matchmaking_sigma
        self.info_refresh = info_refresh
        self.ranking_noise = ranking_noise
        self.runtime_guess = runtime_guess
        # _measure_loads sets both _snapshot_list (hot ranking loop) and
        # _snapshot (the current_snapshot() surface)
        self._snapshot: np.ndarray = self._measure_loads()
        self._snapshot_time: float = sim.now
        self.dispatch_count = 0
        self._log_mm_median = float(np.log(matchmaking_median))
        # block-drawn randomness (law-identical to scalar draws, far
        # cheaper per job): match-making delays and ranking-noise rows
        self._delays: deque[float] = deque()
        self._noise_rows: list[list[float]] = []
        self._noise_next = 0

    # -- information system -------------------------------------------------

    def _measure_loads(self) -> np.ndarray:
        # reading estimated_wait is a reconciliation point on the
        # vectorised site engine: every refresh advances each site's
        # background lane to the refresh instant before publishing.
        # Both views are set together — the list feeds the hot ranking
        # loop, the array is the external current_snapshot() surface
        loads = [s.estimated_wait(self.runtime_guess) for s in self.sites]
        self._snapshot_list = loads
        self._snapshot = np.asarray(loads)
        return self._snapshot

    def current_snapshot(self) -> np.ndarray:
        """Stale load estimates, refreshed every ``info_refresh`` seconds."""
        if self.sim.now - self._snapshot_time >= self.info_refresh:
            self._measure_loads()
            self._snapshot_time = self.sim.now
        return self._snapshot

    # -- submission path -----------------------------------------------------

    def submit(self, job: Job, then: Callable[[Job], None] | None = None) -> None:
        """Accept a job: match-making delay, then dispatch to a site.

        ``then`` is invoked right after the job is enqueued at its site
        (used by fault injection wrappers and tests).
        """
        if job.state is not JobState.CREATED:
            raise ValueError(f"cannot submit job in state {job.state}")
        job.state = JobState.MATCHING
        if not self._delays:
            self._delays.extend(
                self.rng.lognormal(
                    mean=self._log_mm_median,
                    sigma=self.matchmaking_sigma,
                    size=_DRAW_BLOCK,
                ).tolist()
            )
        delay = self._delays.popleft()
        # partial (not a lambda) so pending dispatches survive snapshotting
        self.sim.schedule(delay, partial(self._dispatch, job, then))

    def _dispatch(self, job: Job, then: Callable[[Job], None] | None) -> None:
        if job.state is not JobState.MATCHING:
            return  # cancelled while matching
        site = self.select_site()
        self.dispatch_count += 1
        site.enqueue(job)
        if then is not None:
            then(job)

    def select_site(self) -> ComputingElement:
        """Rank sites by stale estimated wait plus multiplicative noise."""
        self.current_snapshot()
        est = self._snapshot_list
        if self.ranking_noise > 0.0:
            if self._noise_next >= len(self._noise_rows):
                self._noise_rows = self.rng.lognormal(
                    0.0, self.ranking_noise, size=(_DRAW_BLOCK, len(est))
                ).tolist()
                self._noise_next = 0
            noise = self._noise_rows[self._noise_next]
            self._noise_next += 1
            mm = self.matchmaking_median
            # site counts are small (5–20): a plain loop beats the fixed
            # overhead of numpy ufuncs + argmin on tiny arrays
            best = 0
            best_score = (est[0] + mm) * noise[0]
            for i in range(1, len(est)):
                score = (est[i] + mm) * noise[i]
                if score < best_score:
                    best = i
                    best_score = score
        else:
            best = est.index(min(est))
        return self.sites[best]

    def cancel_matching(self, job: Job) -> bool:
        """Cancel a job still in match-making (before any queue)."""
        if job.state is JobState.MATCHING:
            job.state = JobState.CANCELLED
            return True
        return False
