"""Client-side strategy executors running against the simulated grid.

These replay the paper's three strategies *mechanistically* — actual
submissions, timers and cancellations on the DES — rather than sampling
from a latency law.  They serve two purposes:

* end-to-end validation: latencies measured under the single-submission
  protocol feed the analytic model, whose predicted strategy gains are
  then compared against strategies *executed* on the same grid;
* the paper's future-work experiment: what happens when a whole fleet of
  users adopts an aggressive strategy (load feedback included), see
  :mod:`repro.experiments.adoption_sweep`.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial

import numpy as np

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    Strategy,
)
from repro.gridsim.grid import GridSimulator, GridSnapshot
from repro.gridsim.jobs import Job
from repro.util.validation import check_positive

__all__ = [
    "StrategyOutcome",
    "TaskCore",
    "launch_task",
    "run_strategy_batch",
    "run_strategy_on_grid",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of executing a strategy for many tasks on the grid.

    Attributes
    ----------
    j:
        Realised total latencies of the tasks that succeeded (s).
    jobs_submitted:
        Grid jobs submitted per task — the finished tasks first (aligned
        with ``j``), then the partial counts of the tasks that gave up,
        so the submission pressure of an unfinished campaign is not
        silently dropped.
    gave_up:
        Tasks still unfinished when the simulation horizon was reached.
    """

    j: np.ndarray
    jobs_submitted: np.ndarray
    gave_up: int

    @property
    def mean_j(self) -> float:
        """Mean realised total latency."""
        return float(self.j.mean())

    @property
    def mean_jobs(self) -> float:
        """Mean number of grid jobs per task (gave-up tasks included)."""
        return float(self.jobs_submitted.mean())


class TaskCore:
    """Lifecycle core of one client task: copies, timers, batch cancel.

    This is the single bookkeeping engine behind the strategy executors,
    the probe slots (:mod:`repro.gridsim.probes`) and the population
    driver (:mod:`repro.population`): it owns the done flag, the list of
    in-flight copies and the armed timers, and settles the whole task in
    one pass the moment a copy starts — cancelling every timer (O(1)
    each on the pooled wheel) and batch-cancelling all sibling copies in
    a single :meth:`GridSimulator.cancel_many` call.

    Subclasses implement ``finished(winner)`` (what "the task is done"
    means: record a latency, launch the next probe, …) and drive
    :meth:`submit_copy` / :meth:`arm` according to their strategy.

    ``vo`` labels every submitted copy (fair-share sites account them to
    that VO) and ``via`` pins the broker on federated grids; the
    defaults leave single-tenant grids unperturbed.
    """

    __slots__ = ("grid", "runtime", "vo", "via", "t_start", "jobs_used",
                 "done", "active_jobs", "timers", "agent_retries",
                 "client_attempts", "retry_pending", "task_id")

    #: tag stamped on every submitted copy
    tag = "task"
    #: strategy label recorded in the task's trace events
    trace_label = "task"

    def __init__(
        self,
        grid: GridSimulator,
        runtime: float,
        *,
        vo: str = "",
        via: int | str | None = None,
    ) -> None:
        self.grid = grid
        self.runtime = runtime
        self.vo = vo
        self.via = via
        self.t_start = grid.now
        self.jobs_used = 0
        self.done = False
        self.active_jobs: list[Job] = []
        self.timers: list = []
        #: system-side resubmissions consumed (the self-healing agent's
        #: per-task retry budget)
        self.agent_retries = 0
        #: submit attempts made on this task's behalf by the middleware
        #: retry policy (0 on grids without a middleware fault domain)
        self.client_attempts = 0
        #: client-side retries currently backing off / awaiting an ack —
        #: while non-zero the ResubmissionAgent defers rescuing this task
        self.retry_pending = 0
        tr = grid._tr
        #: trace-assigned task id (-1 on untraced grids)
        self.task_id = tr.task_created(self) if tr is not None else -1

    def submit_copy(self) -> Job:
        """Submit one more copy of the task's payload."""
        job = Job(runtime=self.runtime, tag=self.tag, vo=self.vo)
        self.jobs_used += 1
        self.active_jobs.append(job)
        grid = self.grid
        if grid.task_ledger is not None:
            grid.task_ledger.append((self, job))
        grid.submit(job, on_start=self._on_start, via=self.via, task=self)
        agent = grid._agent
        if agent is not None:
            # lost/stuck jobs register too — spotting exactly those is
            # the monitoring agent's purpose
            agent.watch(self, job)
        return job

    def submit_copies(self, n: int) -> list[Job]:
        """Submit a burst of ``n`` copies through one middleware pass."""
        runtime = self.runtime
        tag = self.tag
        vo = self.vo
        jobs = [Job(runtime=runtime, tag=tag, vo=vo) for _ in range(n)]
        self.jobs_used += n
        self.active_jobs.extend(jobs)
        grid = self.grid
        if grid.task_ledger is not None:
            grid.task_ledger.extend((self, job) for job in jobs)
        grid.submit_many(jobs, self._on_start, via=self.via, task=self)
        agent = grid._agent
        if agent is not None:
            for job in jobs:
                agent.watch(self, job)
        return jobs

    def arm(self, delay: float, callback) -> object:
        """Arm a cancellable timer (pooled under the batched WMS engine)."""
        timer = self.grid.schedule_timeout(delay, callback)
        self.timers.append(timer)
        return timer

    def _on_start(self, winner: Job) -> None:
        if self.done:
            # a sibling copy started in the same instant: kill the extra
            self.grid.cancel(winner)
            return
        self.done = True
        self._settle(winner)
        tr = self.grid._tr
        if tr is not None:
            tr.complete(self, winner)
        self.finished(winner)

    def _settle(self, winner: Job | None) -> None:
        """Cancel every timer and every copy other than ``winner``.

        Also drops the task's references to its timers and copies: a
        settled task owns nothing that still needs it, and releasing
        the lists here lets plain reference counting reclaim the whole
        task island instead of leaving timer↔task cycles for the
        garbage collector to chase.
        """
        for ev in self.timers:
            ev.cancel()
        self.timers = []
        # cancelled middleware retry/ack timers never fire to decrement
        # their counter — a settled task has nothing pending by definition
        self.retry_pending = 0
        active = self.active_jobs
        self.active_jobs = []
        if len(active) == 1 and active[0] is winner:
            return  # the common single-copy win: nothing to cancel
        others = [job for job in active if job is not winner]
        if others:
            self.grid.cancel_many(others)

    def expire(self) -> None:
        """Abandon the task: mark done and cancel everything in flight."""
        if self.done:
            return
        self.done = True
        self._settle(None)
        tr = self.grid._tr
        if tr is not None:
            tr.expire(self)

    def finished(self, winner: Job) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class _StrategyTask(TaskCore):
    """A task that records ``(total latency, jobs used)`` when it finishes."""

    __slots__ = ("results", "on_done")

    def __init__(self, grid, runtime, results, *, on_done=None, **kwargs) -> None:
        super().__init__(grid, runtime, **kwargs)
        self.results = results
        self.on_done = on_done

    def finished(self, winner: Job) -> None:
        self.results.append((self.grid.now - self.t_start, self.jobs_used))
        if self.on_done is not None:
            self.on_done()


class _SingleTask(_StrategyTask):
    __slots__ = ("t_inf",)

    trace_label = "single"

    def __init__(self, grid, runtime, results, t_inf: float, **kwargs) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.t_inf = t_inf
        self._round()

    def _round(self) -> None:
        if self.done:
            return
        job = self.submit_copy()
        self.arm(self.t_inf, partial(self._timeout, job))

    def _timeout(self, job: Job) -> None:
        if self.done:
            return
        # a timed-out job still queued at a site is the client telling
        # the grid that site swallowed its work (health observation)
        self.grid.report_failed([job])
        self.grid.cancel(job)
        self._round()


class _MultipleTask(_StrategyTask):
    __slots__ = ("b", "t_inf")

    trace_label = "multiple"

    def __init__(
        self, grid, runtime, results, b: int, t_inf: float, **kwargs
    ) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.b = b
        self.t_inf = t_inf
        self._round()

    def _round(self) -> None:
        if self.done:
            return
        batch = self.submit_copies(self.b)
        self.arm(self.t_inf, partial(self._timeout, batch))

    def _timeout(self, batch: list[Job]) -> None:
        if self.done:
            return
        self.grid.report_failed(batch)
        self.grid.cancel_many(batch)
        self._round()


class _DelayedTask(_StrategyTask):
    __slots__ = ("t0", "t_inf")

    trace_label = "delayed"

    def __init__(
        self, grid, runtime, results, t0: float, t_inf: float, **kwargs
    ) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.t0 = t0
        self.t_inf = t_inf
        self._submit_next()

    def _submit_next(self) -> None:
        if self.done:
            return
        job = self.submit_copy()
        self.arm(self.t_inf, partial(self._cancel_copy, job))
        self.arm(self.t0, self._submit_next)

    def _cancel_copy(self, job: Job) -> None:
        if self.done:
            return
        self.grid.report_failed([job])
        self.grid.cancel(job)


def launch_task(
    grid: GridSimulator,
    strategy: Strategy,
    runtime: float,
    results: list,
    *,
    vo: str = "",
    via: int | str | None = None,
    on_done=None,
):
    """Start one task executing ``strategy`` on the grid *now*.

    The task submits copies, arms timers and resubmits per the strategy
    until one copy starts; it then appends ``(total latency, jobs used)``
    to ``results`` and calls ``on_done`` (if given) — the hook the
    campaign runners use to stop the simulator the instant their last
    task completes.  ``vo`` labels the copies for fair-share accounting
    and ``via`` pins a broker on federated grids — this is the
    building block :mod:`repro.population` drives fleets with.
    """
    if isinstance(strategy, SingleResubmission):
        return _SingleTask(
            grid, runtime, results, strategy.t_inf, vo=vo, via=via, on_done=on_done
        )
    if isinstance(strategy, MultipleSubmission):
        return _MultipleTask(
            grid,
            runtime,
            results,
            strategy.b,
            strategy.t_inf,
            vo=vo,
            via=via,
            on_done=on_done,
        )
    if isinstance(strategy, DelayedResubmission):
        return _DelayedTask(
            grid,
            runtime,
            results,
            strategy.t0,
            strategy.t_inf,
            vo=vo,
            via=via,
            on_done=on_done,
        )
    raise TypeError(f"unsupported strategy type {type(strategy).__name__}")


def run_strategy_on_grid(
    grid: GridSimulator,
    strategy: Strategy,
    n_tasks: int,
    *,
    task_interval: float = 300.0,
    runtime: float = 600.0,
    horizon: float = 500_000.0,
) -> StrategyOutcome:
    """Execute ``n_tasks`` independent tasks under ``strategy``.

    Tasks are launched every ``task_interval`` virtual seconds (staggered,
    as an application workflow would); each runs the strategy until one of
    its copies starts.  The simulation is advanced until all tasks finish
    or ``horizon`` virtual seconds elapse — event-driven: the last task's
    completion stops the simulator at that exact instant (no polling), so
    a saturated grid burns through its horizon in one ``run_until`` call
    instead of spinning an hourly advance loop.  Tasks that gave up keep
    their partial job counts in ``jobs_submitted`` (after the finished
    tasks' counts) rather than being dropped.

    Parameters
    ----------
    grid:
        The simulated grid (should be warmed up first).
    strategy:
        A :class:`SingleResubmission`, :class:`MultipleSubmission` or
        :class:`DelayedResubmission` instance.
    n_tasks:
        Number of independent tasks to run.
    task_interval:
        Gap between task launches (s).
    runtime:
        Execution time of the real payload once started (s).
    horizon:
        Hard stop for the whole experiment (virtual s).
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    check_positive("task_interval", task_interval)
    check_positive("horizon", horizon)
    results: list[tuple[float, int]] = []

    if not isinstance(
        strategy, (SingleResubmission, MultipleSubmission, DelayedResubmission)
    ):
        raise TypeError(f"unsupported strategy type {type(strategy).__name__}")

    tasks: list[_StrategyTask] = []
    pending = [n_tasks]

    def on_done() -> None:
        pending[0] -= 1
        if pending[0] == 0:
            grid.sim.stop()

    def launch() -> None:
        tasks.append(
            launch_task(grid, strategy, runtime, results, on_done=on_done)
        )
    for i in range(n_tasks):
        grid.sim.schedule_at(grid.now + i * task_interval, launch)

    grid.run_until(grid.now + horizon)

    j = np.array([r[0] for r in results])
    # finished tasks first (aligned with j), then the gave-up stragglers'
    # partial submission counts; tasks the horizon cut off before their
    # launch instant contribute zero jobs
    jobs = np.array(
        [r[1] for r in results]
        + [t.jobs_used for t in tasks if not t.done]
        + [0] * (n_tasks - len(tasks)),
        dtype=np.int64,
    )
    if j.size == 0:
        raise RuntimeError(
            "no task finished within the horizon — grid saturated or "
            "timeouts unreachable"
        )
    return StrategyOutcome(j=j, jobs_submitted=jobs, gave_up=n_tasks - j.size)


# -- intra-experiment parallelism -----------------------------------------


def _resolve_intra_jobs(jobs: int | None) -> int:
    """Worker count for :func:`run_strategy_batch` (env-gated by default).

    ``None`` reads ``REPRO_INTRA_JOBS`` (default 1 — sequential), so the
    fan-out composes safely with ``repro run all --jobs N``'s outer pool:
    only an explicit opt-in nests processes.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_INTRA_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_INTRA_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _bump_job_ids_past(grid: GridSimulator) -> None:
    """Advance the process-global job-id counter past any id in ``grid``.

    A snapshot unpickled in a worker carries Job objects minted in the
    parent; under a ``spawn`` start method the worker's counter restarts
    at zero, so fresh client jobs could collide with the snapshot's
    background jobs in ``running_jobs`` (the event engine keys by id).
    Ids never appear in rendered output — only within-process
    uniqueness matters.
    """
    import itertools

    from repro.gridsim import jobs as jobs_mod

    max_id = -1
    for site in grid.sites:
        for j in getattr(site, "running_jobs", {}).values():
            max_id = max(max_id, j.job_id)
        for j in getattr(site, "queue", ()):
            max_id = max(max_id, j.job_id)
        # fair-share engines queue client jobs per VO (background work
        # on the vector flavour is anonymous — no ids to collide with)
        for q in getattr(site, "_vo_queues", ()):
            for j in q:
                max_id = max(max_id, j.job_id)
        for q in getattr(site, "_clq", ()):
            for j in q:
                max_id = max(max_id, j.job_id)
    current = next(jobs_mod._job_ids)
    jobs_mod._job_ids = itertools.count(max(current, max_id + 1))


def _strategy_task(
    args: tuple[bytes, Strategy, int, dict],
) -> tuple[np.ndarray, np.ndarray, int, int]:
    payload, strategy, n_tasks, kwargs = args
    grid = pickle.loads(payload)
    _bump_job_ids_past(grid)
    out = run_strategy_on_grid(grid, strategy, n_tasks, **kwargs)
    return out.j, out.jobs_submitted, out.gave_up, grid.total_queue_length()


def run_strategy_batch(
    snapshot: GridSnapshot,
    runs: list[tuple[Strategy, int, dict]],
    *,
    jobs: int | None = None,
) -> list[tuple[StrategyOutcome, int]]:
    """Execute several strategy runs against forks of one warmed snapshot.

    Each entry of ``runs`` is ``(strategy, n_tasks, kwargs)`` for
    :func:`run_strategy_on_grid`; every run restores its own fork of
    ``snapshot``, so the runs are fully independent — which makes them
    trivially parallel.  With ``jobs > 1`` they fan out over a
    ``ProcessPoolExecutor``, shipping the snapshot's pickled payload to
    each worker (far cheaper than re-warming there); results come back
    in request order, **byte-identical** to the sequential path because
    each execution is deterministic given the snapshot.  Snapshots that
    fell back to the deep-copy representation (un-picklable grid
    attachments) cannot cross process boundaries, so those run
    sequentially regardless of ``jobs``.

    Returns ``(outcome, total_queue_length_at_end)`` per run — the queue
    length is captured in the worker, where the grid still exists.
    """
    jobs = _resolve_intra_jobs(jobs)
    payload = snapshot._payload
    if jobs > 1 and len(runs) > 1 and payload is not None:
        tasks = [(payload, s, n, kw) for s, n, kw in runs]
        with ProcessPoolExecutor(max_workers=min(jobs, len(runs))) as pool:
            raw = list(pool.map(_strategy_task, tasks))
        return [
            (StrategyOutcome(j=j, jobs_submitted=js, gave_up=g), q)
            for j, js, g, q in raw
        ]
    out = []
    for strategy, n_tasks, kwargs in runs:
        grid = snapshot.restore()
        o = run_strategy_on_grid(grid, strategy, n_tasks, **kwargs)
        out.append((o, grid.total_queue_length()))
    return out
