"""Client-side strategy executors running against the simulated grid.

These replay the paper's three strategies *mechanistically* — actual
submissions, timers and cancellations on the DES — rather than sampling
from a latency law.  They serve two purposes:

* end-to-end validation: latencies measured under the single-submission
  protocol feed the analytic model, whose predicted strategy gains are
  then compared against strategies *executed* on the same grid;
* the paper's future-work experiment: what happens when a whole fleet of
  users adopts an aggressive strategy (load feedback included), see
  :mod:`repro.experiments.adoption_sweep`.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    Strategy,
)
from repro.gridsim.grid import GridSimulator, GridSnapshot
from repro.gridsim.jobs import Job
from repro.util.validation import check_positive

__all__ = [
    "StrategyOutcome",
    "launch_task",
    "run_strategy_batch",
    "run_strategy_on_grid",
]


@dataclass(frozen=True)
class StrategyOutcome:
    """Result of executing a strategy for many tasks on the grid.

    Attributes
    ----------
    j:
        Realised total latencies of the tasks that succeeded (s).
    jobs_submitted:
        Grid jobs submitted per successful task (copies + resubmissions).
    gave_up:
        Tasks still unfinished when the simulation horizon was reached.
    """

    j: np.ndarray
    jobs_submitted: np.ndarray
    gave_up: int

    @property
    def mean_j(self) -> float:
        """Mean realised total latency."""
        return float(self.j.mean())

    @property
    def mean_jobs(self) -> float:
        """Mean number of grid jobs per task."""
        return float(self.jobs_submitted.mean())


class _TaskBase:
    """Common bookkeeping for one task executed under a strategy.

    ``vo`` labels every submitted copy (fair-share sites account them to
    that VO) and ``via`` pins the broker on federated grids; the
    defaults leave single-tenant grids byte-identical to before.
    """

    def __init__(
        self,
        grid: GridSimulator,
        runtime: float,
        results: list,
        *,
        vo: str = "",
        via: int | str | None = None,
    ) -> None:
        self.grid = grid
        self.runtime = runtime
        self.results = results
        self.vo = vo
        self.via = via
        self.t_start = grid.now
        self.jobs_used = 0
        self.done = False
        self.active_jobs: list[Job] = []
        self.timers: list = []

    def _submit_copy(self, on_start) -> Job:
        job = Job(runtime=self.runtime, tag="task", vo=self.vo)
        self.jobs_used += 1
        self.active_jobs.append(job)
        self.grid.submit(job, on_start=on_start, via=self.via)
        return job

    def _finish(self, winner: Job) -> None:
        if self.done:
            # a sibling copy started in the same instant: kill the extra
            self.grid.cancel(winner)
            return
        self.done = True
        for ev in self.timers:
            ev.cancel()
        for job in self.active_jobs:
            if job is not winner:
                self.grid.cancel(job)
        self.results.append(
            (self.grid.now - self.t_start, self.jobs_used)
        )


class _SingleTask(_TaskBase):
    def __init__(self, grid, runtime, results, t_inf: float, **kwargs) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.t_inf = t_inf
        self._round()

    def _round(self) -> None:
        if self.done:
            return
        job = self._submit_copy(self._finish)
        timer = self.grid.sim.schedule(self.t_inf, lambda: self._timeout(job))
        self.timers.append(timer)

    def _timeout(self, job: Job) -> None:
        if self.done:
            return
        self.grid.cancel(job)
        self._round()


class _MultipleTask(_TaskBase):
    def __init__(
        self, grid, runtime, results, b: int, t_inf: float, **kwargs
    ) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.b = b
        self.t_inf = t_inf
        self._round()

    def _round(self) -> None:
        if self.done:
            return
        batch = [self._submit_copy(self._finish) for _ in range(self.b)]
        timer = self.grid.sim.schedule(self.t_inf, lambda: self._timeout(batch))
        self.timers.append(timer)

    def _timeout(self, batch: list[Job]) -> None:
        if self.done:
            return
        for job in batch:
            self.grid.cancel(job)
        self._round()


class _DelayedTask(_TaskBase):
    def __init__(
        self, grid, runtime, results, t0: float, t_inf: float, **kwargs
    ) -> None:
        super().__init__(grid, runtime, results, **kwargs)
        self.t0 = t0
        self.t_inf = t_inf
        self._submit_next()

    def _submit_next(self) -> None:
        if self.done:
            return
        job = self._submit_copy(self._finish)
        self.timers.append(
            self.grid.sim.schedule(self.t_inf, lambda: self._cancel_copy(job))
        )
        self.timers.append(self.grid.sim.schedule(self.t0, self._submit_next))

    def _cancel_copy(self, job: Job) -> None:
        if self.done:
            return
        self.grid.cancel(job)


def launch_task(
    grid: GridSimulator,
    strategy: Strategy,
    runtime: float,
    results: list,
    *,
    vo: str = "",
    via: int | str | None = None,
):
    """Start one task executing ``strategy`` on the grid *now*.

    The task submits copies, arms timers and resubmits per the strategy
    until one copy starts; it then appends ``(total latency, jobs used)``
    to ``results``.  ``vo`` labels the copies for fair-share accounting
    and ``via`` pins a broker on federated grids — this is the
    building block :mod:`repro.population` drives fleets with.
    """
    if isinstance(strategy, SingleResubmission):
        return _SingleTask(grid, runtime, results, strategy.t_inf, vo=vo, via=via)
    if isinstance(strategy, MultipleSubmission):
        return _MultipleTask(
            grid, runtime, results, strategy.b, strategy.t_inf, vo=vo, via=via
        )
    if isinstance(strategy, DelayedResubmission):
        return _DelayedTask(
            grid, runtime, results, strategy.t0, strategy.t_inf, vo=vo, via=via
        )
    raise TypeError(f"unsupported strategy type {type(strategy).__name__}")


def run_strategy_on_grid(
    grid: GridSimulator,
    strategy: Strategy,
    n_tasks: int,
    *,
    task_interval: float = 300.0,
    runtime: float = 600.0,
    horizon: float = 500_000.0,
) -> StrategyOutcome:
    """Execute ``n_tasks`` independent tasks under ``strategy``.

    Tasks are launched every ``task_interval`` virtual seconds (staggered,
    as an application workflow would); each runs the strategy until one of
    its copies starts.  The simulation is advanced until all tasks finish
    or ``horizon`` virtual seconds elapse.

    Parameters
    ----------
    grid:
        The simulated grid (should be warmed up first).
    strategy:
        A :class:`SingleResubmission`, :class:`MultipleSubmission` or
        :class:`DelayedResubmission` instance.
    n_tasks:
        Number of independent tasks to run.
    task_interval:
        Gap between task launches (s).
    runtime:
        Execution time of the real payload once started (s).
    horizon:
        Hard stop for the whole experiment (virtual s).
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    check_positive("task_interval", task_interval)
    check_positive("horizon", horizon)
    results: list[tuple[float, int]] = []

    if not isinstance(
        strategy, (SingleResubmission, MultipleSubmission, DelayedResubmission)
    ):
        raise TypeError(f"unsupported strategy type {type(strategy).__name__}")

    def launch() -> None:
        launch_task(grid, strategy, runtime, results)
    for i in range(n_tasks):
        grid.sim.schedule_at(grid.now + i * task_interval, launch)

    deadline = grid.now + horizon
    while grid.now < deadline and len(results) < n_tasks:
        grid.run_until(min(grid.now + 3600.0, deadline))

    j = np.array([r[0] for r in results])
    jobs = np.array([r[1] for r in results], dtype=np.int64)
    if j.size == 0:
        raise RuntimeError(
            "no task finished within the horizon — grid saturated or "
            "timeouts unreachable"
        )
    return StrategyOutcome(j=j, jobs_submitted=jobs, gave_up=n_tasks - j.size)


# -- intra-experiment parallelism -----------------------------------------


def _resolve_intra_jobs(jobs: int | None) -> int:
    """Worker count for :func:`run_strategy_batch` (env-gated by default).

    ``None`` reads ``REPRO_INTRA_JOBS`` (default 1 — sequential), so the
    fan-out composes safely with ``repro run all --jobs N``'s outer pool:
    only an explicit opt-in nests processes.
    """
    if jobs is None:
        raw = os.environ.get("REPRO_INTRA_JOBS", "1")
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_INTRA_JOBS must be an integer, got {raw!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _bump_job_ids_past(grid: GridSimulator) -> None:
    """Advance the process-global job-id counter past any id in ``grid``.

    A snapshot unpickled in a worker carries Job objects minted in the
    parent; under a ``spawn`` start method the worker's counter restarts
    at zero, so fresh client jobs could collide with the snapshot's
    background jobs in ``running_jobs`` (the event engine keys by id).
    Ids never appear in rendered output — only within-process
    uniqueness matters.
    """
    import itertools

    from repro.gridsim import jobs as jobs_mod

    max_id = -1
    for site in grid.sites:
        for j in getattr(site, "running_jobs", {}).values():
            max_id = max(max_id, j.job_id)
        for j in getattr(site, "queue", ()):
            max_id = max(max_id, j.job_id)
        # fair-share engines queue per VO (the event flavour holds Jobs,
        # the vector flavour holds Jobs mixed with bg tuples)
        for q in getattr(site, "_vo_queues", ()):
            for j in q:
                max_id = max(max_id, j.job_id)
        for q in getattr(site, "_voq", ()):
            for j in q:
                if isinstance(j, Job):
                    max_id = max(max_id, j.job_id)
    current = next(jobs_mod._job_ids)
    jobs_mod._job_ids = itertools.count(max(current, max_id + 1))


def _strategy_task(
    args: tuple[bytes, Strategy, int, dict],
) -> tuple[np.ndarray, np.ndarray, int, int]:
    payload, strategy, n_tasks, kwargs = args
    grid = pickle.loads(payload)
    _bump_job_ids_past(grid)
    out = run_strategy_on_grid(grid, strategy, n_tasks, **kwargs)
    return out.j, out.jobs_submitted, out.gave_up, grid.total_queue_length()


def run_strategy_batch(
    snapshot: GridSnapshot,
    runs: list[tuple[Strategy, int, dict]],
    *,
    jobs: int | None = None,
) -> list[tuple[StrategyOutcome, int]]:
    """Execute several strategy runs against forks of one warmed snapshot.

    Each entry of ``runs`` is ``(strategy, n_tasks, kwargs)`` for
    :func:`run_strategy_on_grid`; every run restores its own fork of
    ``snapshot``, so the runs are fully independent — which makes them
    trivially parallel.  With ``jobs > 1`` they fan out over a
    ``ProcessPoolExecutor``, shipping the snapshot's pickled payload to
    each worker (far cheaper than re-warming there); results come back
    in request order, **byte-identical** to the sequential path because
    each execution is deterministic given the snapshot.  Snapshots that
    fell back to the deep-copy representation (un-picklable grid
    attachments) cannot cross process boundaries, so those run
    sequentially regardless of ``jobs``.

    Returns ``(outcome, total_queue_length_at_end)`` per run — the queue
    length is captured in the worker, where the grid still exists.
    """
    jobs = _resolve_intra_jobs(jobs)
    payload = snapshot._payload
    if jobs > 1 and len(runs) > 1 and payload is not None:
        tasks = [(payload, s, n, kw) for s, n, kw in runs]
        with ProcessPoolExecutor(max_workers=min(jobs, len(runs))) as pool:
            raw = list(pool.map(_strategy_task, tasks))
        return [
            (StrategyOutcome(j=j, jobs_submitted=js, gave_up=g), q)
            for j, js, g, q in raw
        ]
    out = []
    for strategy, n_tasks, kwargs in runs:
        grid = snapshot.restore()
        o = run_strategy_on_grid(grid, strategy, n_tasks, **kwargs)
        out.append((o, grid.total_queue_length()))
    return out
