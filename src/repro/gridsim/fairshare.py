"""Per-VO fair-share scheduling at computing elements.

Production grids are multi-tenant: a site's batch system splits its
capacity between virtual organisations according to negotiated *shares*,
usually with an exponentially decayed usage window (Maui/Moab and SLURM
style fair-share).  This module adds that layer on top of both site
engines without touching them:

* :class:`FairShareState` — the accounting common to both engines: one
  decayed CPU-usage counter per VO, compared as ``usage/share`` (lowest
  ratio wins the next free core).  Decay is *lazy and closed-form*
  (``usage · 2^{-Δt/halflife}``), so no per-interval decay events exist
  and the two engines apply bit-identical arithmetic.
* :class:`FairShareComputingElement` — the event oracle: per-VO FIFO
  queues in front of the same core pool; every free core is handed to
  the head job of the most underserved VO.
* :class:`FairShareVectorComputingElement` — the production engine: the
  chunked background lane carries a VO label per arrival
  (:meth:`~FairShareVectorComputingElement.feed_background` grows a
  third array), and the Lindley commit loop resolves fair-share priority
  at every start while still creating **zero events and zero Job
  objects** for background work.

With a single configured VO both schedulers degrade to plain FIFO over
one queue and charge/decay arithmetic that never influences a decision,
so their client traces and telemetry are *exactly* those of the plain
engines (pinned by ``tests/test_fairshare.py``); grids whose sites
declare fewer than two VOs are wired with the plain engines anyway.

Scheduling equivalence caveat (inherited from the base engines): traces
are bit-identical wherever no same-timestamp tie interposes a completion
and an arrival — measure-zero under continuous laws.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from functools import partial
from heapq import heapreplace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.site import ComputingElement, VectorComputingElement

__all__ = [
    "FairShareState",
    "FairShareComputingElement",
    "FairShareVectorComputingElement",
]

#: default decay half-life of the fair-share usage window (s)
DEFAULT_HALFLIFE = 86_400.0

_INF = math.inf


def normalize_vo_shares(
    vo_shares: Iterable[tuple[str, float]],
) -> tuple[tuple[str, float], ...]:
    """Validate ``(name, share)`` pairs and normalise shares to sum 1."""
    pairs = tuple(vo_shares)
    if not pairs:
        raise ValueError("vo_shares must name at least one VO")
    names = []
    raw = []
    for entry in pairs:
        try:
            name, share = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"vo_shares entries must be (name, share) pairs, got {entry!r}"
            ) from None
        if not isinstance(name, str) or not name:
            raise ValueError(f"VO name must be a non-empty string, got {name!r}")
        share = float(share)
        if not math.isfinite(share) or share <= 0.0:
            raise ValueError(f"share of VO {name!r} must be > 0, got {share!r}")
        names.append(name)
        raw.append(share)
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ValueError(f"duplicate VO name(s): {', '.join(sorted(dupes))}")
    total = sum(raw)
    return tuple((n, s / total) for n, s in zip(names, raw))


class FairShareState:
    """Decayed per-VO usage accounting driving scheduling decisions.

    The scheduler keeps one usage counter per VO: every dispatched job
    charges its (requested) runtime to its VO at the start instant, and
    counters decay with half-life ``halflife`` so old consumption stops
    counting against a VO.  Priority is the classic underserved-first
    rule — the candidate minimising ``usage/share`` wins, registration
    order breaking exact ties deterministically.

    Decay is applied lazily inside :meth:`select` / :meth:`charge` only,
    with the identical call sequence on both site engines, so usage
    floats (and therefore decisions) stay bit-identical across engines.
    Telemetry reads go through :meth:`decayed_usage`, which never
    commits a decay step.
    """

    __slots__ = ("names", "shares", "halflife", "_index", "_usage", "_last")

    def __init__(
        self,
        vo_shares: Iterable[tuple[str, float]],
        halflife: float = DEFAULT_HALFLIFE,
    ) -> None:
        pairs = normalize_vo_shares(vo_shares)
        if not halflife > 0.0:  # math.inf allowed: no decay
            raise ValueError(f"halflife must be > 0, got {halflife!r}")
        self.names: tuple[str, ...] = tuple(n for n, _ in pairs)
        self.shares: tuple[float, ...] = tuple(s for _, s in pairs)
        self.halflife = float(halflife)
        self._index = {n: i for i, n in enumerate(self.names)}
        self._usage = [0.0] * len(self.names)
        self._last = 0.0

    def index_of(self, vo: str) -> int:
        """VO index for a job label; unknown/empty labels map to VO 0."""
        return self._index.get(vo, 0)

    def _decay_to(self, t: float) -> None:
        if t > self._last:
            f = 0.5 ** ((t - self._last) / self.halflife)
            usage = self._usage
            for k in range(len(usage)):
                usage[k] *= f
            self._last = t

    def select(self, candidates: Sequence[int], t: float) -> int:
        """The most underserved VO among ``candidates`` at time ``t``."""
        self._decay_to(t)
        usage = self._usage
        shares = self.shares
        best = candidates[0]
        best_ratio = usage[best] / shares[best]
        for v in candidates[1:]:
            ratio = usage[v] / shares[v]
            if ratio < best_ratio:
                best = v
                best_ratio = ratio
        return best

    def charge(self, vo: int, cpu: float, t: float) -> None:
        """Account ``cpu`` seconds to VO ``vo`` at time ``t``."""
        self._decay_to(t)
        self._usage[vo] += cpu

    def fork(self) -> "FairShareState":
        """An independent copy (for non-committing start predictions)."""
        clone = FairShareState.__new__(FairShareState)
        clone.names = self.names
        clone.shares = self.shares
        clone.halflife = self.halflife
        clone._index = self._index
        clone._usage = list(self._usage)
        clone._last = self._last
        return clone

    def reset_from(self, other: "FairShareState") -> None:
        """Reset in place to mirror ``other`` (reusable scratch forks).

        The wake predictor replays the commit recurrence on a fork per
        prediction; resetting one long-lived scratch instead of
        allocating a fresh copy keeps the hot path allocation-free.
        Only the mutable accounting (usage vector, decay timestamp) is
        copied — the VO table is assumed shared.
        """
        u = self._usage
        ou = other._usage
        for k in range(len(u)):
            u[k] = ou[k]
        self._last = other._last

    def decayed_usage(self, t: float) -> list[float]:
        """Usage decayed to ``t`` *without* committing the decay step."""
        f = 0.5 ** (max(t - self._last, 0.0) / self.halflife)
        return [u * f for u in self._usage]

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


class _PerJobBatchOps:
    """Per-job batch fallbacks for the fair-share engines.

    The plain engines implement :meth:`enqueue_many` /
    :meth:`cancel_many` as genuinely batched passes; the fair-share
    flavours keep per-VO bookkeeping inside ``enqueue``/``cancel``, so
    their batch entry points stay simple loops — identical on both
    flavours, which is what keeps the engine pair's client traces
    comparable.
    """

    def enqueue_many(self, jobs: Sequence[Job]) -> int:
        n = 0
        for job in jobs:
            if job.state in (JobState.MATCHING, JobState.CREATED):
                self.enqueue(job)
                n += 1
        return n

    def cancel_many(self, jobs: Sequence[Job]) -> int:
        n = 0
        for job in jobs:
            if self.cancel(job):
                n += 1
        return n


class _VoTelemetry:
    """Per-VO telemetry shared by both fair-share engines."""

    fairshare: FairShareState

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:  # pragma: no cover
        raise NotImplementedError

    def vo_queue_lengths(self) -> dict[str, int]:
        """Waiting jobs per VO (husks discounted)."""
        return dict(self._vo_queue_pairs())

    def usage_shares(self) -> dict[str, float]:
        """Each VO's fraction of the decayed usage window (0 when idle)."""
        advance = getattr(self, "_advance", None)
        if advance is not None:  # vector lane: reading usage reconciles
            advance()
        usage = self.fairshare.decayed_usage(self.sim._now)
        total = sum(usage)
        if total <= 0.0:
            return {n: 0.0 for n in self.fairshare.names}
        return {n: u / total for n, u in zip(self.fairshare.names, usage)}


class FairShareComputingElement(_VoTelemetry, _PerJobBatchOps, ComputingElement):
    """Event-driven oracle with per-VO queues and fair-share dispatch.

    Identical core pool and event mechanics as
    :class:`~repro.gridsim.site.ComputingElement`; the only change is
    *which* queued job a free core takes: the head of the queue of the
    VO minimising decayed ``usage/share``.
    """

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        vo_shares: Iterable[tuple[str, float]],
        fairshare_halflife: float = DEFAULT_HALFLIFE,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        super().__init__(name, n_cores, sim, on_start=on_start)
        self.fairshare = FairShareState(vo_shares, fairshare_halflife)
        self._vo_queues: list[deque[Job]] = [
            deque() for _ in self.fairshare.names
        ]
        self._vo_husks = [0] * len(self.fairshare.names)

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = self.sim._now
        self._vo_queues[self.fairshare.index_of(job.vo)].append(job)
        if self.free_cores > 0 and self.dispatch_enabled:
            self._try_start()

    def cancel(self, job: Job) -> bool:
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False
            job.state = JobState.CANCELLED
            self._vo_husks[self.fairshare.index_of(job.vo)] += 1
            return True
        return super().cancel(job)

    def begin_black_hole(self) -> None:
        """Fail the per-VO queues, then flip via the base hook."""
        if self.black_hole:
            return
        now = self.sim._now
        on_fail = self.on_fail
        for v, q in enumerate(self._vo_queues):
            for job in q:
                if job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.FAILED
                job.end_time = now
                self.jobs_failed_bh += 1
                if on_fail is not None and job.tag != "background":
                    on_fail(job)
            q.clear()
            self._vo_husks[v] = 0
        # the base hook drains the (unused, empty) plain queue and kills
        # everything running, freeing the cores
        super().begin_black_hole()

    # -- internals -------------------------------------------------------

    def _pop_next(self) -> tuple[Job | None, int]:
        """Head job of the most underserved VO (husks dropped lazily)."""
        candidates = []
        for v, q in enumerate(self._vo_queues):
            while q and q[0].state is not JobState.QUEUED:
                q.popleft()
                self._vo_husks[v] -= 1
            if q:
                candidates.append(v)
        if not candidates:
            return None, -1
        v = self.fairshare.select(candidates, self.sim._now)
        return self._vo_queues[v].popleft(), v

    def _try_start(self) -> None:
        if not self.dispatch_enabled:
            return
        while self.free_cores > 0:
            job, v = self._pop_next()
            if job is None:
                return
            self.free_cores -= 1
            job.state = JobState.RUNNING
            job.start_time = self.sim._now
            self.jobs_started += 1
            # charge before the callback: a re-entrant cancel must see
            # updated usage
            self.fairshare.charge(v, job.runtime, self.sim._now)
            job.completion_event = self.sim.schedule(
                job.runtime, partial(self._complete, job)
            )
            self.running_jobs[job.job_id] = job
            if self.on_start is not None and job.tag != "background":
                self.on_start(job)

    def _complete(self, job: Job) -> None:
        job.completion_event = None
        self.running_jobs.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            return  # killed in the meantime
        job.state = JobState.COMPLETED
        job.end_time = self.sim._now
        self.jobs_completed += 1
        self.free_cores += 1
        if self.dispatch_enabled:
            self._try_start()

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return sum(map(len, self._vo_queues)) - sum(self._vo_husks)

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:
        return [
            (n, len(q) - h)
            for n, q, h in zip(
                self.fairshare.names, self._vo_queues, self._vo_husks
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FairShareCE({self.name}, cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )


class FairShareVectorComputingElement(_VoTelemetry, _PerJobBatchOps, VectorComputingElement):
    """Two-lane engine with VO-labelled background and fair-share commits.

    The background lane is sharded per VO at feed time
    (:meth:`feed_background` demuxes each chunk into per-VO
    arrival/runtime arrays), so the commit loop never materialises
    per-arrival tuples or mixed queues: each VO exposes one *head
    arrival* — the earlier of its next background entry and its first
    queued client job, background winning exact ties (the arrival-order
    rule of the event oracle) — and the loop resolves starts straight
    off those heads.  Background work still creates **zero events and
    zero Job objects**.

    Commits run *block-resolved* by default (:attr:`block_commits`):
    between client interactions the winner sequence of the
    ``usage/share`` rule is a deterministic function of the decayed
    usage vector, the per-VO heads, and the core free-time heap, so
    maximal background-only runs are committed in one fused pass over
    plain locals — replaying the exact ``2^{-Δt/halflife}`` decay
    ladder and ``usage/share`` argmin the per-start loop commits, so
    every float (and therefore every decision) is bit-identical.  The
    pass falls back to per-start handling the moment a client job wins
    a core (its ``on_start`` callback may re-enter the site) or a
    block boundary is hit — a commit instant past ``now``, an empty
    grid, or a dispatch-gate flip.  Flipping :attr:`block_commits` off
    routes every commit through the per-start
    :class:`FairShareState`-method loop instead; the equivalence suite
    runs both and compares traces bit-for-bit.

    The single wake is aimed at the earliest predicted *client* start,
    computed by replaying the identical commit recurrence on a
    reusable scratch fork of the fair-share state; a later background
    chunk can only postpone that instant (new work competes for
    cores), never advance it, so a stale wake fires early, commits
    nothing, and re-aims itself.
    """

    #: commit background-only runs as fused blocks (the production
    #: path); ``False`` resolves every start through the per-start
    #: ``FairShareState`` method loop — same floats, kept as the
    #: in-process oracle for the equivalence suite
    block_commits: bool = True

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        vo_shares: Iterable[tuple[str, float]],
        fairshare_halflife: float = DEFAULT_HALFLIFE,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        super().__init__(name, n_cores, sim, on_start=on_start)
        self.fairshare = FairShareState(vo_shares, fairshare_halflife)
        nvo = len(self.fairshare.names)
        #: per-VO pending background arrivals (sorted) and runtimes;
        #: entries before the per-VO cursor ``_bgc[v]`` are committed
        self._bga: list[list[float]] = [[] for _ in range(nvo)]
        self._bgr: list[list[float]] = [[] for _ in range(nvo)]
        self._bgc: list[int] = [0] * nvo
        #: committed background entries trimmed off the array fronts
        self._bg_trimmed = 0
        #: queued client jobs per VO (husks skipped lazily)
        self._clq: list[deque[Job]] = [deque() for _ in range(nvo)]
        self._vo_husks = [0] * nvo
        #: queued (live) client jobs across all VO queues — O(1) guard
        #: for the wake predictor instead of a full-queue scan
        self._live_clients = 0
        #: fair-share flavour of the base lane's next-commit memo: the
        #: decision loop exits record when the next start can happen, so
        #: reconciliation points before that instant return immediately
        self._next_due = 0.0
        #: reusable scratch fork for the wake predictor (lazily created,
        #: reset in place per prediction — no allocation on the hot path)
        self._pred_scratch: FairShareState | None = None
        #: per-VO head rows of the block resolver (merged head arrivals
        #: and their background/client components).  Valid whenever
        #: ``_heads_mut == _mut``: the commit loop maintains them
        #: through its own commits (including nested re-entrant walks —
        #: the rows are shared in place), ``enqueue`` patches them in
        #: O(1), and every other queue mutator bumps ``_mut`` so the
        #: next walk rebuilds
        self._heads = [0.0] * nvo
        self._bheads = [0.0] * nvo
        self._cheads = [0.0] * nvo
        self._mut = 0
        self._heads_mut = -1

    # -- background lane ---------------------------------------------------

    def feed_background(
        self,
        times: list[float],
        runtimes: list[float],
        vos: list[int] | None = None,
    ) -> None:
        """Append a chunk of VO-labelled background arrivals.

        The chunk is demuxed into the per-VO arrays here (one vectorised
        mask per VO): per-VO subsequences of a globally sorted chunk stay
        sorted, so the commit loop reads heads with no merge step.
        ``vos=None`` routes everything to VO 0.
        """
        n = len(times)
        if vos is not None and len(vos) != n:
            raise ValueError(
                f"vos has {len(vos)} entries for {n} arrivals"
            )
        self._advance()
        bga, bgr, bgc = self._bga, self._bgr, self._bgc
        for v in range(len(bgc)):
            c = bgc[v]
            if c:
                # trim committed prefixes so pending arrays stay
                # chunk-sized on healthy sites
                del bga[v][:c]
                del bgr[v][:c]
                self._bg_trimmed += c
                bgc[v] = 0
        if not n:
            return
        if vos is None:
            bga[0].extend(times)
            bgr[0].extend(runtimes)
        else:
            va = np.asarray(vos, dtype=np.intp)
            ta = np.asarray(times)
            ra = np.asarray(runtimes)
            routed = 0
            for v in range(len(bga)):
                m = va == v
                k = int(m.sum())
                if k:
                    bga[v].extend(ta[m].tolist())
                    bgr[v].extend(ra[m].tolist())
                    routed += k
            if routed != n:
                raise ValueError(
                    f"background VO labels out of range for {len(bga)} VOs"
                )
        self._mut += 1
        nd = times[0]
        if nd < self._next_due:
            # an arrival can never start before it lands, so the memo
            # only needs lowering to the chunk head — all-future feeds
            # leave the walk deferred
            self._next_due = nd

    def background_delivered(self) -> int:
        self._advance()
        now = self.sim._now
        n = self._bg_trimmed
        for a in self._bga:
            n += bisect_right(a, now)
        return n

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        now = self.sim._now
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = now
        # commit anything due before the newcomer joins the competition:
        # a start resolved at d == now by this reconciliation must not
        # see the new client as a candidate (the order a per-event
        # engine's earlier-scheduled events would enforce)
        if now >= self._next_due:
            self._advance()
        vi = self.fairshare.index_of(job.vo)
        self._clq[vi].append(job)
        self._live_clients += 1
        if self._heads_mut == self._mut:
            # O(1) head patch: a newcomer joins the back of its VO's
            # FIFO, so it becomes the client head only when there was
            # no live head before it.  The pre-walk above may have
            # started a sibling copy whose settle cancelled this very
            # job (state/site are already stamped), so a husk can reach
            # this point: it must not be installed as the head
            if job.state is JobState.QUEUED and self._cheads[vi] == _INF:
                self._cheads[vi] = now
                if self._heads[vi] > now:
                    self._heads[vi] = now
        e = self._core_free[0]
        if self._dispatch_floor > e:
            e = self._dispatch_floor
        if e <= now:
            # a core is free: the newcomer (or a competitor it displaces
            # to a later slot) may start this very instant
            self._next_due = 0.0
            self._advance()
        elif e < self._next_due:
            # every core is busy past now — no start can happen before
            # ``e``, so lowering the memo there keeps the walk deferred
            self._next_due = e
        if job.state is JobState.QUEUED:
            self._defer_wake()

    def cancel(self, job: Job) -> bool:
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False
            job.state = JobState.CANCELLED
            self._vo_husks[self.fairshare.index_of(job.vo)] += 1
            self._live_clients -= 1
            self._mut += 1  # the husk may be its VO's cached head
            # a removed competitor can advance any waiting client's
            # predicted start: re-aim, at worst early
            self._defer_wake()
            return True
        return super().cancel(job)

    def begin_black_hole(self) -> None:
        """Fail both per-VO lanes, then flip via the base hook.

        Queued client jobs fail with their ``on_fail`` notification;
        arrived-but-unstarted background entries are consumed as
        anonymous failures.  The base hook then only has running work
        left to kill (its own background arrays are unused and empty).
        """
        if self.black_hole:
            return
        self._advance()
        now = self.sim._now
        on_fail = self.on_fail
        failed = 0
        for v, q in enumerate(self._clq):
            for job in q:
                if job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.FAILED
                job.end_time = now
                failed += 1
                if on_fail is not None and job.tag != "background":
                    on_fail(job)
            q.clear()
            self._vo_husks[v] = 0
            a = self._bga[v]
            c = self._bgc[v]
            j = bisect_right(a, now, c)
            failed += j - c
            self._bgc[v] = j
        self.jobs_failed_bh += failed
        self._live_clients = 0
        self._mut += 1
        super().begin_black_hole()

    def end_black_hole(self) -> None:
        """Resume normal operation; arrivals during the hole stay failed."""
        if not self.black_hole:
            return
        self._drain_hole(self.sim._now)
        super().end_black_hole()

    def _drain_hole(self, t: float) -> None:
        """Consume per-VO background arrivals <= ``t`` as failures."""
        bga, bgc = self._bga, self._bgc
        failed = 0
        for v in range(len(bgc)):
            c = bgc[v]
            j = bisect_right(bga[v], t, c)
            if j > c:
                failed += j - c
                bgc[v] = j
        if failed:
            self.jobs_failed_bh += failed
            self._mut += 1

    # -- the fair-share commit loop ----------------------------------------

    def _advance(self) -> None:
        """Commit every start with start time <= now, fair-share order.

        Each start's decision instant ``d`` is the first moment a free
        core and an arrived job coexist — ``max(min core-free, dispatch
        floor)``, pushed up to the earliest pending arrival when every
        head is still in the future (the idle-core case, where the
        plain engine's ``max(arrival, m)`` applies).  All VOs whose
        head arrived by ``d`` compete and the decayed ``usage/share``
        argmin picks the winner; commits stop as soon as ``d`` passes
        now, memoising that instant in ``_next_due``.
        """
        t = self.sim._now
        ends = self._client_ends
        if ends and ends[0][0] <= t:
            self._drain_completions()
        if self.black_hole:
            # arrivals inside a hole fail instantly, never occupying cores
            self._drain_hole(t)
            return
        if t < self._next_due or not self.dispatch_enabled:
            return
        if self.block_commits:
            self._commit_block(t)
        else:
            self._commit_scalar(t)

    def _commit_block(self, t: float) -> None:
        """Block-resolved commits: fused decay/argmin over plain locals.

        Background-only runs are resolved without a single method call
        or attribute write — the decay ladder multiplies the usage
        vector in place, the argmin scans the per-VO heads, the winner
        bumps its VO cursor — and shared state is written back only at
        block boundaries: before a client start callback (which may
        re-enter this site) and at every exit.  The float sequence is
        exactly the one :meth:`_commit_scalar` commits.
        """
        fs = self.fairshare
        usage = fs._usage
        shares = fs.shares
        halflife = fs.halflife
        last = fs._last
        bga, bgr, bgc = self._bga, self._bgr, self._bgc
        clq = self._clq
        husks = self._vo_husks
        nvo = len(bgc)
        rng = range(nvo)
        cf = self._core_free
        floor = self._dispatch_floor
        INF = _INF
        QUEUED = JobState.QUEUED
        heads = self._heads
        bheads = self._bheads
        cheads = self._cheads
        started = 0
        refill = self._mut != self._heads_mut
        while True:
            if refill:
                refill = False
                self._heads_mut = self._mut
                for v in rng:
                    a = bga[v]
                    c = bgc[v]
                    b = a[c] if c < len(a) else INF
                    bheads[v] = b
                    q = clq[v]
                    while q:
                        head = q[0]
                        if head.state is QUEUED:
                            j = head.queue_time
                            break
                        q.popleft()
                        husks[v] -= 1
                    else:
                        j = INF
                    cheads[v] = j
                    heads[v] = b if b <= j else j
            d = cf[0]
            if floor > d:
                d = floor
            if d > t:
                fs._last = last
                self._started += started
                self._next_due = d
                return
            a0 = heads[0]
            for v in rng:
                h = heads[v]
                if h < a0:
                    a0 = h
            if a0 > d:
                if a0 > t:
                    fs._last = last
                    self._started += started
                    self._next_due = a0  # inf when both lanes are empty
                    return
                d = a0  # idle core: the next arrival starts when it lands
            # the exact decay ladder the per-start loop commits
            if d > last:
                f = 0.5 ** ((d - last) / halflife)
                for k in rng:
                    usage[k] *= f
                last = d
            best = -1
            br = 0.0
            for v in rng:
                if heads[v] <= d:
                    r = usage[v] / shares[v]
                    if best < 0 or r < br:
                        best = v
                        br = r
            v = best
            b = bheads[v]
            if b <= cheads[v]:
                # the background head wins (ties go to background — the
                # arrival-order rule of the mixed queue)
                c = bgc[v]
                r = bgr[v][c]
                heapreplace(cf, d + r)
                usage[v] += r
                started += 1
                c += 1
                bgc[v] = c
                a = bga[v]
                nb = a[c] if c < len(a) else INF
                bheads[v] = nb
                j = cheads[v]
                heads[v] = nb if nb <= j else j
            else:
                q = clq[v]
                # cheads[v] names the first *QUEUED* client's arrival,
                # but cancelled husks may still sit in front of it (the
                # O(1) enqueue patch installs a head without scanning
                # the deque) — drop them at pop time, as the per-start
                # loop does
                job = q.popleft()
                while job.state is not QUEUED:
                    husks[v] -= 1
                    job = q.popleft()
                self._live_clients -= 1
                r = job.runtime
                heapreplace(cf, d + r)
                usage[v] += r
                started += 1
                # patch the winner's head rows before the start callback
                # so they stay valid for nested walks (and for the cheap
                # path below when the callback leaves the queues alone)
                while q:
                    head = q[0]
                    if head.state is QUEUED:
                        j = head.queue_time
                        break
                    q.popleft()
                    husks[v] -= 1
                else:
                    j = INF
                cheads[v] = j
                b = bheads[v]
                heads[v] = b if b <= j else j
                # block boundary: write shared state back before the
                # start callback — it may cancel siblings here, re-enter
                # _advance, or read telemetry
                fs._last = last
                self._started += started
                started = 0
                self._start_client(job, d)
                if not self.dispatch_enabled:
                    return  # end_outage resets the memo
                cf = self._core_free
                floor = self._dispatch_floor
                last = fs._last
                refill = self._mut != self._heads_mut

    def _commit_scalar(self, t: float) -> None:
        """Per-start oracle of the block resolver (``block_commits=False``).

        One start per iteration through the :class:`FairShareState`
        method calls — ``select`` then ``charge`` at the same decision
        instant, the call sequence both fair-share engines have always
        committed.  The block path must replay this loop's float ladder
        bit-for-bit; ``tests/test_fairshare_block.py`` holds it to that.
        """
        fs = self.fairshare
        bga, bgr, bgc = self._bga, self._bgr, self._bgc
        clq = self._clq
        husks = self._vo_husks
        nvo = len(bgc)
        INF = _INF
        QUEUED = JobState.QUEUED
        # this path pops queues without maintaining the cached head rows
        self._heads_mut = -1
        while True:
            cf = self._core_free
            d = cf[0]
            if self._dispatch_floor > d:
                d = self._dispatch_floor
            if d > t:
                self._next_due = d
                return
            # per-VO head arrivals: background vs first live client,
            # background winning exact ties (arrival order)
            heads = []
            a0 = INF
            for v in range(nvo):
                a = bga[v]
                c = bgc[v]
                b = a[c] if c < len(a) else INF
                q = clq[v]
                while q and q[0].state is not QUEUED:
                    q.popleft()
                    husks[v] -= 1
                j = q[0].queue_time if q else INF
                arr = b if b <= j else j
                heads.append((arr, b))
                if arr < a0:
                    a0 = arr
            if a0 > d:
                if a0 > t:
                    self._next_due = a0  # inf when both lanes are empty
                    return
                d = a0  # idle core: the next arrival starts when it lands
            candidates = [v for v in range(nvo) if heads[v][0] <= d]
            v = fs.select(candidates, d)
            arr, b = heads[v]
            if b <= arr:  # the background head wins its VO slot
                c = bgc[v]
                r = bgr[v][c]
                heapreplace(cf, d + r)
                fs.charge(v, r, d)
                bgc[v] = c + 1
                self._started += 1
            else:
                job = clq[v].popleft()
                self._live_clients -= 1
                heapreplace(cf, d + job.runtime)
                fs.charge(v, job.runtime, d)
                self._started += 1
                self._start_client(job, d)
                # the callback may cancel siblings here or close the
                # gate — state is re-read from self at the loop head
                if not self.dispatch_enabled:
                    return

    # -- the wake ----------------------------------------------------------

    def _defer_wake(self) -> None:
        """Bound the wake early instead of predicting per queue change.

        A queue mutation can move the earliest client start, but never
        before ``max(now, next core release, dispatch floor)`` — so the
        wake is (re-)aimed there when it sits later, and the full replay
        prediction is deferred to the wake instant itself.  An early
        wake is always safe: it commits whatever is ready and re-aims
        with a real prediction.  Bursts of enqueues and sibling cancels
        therefore coalesce into one prediction per release instant
        instead of one replay per job — the difference that keeps
        fair-share grids affordable under 10⁵-task populations.
        """
        if not self.dispatch_enabled:
            return  # re-armed by end_outage
        w = self._wake
        if self._live_clients <= 0:
            if w is not None:
                w.cancel()
                self._wake = None
            return
        e = self._core_free[0]
        if self._dispatch_floor > e:
            e = self._dispatch_floor
        now = self.sim._now
        if now > e:
            e = now
        if w is not None:
            if not w.cancelled and w.time <= e:
                return
            w.cancel()
        self._wake = self.sim.schedule_at(e, self._on_wake)

    def _ensure_wake(self) -> None:
        if not self.dispatch_enabled:
            return  # re-armed by end_outage
        s = self._predict_next_client_start()
        w = self._wake
        if s is None:
            if w is not None:
                w.cancel()
                self._wake = None
            return
        if w is not None:
            if not w.cancelled and w.time == s:
                return
            w.cancel()
        self._wake = self.sim.schedule_at(s, self._on_wake)

    def _predict_next_client_start(self) -> float | None:
        """Earliest client start, by replaying the commit recurrence.

        Runs the exact block-resolver arithmetic — heap, decay ladder,
        ``usage/share`` argmin — on private copies (local cursor list,
        copied heap, the reusable scratch fork of the fair-share
        state), stopping the moment a client head wins a core.  Client
        heads never pop during a replay (the first one to win *is* the
        answer), so one live head per VO suffices.  Nothing is ever
        committed: the live usage vector and decay timestamp are
        untouched.  ``None`` when no client is queued.
        """
        if self._live_clients <= 0:
            return None
        QUEUED = JobState.QUEUED
        fs = self.fairshare
        scratch = self._pred_scratch
        if scratch is None:
            scratch = self._pred_scratch = fs.fork()
        else:
            scratch.reset_from(fs)
        usage = scratch._usage
        shares = scratch.shares
        halflife = scratch.halflife
        last = scratch._last
        h = self._core_free.copy()
        floor = self._dispatch_floor
        bga, bgr = self._bga, self._bgr
        cc = list(self._bgc)
        nvo = len(cc)
        rng = range(nvo)
        INF = _INF
        cheads = [INF] * nvo
        for v in rng:
            for job in self._clq[v]:
                if job.state is QUEUED:
                    cheads[v] = job.queue_time
                    break
        bheads = [0.0] * nvo
        heads = [0.0] * nvo
        for v in rng:
            a = bga[v]
            c = cc[v]
            b = a[c] if c < len(a) else INF
            bheads[v] = b
            j = cheads[v]
            heads[v] = b if b <= j else j
        while True:
            d = h[0]
            if floor > d:
                d = floor
            a0 = heads[0]
            for v in rng:
                hv = heads[v]
                if hv < a0:
                    a0 = hv
            if a0 > d:
                if a0 == INF:  # pragma: no cover - a queued client remains
                    return None
                d = a0
            if d > last:
                f = 0.5 ** ((d - last) / halflife)
                for k in rng:
                    usage[k] *= f
                last = d
            best = -1
            br = 0.0
            for v in rng:
                if heads[v] <= d:
                    r = usage[v] / shares[v]
                    if best < 0 or r < br:
                        best = v
                        br = r
            v = best
            b = bheads[v]
            if b > cheads[v]:
                return d  # the client head wins this core
            c = cc[v]
            r = bgr[v][c]
            heapreplace(h, d + r)
            usage[v] += r
            c += 1
            cc[v] = c
            a = bga[v]
            nb = a[c] if c < len(a) else INF
            bheads[v] = nb
            j = cheads[v]
            heads[v] = nb if nb <= j else j

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        self._advance()
        now = self.sim._now
        n = self._live_clients
        bga, bgc = self._bga, self._bgc
        for v in range(len(bgc)):
            n += bisect_right(bga[v], now, bgc[v]) - bgc[v]
        return n

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:
        self._advance()
        now = self.sim._now
        out = []
        for v, name in enumerate(self.fairshare.names):
            c = self._bgc[v]
            n_bg = bisect_right(self._bga[v], now, c) - c
            out.append(
                (name, n_bg + len(self._clq[v]) - self._vo_husks[v])
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FairShareVectorCE({self.name}, "
            f"cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )
