"""Per-VO fair-share scheduling at computing elements.

Production grids are multi-tenant: a site's batch system splits its
capacity between virtual organisations according to negotiated *shares*,
usually with an exponentially decayed usage window (Maui/Moab and SLURM
style fair-share).  This module adds that layer on top of both site
engines without touching them:

* :class:`FairShareState` — the accounting common to both engines: one
  decayed CPU-usage counter per VO, compared as ``usage/share`` (lowest
  ratio wins the next free core).  Decay is *lazy and closed-form*
  (``usage · 2^{-Δt/halflife}``), so no per-interval decay events exist
  and the two engines apply bit-identical arithmetic.
* :class:`FairShareComputingElement` — the event oracle: per-VO FIFO
  queues in front of the same core pool; every free core is handed to
  the head job of the most underserved VO.
* :class:`FairShareVectorComputingElement` — the production engine: the
  chunked background lane carries a VO label per arrival
  (:meth:`~FairShareVectorComputingElement.feed_background` grows a
  third array), and the Lindley commit loop resolves fair-share priority
  at every start while still creating **zero events and zero Job
  objects** for background work.

With a single configured VO both schedulers degrade to plain FIFO over
one queue and charge/decay arithmetic that never influences a decision,
so their client traces and telemetry are *exactly* those of the plain
engines (pinned by ``tests/test_fairshare.py``); grids whose sites
declare fewer than two VOs are wired with the plain engines anyway.

Scheduling equivalence caveat (inherited from the base engines): traces
are bit-identical wherever no same-timestamp tie interposes a completion
and an arrival — measure-zero under continuous laws.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import deque
from functools import partial
from heapq import heapreplace
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.gridsim.events import Simulator
from repro.gridsim.jobs import Job, JobState
from repro.gridsim.site import ComputingElement, VectorComputingElement

__all__ = [
    "FairShareState",
    "FairShareComputingElement",
    "FairShareVectorComputingElement",
]

#: default decay half-life of the fair-share usage window (s)
DEFAULT_HALFLIFE = 86_400.0


def normalize_vo_shares(
    vo_shares: Iterable[tuple[str, float]],
) -> tuple[tuple[str, float], ...]:
    """Validate ``(name, share)`` pairs and normalise shares to sum 1."""
    pairs = tuple(vo_shares)
    if not pairs:
        raise ValueError("vo_shares must name at least one VO")
    names = []
    raw = []
    for entry in pairs:
        try:
            name, share = entry
        except (TypeError, ValueError):
            raise ValueError(
                f"vo_shares entries must be (name, share) pairs, got {entry!r}"
            ) from None
        if not isinstance(name, str) or not name:
            raise ValueError(f"VO name must be a non-empty string, got {name!r}")
        share = float(share)
        if not math.isfinite(share) or share <= 0.0:
            raise ValueError(f"share of VO {name!r} must be > 0, got {share!r}")
        names.append(name)
        raw.append(share)
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        raise ValueError(f"duplicate VO name(s): {', '.join(sorted(dupes))}")
    total = sum(raw)
    return tuple((n, s / total) for n, s in zip(names, raw))


class FairShareState:
    """Decayed per-VO usage accounting driving scheduling decisions.

    The scheduler keeps one usage counter per VO: every dispatched job
    charges its (requested) runtime to its VO at the start instant, and
    counters decay with half-life ``halflife`` so old consumption stops
    counting against a VO.  Priority is the classic underserved-first
    rule — the candidate minimising ``usage/share`` wins, registration
    order breaking exact ties deterministically.

    Decay is applied lazily inside :meth:`select` / :meth:`charge` only,
    with the identical call sequence on both site engines, so usage
    floats (and therefore decisions) stay bit-identical across engines.
    Telemetry reads go through :meth:`decayed_usage`, which never
    commits a decay step.
    """

    __slots__ = ("names", "shares", "halflife", "_index", "_usage", "_last")

    def __init__(
        self,
        vo_shares: Iterable[tuple[str, float]],
        halflife: float = DEFAULT_HALFLIFE,
    ) -> None:
        pairs = normalize_vo_shares(vo_shares)
        if not halflife > 0.0:  # math.inf allowed: no decay
            raise ValueError(f"halflife must be > 0, got {halflife!r}")
        self.names: tuple[str, ...] = tuple(n for n, _ in pairs)
        self.shares: tuple[float, ...] = tuple(s for _, s in pairs)
        self.halflife = float(halflife)
        self._index = {n: i for i, n in enumerate(self.names)}
        self._usage = [0.0] * len(self.names)
        self._last = 0.0

    def index_of(self, vo: str) -> int:
        """VO index for a job label; unknown/empty labels map to VO 0."""
        return self._index.get(vo, 0)

    def _decay_to(self, t: float) -> None:
        if t > self._last:
            f = 0.5 ** ((t - self._last) / self.halflife)
            usage = self._usage
            for k in range(len(usage)):
                usage[k] *= f
            self._last = t

    def select(self, candidates: Sequence[int], t: float) -> int:
        """The most underserved VO among ``candidates`` at time ``t``."""
        self._decay_to(t)
        usage = self._usage
        shares = self.shares
        best = candidates[0]
        best_ratio = usage[best] / shares[best]
        for v in candidates[1:]:
            ratio = usage[v] / shares[v]
            if ratio < best_ratio:
                best = v
                best_ratio = ratio
        return best

    def charge(self, vo: int, cpu: float, t: float) -> None:
        """Account ``cpu`` seconds to VO ``vo`` at time ``t``."""
        self._decay_to(t)
        self._usage[vo] += cpu

    def fork(self) -> "FairShareState":
        """An independent copy (for non-committing start predictions)."""
        clone = FairShareState.__new__(FairShareState)
        clone.names = self.names
        clone.shares = self.shares
        clone.halflife = self.halflife
        clone._index = self._index
        clone._usage = list(self._usage)
        clone._last = self._last
        return clone

    def decayed_usage(self, t: float) -> list[float]:
        """Usage decayed to ``t`` *without* committing the decay step."""
        f = 0.5 ** (max(t - self._last, 0.0) / self.halflife)
        return [u * f for u in self._usage]

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


class _PerJobBatchOps:
    """Per-job batch fallbacks for the fair-share engines.

    The plain engines implement :meth:`enqueue_many` /
    :meth:`cancel_many` as genuinely batched passes; the fair-share
    flavours keep per-VO bookkeeping inside ``enqueue``/``cancel``, so
    their batch entry points stay simple loops — identical on both
    flavours, which is what keeps the engine pair's client traces
    comparable.
    """

    def enqueue_many(self, jobs: Sequence[Job]) -> int:
        n = 0
        for job in jobs:
            if job.state in (JobState.MATCHING, JobState.CREATED):
                self.enqueue(job)
                n += 1
        return n

    def cancel_many(self, jobs: Sequence[Job]) -> int:
        n = 0
        for job in jobs:
            if self.cancel(job):
                n += 1
        return n


class _VoTelemetry:
    """Per-VO telemetry shared by both fair-share engines."""

    fairshare: FairShareState

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:  # pragma: no cover
        raise NotImplementedError

    def vo_queue_lengths(self) -> dict[str, int]:
        """Waiting jobs per VO (husks discounted)."""
        return dict(self._vo_queue_pairs())

    def usage_shares(self) -> dict[str, float]:
        """Each VO's fraction of the decayed usage window (0 when idle)."""
        advance = getattr(self, "_advance", None)
        if advance is not None:  # vector lane: reading usage reconciles
            advance()
        usage = self.fairshare.decayed_usage(self.sim._now)
        total = sum(usage)
        if total <= 0.0:
            return {n: 0.0 for n in self.fairshare.names}
        return {n: u / total for n, u in zip(self.fairshare.names, usage)}


class FairShareComputingElement(_VoTelemetry, _PerJobBatchOps, ComputingElement):
    """Event-driven oracle with per-VO queues and fair-share dispatch.

    Identical core pool and event mechanics as
    :class:`~repro.gridsim.site.ComputingElement`; the only change is
    *which* queued job a free core takes: the head of the queue of the
    VO minimising decayed ``usage/share``.
    """

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        vo_shares: Iterable[tuple[str, float]],
        fairshare_halflife: float = DEFAULT_HALFLIFE,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        super().__init__(name, n_cores, sim, on_start=on_start)
        self.fairshare = FairShareState(vo_shares, fairshare_halflife)
        self._vo_queues: list[deque[Job]] = [
            deque() for _ in self.fairshare.names
        ]
        self._vo_husks = [0] * len(self.fairshare.names)

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = self.sim._now
        self._vo_queues[self.fairshare.index_of(job.vo)].append(job)
        if self.free_cores > 0 and self.dispatch_enabled:
            self._try_start()

    def cancel(self, job: Job) -> bool:
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False
            job.state = JobState.CANCELLED
            self._vo_husks[self.fairshare.index_of(job.vo)] += 1
            return True
        return super().cancel(job)

    def begin_black_hole(self) -> None:
        """Fail the per-VO queues, then flip via the base hook."""
        if self.black_hole:
            return
        now = self.sim._now
        on_fail = self.on_fail
        for v, q in enumerate(self._vo_queues):
            for job in q:
                if job.state is not JobState.QUEUED:
                    continue
                job.state = JobState.FAILED
                job.end_time = now
                self.jobs_failed_bh += 1
                if on_fail is not None and job.tag != "background":
                    on_fail(job)
            q.clear()
            self._vo_husks[v] = 0
        # the base hook drains the (unused, empty) plain queue and kills
        # everything running, freeing the cores
        super().begin_black_hole()

    # -- internals -------------------------------------------------------

    def _pop_next(self) -> tuple[Job | None, int]:
        """Head job of the most underserved VO (husks dropped lazily)."""
        candidates = []
        for v, q in enumerate(self._vo_queues):
            while q and q[0].state is not JobState.QUEUED:
                q.popleft()
                self._vo_husks[v] -= 1
            if q:
                candidates.append(v)
        if not candidates:
            return None, -1
        v = self.fairshare.select(candidates, self.sim._now)
        return self._vo_queues[v].popleft(), v

    def _try_start(self) -> None:
        if not self.dispatch_enabled:
            return
        while self.free_cores > 0:
            job, v = self._pop_next()
            if job is None:
                return
            self.free_cores -= 1
            job.state = JobState.RUNNING
            job.start_time = self.sim._now
            self.jobs_started += 1
            # charge before the callback: a re-entrant cancel must see
            # updated usage
            self.fairshare.charge(v, job.runtime, self.sim._now)
            job.completion_event = self.sim.schedule(
                job.runtime, partial(self._complete, job)
            )
            self.running_jobs[job.job_id] = job
            if self.on_start is not None and job.tag != "background":
                self.on_start(job)

    def _complete(self, job: Job) -> None:
        job.completion_event = None
        self.running_jobs.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            return  # killed in the meantime
        job.state = JobState.COMPLETED
        job.end_time = self.sim._now
        self.jobs_completed += 1
        self.free_cores += 1
        if self.dispatch_enabled:
            self._try_start()

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        return sum(map(len, self._vo_queues)) - sum(self._vo_husks)

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:
        return [
            (n, len(q) - h)
            for n, q, h in zip(
                self.fairshare.names, self._vo_queues, self._vo_husks
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FairShareCE({self.name}, cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )


class FairShareVectorComputingElement(_VoTelemetry, _PerJobBatchOps, VectorComputingElement):
    """Two-lane engine with VO-labelled background and fair-share commits.

    The background lane grows a third chunk array (VO label per arrival);
    arrived-but-unstarted work of *both* lanes waits in per-VO FIFOs and
    the Lindley commit loop asks :class:`FairShareState` which VO the
    next free core serves.  Background entries stay ``(arrival, runtime)``
    tuples — still no events, no Job objects.

    Lane pointers are re-purposed versus the base class: ``_bg_i`` counts
    arrivals *pulled* into VO queues (they arrive ≤ now), not commits, so
    ``background_delivered`` is simply ``_bg_done + _bg_i``.  The single
    wake is aimed at the earliest predicted *client* start, computed by
    replaying the identical commit loop on forked state; a later
    background chunk can only postpone that instant (new work competes
    for cores), never advance it, so a stale wake fires early, commits
    nothing, and re-aims itself.
    """

    def __init__(
        self,
        name: str,
        n_cores: int,
        sim: Simulator,
        *,
        vo_shares: Iterable[tuple[str, float]],
        fairshare_halflife: float = DEFAULT_HALFLIFE,
        on_start: Callable[[Job], None] | None = None,
    ) -> None:
        super().__init__(name, n_cores, sim, on_start=on_start)
        self.fairshare = FairShareState(vo_shares, fairshare_halflife)
        #: pending background VO labels, parallel to ``_bg_t``/``_bg_r``
        self._bg_v: list[int] = []
        #: arrived-unstarted entries per VO: background as
        #: ``(arrival, runtime)`` tuples, clients as the Job itself
        self._voq: list[deque] = [deque() for _ in self.fairshare.names]
        self._vo_husks = [0] * len(self.fairshare.names)
        #: queued (live) client jobs across all VO queues — O(1) guard
        #: for the wake predictor instead of a full-queue scan
        self._live_clients = 0
        #: fair-share flavour of the base lane's next-commit memo: the
        #: decision loop exits record when the next start can happen, so
        #: telemetry reads before that instant only pay a pull check
        self._next_due = 0.0

    # -- background lane ---------------------------------------------------

    def feed_background(
        self,
        times: list[float],
        runtimes: list[float],
        vos: list[int] | None = None,
    ) -> None:
        """Append a chunk of VO-labelled background arrivals."""
        if vos is None:
            vos = [0] * len(times)
        elif len(vos) != len(times):
            raise ValueError(
                f"vos has {len(vos)} entries for {len(times)} arrivals"
            )
        self._advance()
        i = self._bg_i
        if i:
            del self._bg_t[:i]
            del self._bg_r[:i]
            del self._bg_v[:i]
            self._bg_done += i
            self._bg_i = 0
        self._bg_t.extend(times)
        self._bg_r.extend(runtimes)
        self._bg_v.extend(vos)
        self._next_due = 0.0  # the new chunk may hold the next start

    def background_delivered(self) -> int:
        self._advance()
        return self._bg_done + self._bg_i

    # -- queue operations ------------------------------------------------

    def enqueue(self, job: Job) -> None:
        if job.state not in (JobState.MATCHING, JobState.CREATED):
            raise ValueError(f"cannot enqueue job in state {job.state}")
        if self.black_hole:
            self._fail_now(job)
            return
        job.state = JobState.QUEUED
        job.site = self.name
        job.queue_time = self.sim._now
        # reconcile first so background arrivals <= now sit ahead of the
        # client in its VO FIFO (the base engine's bg-first tie rule)
        self._advance()
        self._voq[self.fairshare.index_of(job.vo)].append(job)
        self._live_clients += 1
        self._next_due = 0.0  # an underserved VO's client can start at once
        self._advance()  # a free core may start it this very instant
        if job.state is JobState.QUEUED:
            self._defer_wake()

    def cancel(self, job: Job) -> bool:
        if job.state is JobState.QUEUED:
            if job.site != self.name:
                return False
            job.state = JobState.CANCELLED
            self._vo_husks[self.fairshare.index_of(job.vo)] += 1
            self._live_clients -= 1
            # a removed competitor can advance any waiting client's
            # predicted start: re-aim, at worst early
            self._defer_wake()
            return True
        return super().cancel(job)

    def begin_black_hole(self) -> None:
        """Fail the per-VO queues, then flip via the base hook.

        ``_advance`` first pulls every arrival <= now into its VO queue
        (its end-of-walk telemetry contract), so draining the queues here
        covers both lanes; the base hook then finds ``_bg_i`` already
        past every arrived entry and only has running work left to kill.
        """
        if self.black_hole:
            return
        self._advance()
        now = self.sim._now
        on_fail = self.on_fail
        for v, q in enumerate(self._voq):
            for entry in q:
                if isinstance(entry, Job):
                    if entry.state is not JobState.QUEUED:
                        continue
                    entry.state = JobState.FAILED
                    entry.end_time = now
                    self.jobs_failed_bh += 1
                    if on_fail is not None and entry.tag != "background":
                        on_fail(entry)
                else:
                    self.jobs_failed_bh += 1
            q.clear()
            self._vo_husks[v] = 0
        self._live_clients = 0
        super().begin_black_hole()

    # -- the fair-share commit loop ----------------------------------------

    def _pull(self, upto: float) -> None:
        """Move pending background arrivals with time <= ``upto`` into
        their VO queues (they have arrived relative to the decision)."""
        bg_t = self._bg_t
        i = self._bg_i
        n = len(bg_t)
        if i >= n or bg_t[i] > upto:
            return
        bg_r, bg_v, voq = self._bg_r, self._bg_v, self._voq
        while i < n and bg_t[i] <= upto:
            voq[bg_v[i]].append((bg_t[i], bg_r[i]))
            i += 1
        self._bg_i = i

    def _ready_candidates(self, d: float) -> list[int]:
        """VOs whose head entry has arrived by ``d`` (husks dropped)."""
        candidates = []
        for v, q in enumerate(self._voq):
            while q and isinstance(q[0], Job) and q[0].state is not JobState.QUEUED:
                q.popleft()
                self._vo_husks[v] -= 1
            if q:
                head = q[0]
                arrival = head.queue_time if isinstance(head, Job) else head[0]
                if arrival <= d:
                    candidates.append(v)
        return candidates

    def _next_arrival(self) -> float | None:
        """Earliest arrival not yet ready (queue heads + pending chunks)."""
        a: float | None = None
        if self._bg_i < len(self._bg_t):
            a = self._bg_t[self._bg_i]
        for q in self._voq:
            if q:
                head = q[0]
                arrival = head.queue_time if isinstance(head, Job) else head[0]
                if a is None or arrival < a:
                    a = arrival
        return a

    def _advance(self) -> None:
        """Commit every start with start time <= now, fair-share order.

        Each iteration resolves one start: the decision instant ``d`` is
        the first moment a free core and an arrived job coexist —
        ``max(min core-free, dispatch floor)``, pushed up to the earliest
        pending arrival when every queue is empty or still in the future
        (the idle-core case, where the plain engine's ``max(arrival, m)``
        applies).  All jobs arrived by ``d`` compete and the fair-share
        state picks the VO; commits stop as soon as ``d`` passes now.
        """
        t = self.sim._now
        if self.black_hole:
            # arrivals inside a hole fail instantly, never occupying cores
            j = bisect_right(self._bg_t, t, self._bg_i)
            if j > self._bg_i:
                self.jobs_failed_bh += j - self._bg_i
                self._bg_i = j
            return
        if t < self._next_due or not self.dispatch_enabled:
            if self.dispatch_enabled:
                # telemetry contract: arrivals <= now wait in their VO
                # queue even while no commit is due yet
                self._pull(t)
            return
        fairshare = self.fairshare
        while True:
            cf = self._core_free
            d = cf[0]
            if self._dispatch_floor > d:
                d = self._dispatch_floor
            if d > t:
                self._next_due = d
                break
            self._pull(d)
            candidates = self._ready_candidates(d)
            if not candidates:
                a = self._next_arrival()
                if a is None:
                    self._next_due = float("inf")
                    break
                if a > t:
                    self._next_due = a
                    break
                d = a  # idle core: the next arrival starts the moment it lands
                self._pull(d)
                candidates = self._ready_candidates(d)
                if not candidates:  # pragma: no cover - a just arrived
                    break
            v = fairshare.select(candidates, d)
            entry = self._voq[v].popleft()
            if isinstance(entry, Job):
                self._live_clients -= 1
                heapreplace(cf, d + entry.runtime)
                fairshare.charge(v, entry.runtime, d)
                self._started += 1
                self._start_client(entry, d)
                # the callback may cancel siblings here or close the
                # gate — state is re-read from self at the loop head
                if not self.dispatch_enabled:
                    return
            else:
                heapreplace(cf, d + entry[1])
                fairshare.charge(v, entry[1], d)
                self._started += 1
        # telemetry contract: every arrival <= now waits in its VO queue
        self._pull(t)

    # -- the wake ----------------------------------------------------------

    def _defer_wake(self) -> None:
        """Bound the wake early instead of predicting per queue change.

        A queue mutation can move the earliest client start, but never
        before ``max(now, next core release, dispatch floor)`` — so the
        wake is (re-)aimed there when it sits later, and the full replay
        prediction is deferred to the wake instant itself.  An early
        wake is always safe: it commits whatever is ready and re-aims
        with a real prediction.  Bursts of enqueues and sibling cancels
        therefore coalesce into one prediction per release instant
        instead of one replay per job — the difference that keeps
        fair-share grids affordable under 10⁵-task populations.
        """
        if not self.dispatch_enabled:
            return  # re-armed by end_outage
        w = self._wake
        if self._live_clients <= 0:
            if w is not None:
                w.cancel()
                self._wake = None
            return
        e = self._core_free[0]
        if self._dispatch_floor > e:
            e = self._dispatch_floor
        now = self.sim._now
        if now > e:
            e = now
        if w is not None:
            if not w.cancelled and w.time <= e:
                return
            w.cancel()
        self._wake = self.sim.schedule_at(e, self._on_wake)

    def _ensure_wake(self) -> None:
        if not self.dispatch_enabled:
            return  # re-armed by end_outage
        s = self._predict_next_client_start()
        w = self._wake
        if s is None:
            if w is not None:
                w.cancel()
                self._wake = None
            return
        if w is not None:
            if not w.cancelled and w.time == s:
                return
            w.cancel()
        self._wake = self.sim.schedule_at(s, self._on_wake)

    def _predict_next_client_start(self) -> float | None:
        """Earliest client start, by replaying the commit loop on forks.

        Runs the exact :meth:`_advance` recurrence — heap, usage decay,
        pulls, fair-share selection — on copies, stopping the moment a
        client entry wins a core.  ``None`` when no client is queued.

        The live VO queues are read through lazy cursors (an iterator
        per queue, plus a buffer for background arrivals the replay
        reaches), so each prediction touches only the entries the replay
        actually consumes before the first client wins — O(work to first
        client) instead of O(total queue) per re-aim, which is what
        keeps 10⁵-task populations affordable on fair-share grids.
        """
        if self._live_clients <= 0:
            return None
        QUEUED = JobState.QUEUED
        voq = self._voq
        nvo = len(voq)
        h = self._core_free.copy()
        floor = self._dispatch_floor
        usage = self.fairshare.fork()
        iters: list = [iter(q) for q in voq]
        bufs: list[deque] = [deque() for _ in range(nvo)]

        def pull_head(v: int):
            it = iters[v]
            if it is not None:
                for e in it:
                    if isinstance(e, Job):
                        if e.state is QUEUED:
                            return (e.queue_time, e.runtime, True)
                    else:
                        return (e[0], e[1], False)
                iters[v] = None
            buf = bufs[v]
            if buf:
                return buf.popleft()
            return None

        heads = [pull_head(v) for v in range(nvo)]
        bg_t, bg_r, bg_v = self._bg_t, self._bg_r, self._bg_v
        i, n = self._bg_i, len(bg_t)
        while True:
            d = h[0]
            if floor > d:
                d = floor
            # pushed up to the next arrival when nothing has arrived by d
            # (same idle-core rule as _advance)
            while True:
                while i < n and bg_t[i] <= d:
                    v = bg_v[i]
                    if heads[v] is None:
                        heads[v] = (bg_t[i], bg_r[i], False)
                    else:
                        bufs[v].append((bg_t[i], bg_r[i], False))
                    i += 1
                candidates = [
                    v for v in range(nvo)
                    if heads[v] is not None and heads[v][0] <= d
                ]
                if candidates:
                    break
                a = bg_t[i] if i < n else None
                for v in range(nvo):
                    hd = heads[v]
                    if hd is not None and (a is None or hd[0] < a):
                        a = hd[0]
                if a is None:  # pragma: no cover - a queued client remains
                    return None
                d = a
            v = usage.select(candidates, d)
            arrival, rt, is_client = heads[v]
            if is_client:
                return d
            heads[v] = pull_head(v)
            heapreplace(h, d + rt)
            usage.charge(v, rt, d)

    # -- telemetry ---------------------------------------------------------

    @property
    def queue_length(self) -> int:
        self._advance()
        return sum(map(len, self._voq)) - sum(self._vo_husks)

    def _vo_queue_pairs(self) -> list[tuple[str, int]]:
        self._advance()
        return [
            (n, len(q) - h)
            for n, q, h in zip(self.fairshare.names, self._voq, self._vo_husks)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FairShareVectorCE({self.name}, "
            f"cores={self.busy_cores}/{self.n_cores}, "
            f"queued={self.queue_length})"
        )
