"""Minimal discrete-event simulation kernel.

A binary-heap event queue with cancellable events and a deterministic
tie-break (FIFO among equal timestamps).  Callbacks receive the simulator
so they can schedule follow-up events; everything runs in one thread —
parallelism in the *modelled* system (thousands of concurrent jobs) costs
nothing at simulation level.

The heap stores plain ``(time, seq, event)`` tuples: tuple comparison is
a C-level lexicographic pass, an order of magnitude cheaper than the
``dataclass(order=True)`` ``__lt__`` the kernel used to pay on every
sift, while the slotted :class:`Event` handle keeps O(1) lazy
cancellation and the ``(time, seq)`` FIFO tie-break unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback; ordered in the queue by (time, sequence number)."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it (O(1) lazy deletion)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:g}, seq={self.seq}{state})"


class Simulator:
    """Event loop: schedule callbacks, advance virtual time."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled husks)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = Event(time, next(self._seq), callback)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def run_until(self, t_end: float) -> None:
        """Process events with ``time <= t_end``; clock ends at ``t_end``."""
        if t_end < self._now:
            raise ValueError(f"t_end={t_end} is before now={self._now}")
        heap = self._heap
        while heap and heap[0][0] <= t_end:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._now = time
            self._processed += 1
            ev.callback()
        self._now = t_end

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Process every pending event (bounded by ``max_events``)."""
        count = 0
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            count += 1
            if count > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — runaway model?"
                )
            self._now = time
            self._processed += 1
            ev.callback()
