"""Minimal discrete-event simulation kernel.

A binary-heap event queue with cancellable events and a deterministic
tie-break (FIFO among equal timestamps).  Callbacks receive the simulator
so they can schedule follow-up events; everything runs in one thread —
parallelism in the *modelled* system (thousands of concurrent jobs) costs
nothing at simulation level.

The heap stores plain ``(time, seq, event)`` tuples: tuple comparison is
a C-level lexicographic pass, an order of magnitude cheaper than the
``dataclass(order=True)`` ``__lt__`` the kernel used to pay on every
sift, while the slotted :class:`Event` handle keeps O(1) lazy
cancellation and the ``(time, seq)`` FIFO tie-break unchanged.

Three bulk facilities keep the kernel cheap under heavy load:

* :meth:`Simulator.schedule_many` pushes a pre-sorted batch of events in
  one tight loop (used by the chunked background-load streams);
* cancelled husks are compacted away once they dominate the heap, so
  long campaigns that cancel many timers (probe timeouts, strategy
  resubmission timers) do not drag an ever-growing heap behind them;
* :meth:`Simulator.schedule_pooled` is a coarse timer wheel for the
  overwhelmingly-cancelled client timeouts: timers are pooled into
  buckets of :attr:`Simulator.pooled_granularity` seconds, one heap
  event fires a whole bucket, and cancelling a pooled timer is a flag
  flip that never touches the heap (a bucket whose every timer was
  cancelled cancels its own heap event).  Pooled timers fire at the
  bucket boundary — their deadline rounded *up* by at most one
  granule — so they are for timeouts, never for exact-time events.

:meth:`Simulator.stop` lets a callback end :meth:`Simulator.run_until`
at the current instant (used by the client layer to finish a campaign
the moment its last task completes, instead of polling the clock).

Components that keep *lazy* state (e.g. the vectorised site engines,
which materialise client-job completions on demand instead of holding
one heap event per running job) register a reconciler via
:meth:`Simulator.add_reconciler`; the loop invokes every reconciler just
before :meth:`run_until` / :meth:`run_until_idle` returns, so code that
inspects model state *between* runs sees the same picture the event
oracle would show.
"""

from __future__ import annotations

import heapq
import itertools
import math
from functools import partial
from typing import Callable, Iterable

__all__ = ["Event", "PooledTimer", "Simulator"]

#: default width (s) of a pooled-timer bucket; coarse relative to the
#: strategy/probe timeouts that ride the wheel (10³–10⁴ s), so the
#: ≤ one-granule firing lateness stays a ~1% effect on the rare timer
#: that actually fires, while campaigns arming a few timers per minute
#: already share buckets
_POOLED_GRANULARITY = 60.0

#: never compact below this many husks — small heaps are cheap anyway
_COMPACT_MIN = 1024
#: compact when cancelled husks exceed this fraction of the heap
_COMPACT_FRACTION = 0.5


class Event:
    """A scheduled callback; ordered in the queue by (time, sequence number)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it (O(1) lazy deletion)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:g}, seq={self.seq}{state})"


class _TimerBucket:
    """One wheel slot: the timers pooled at a shared boundary event."""

    __slots__ = ("timers", "live", "event", "sim", "boundary")

    def __init__(self, sim: "Simulator", boundary: float) -> None:
        self.timers: list[PooledTimer] = []
        self.live = 0
        self.event: Event | None = None
        self.sim = sim
        self.boundary = boundary


class PooledTimer:
    """A cancellable timer pooled on the wheel (see ``schedule_pooled``).

    Cancellation is O(1) and heap-free: the timer flags itself and
    decrements its bucket's live count; when a bucket's count hits zero
    the bucket cancels its single heap event and unhooks itself from the
    wheel, so fully-cancelled windows cost the kernel nothing but one
    husk — and never linger as live objects the garbage collector has to
    keep scanning.
    """

    __slots__ = ("callback", "cancelled", "_bucket")

    def __init__(self, callback: Callable[[], None], bucket: "_TimerBucket") -> None:
        self.callback = callback
        self.cancelled = False
        self._bucket = bucket

    def cancel(self) -> None:
        """Flag the timer so its bucket skips it (never touches the heap)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        bucket = self._bucket
        if bucket is not None:
            bucket.live -= 1
            if bucket.live == 0:
                # the whole bucket died: drop it from the wheel so the
                # only trace left is one heap husk (reclaimed by
                # compaction) instead of a leaked bucket + timer list.
                # The identity check protects a bucket re-armed at the
                # same boundary (a zero-delay re-arm during the fire)
                if bucket.event is not None:
                    bucket.event.cancel()
                    bucket.event = None
                pool = bucket.sim._pool
                if pool.get(bucket.boundary) is bucket:
                    del pool[bucket.boundary]
            self._bucket = None


class Simulator:
    """Event loop: schedule callbacks, advance virtual time."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._stop_requested = False
        #: pooled-timer buckets keyed by their boundary instant
        self._pool: dict[float, _TimerBucket] = {}
        #: bucket width (s) of the pooled timer wheel
        self.pooled_granularity = _POOLED_GRANULARITY
        #: callbacks flushed before every run loop returns (lazy state)
        self._reconcilers: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled husks)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled husks still sitting in the heap (diagnostics)."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed (diagnostics)."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        ev = Event(time, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = Event(time, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def schedule_many(
        self,
        times: Iterable[float],
        callbacks: Iterable[Callable[[], None]],
    ) -> list[Event]:
        """Bulk-schedule callbacks at absolute times (one tight loop).

        ``times`` and ``callbacks`` are consumed pairwise; sequence
        numbers are assigned in iteration order, so equal-time entries
        keep the usual FIFO tie-break.  Used by the chunked background
        streams, where per-call :meth:`schedule_at` overhead would undo
        the benefit of block-drawing the randomness.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        events: list[Event] = []
        append = events.append
        for time, callback in zip(times, callbacks):
            if time < now:
                raise ValueError(
                    f"cannot schedule into the past (t={time} < now={now})"
                )
            ev = Event(time, next(seq), callback, self)
            append(ev)
            push(heap, (time, ev.seq, ev))
        return events

    # -- pooled timer wheel ----------------------------------------------

    def pooled_boundary(self, delay: float) -> float:
        """The absolute instant a pooled timer armed now would fire at.

        Exposed so batching layers (the SoA population pool) can key
        their own per-boundary blocks by exactly the wheel's rounding —
        deadline rounded up to the next ``pooled_granularity`` multiple.
        """
        g = self.pooled_granularity
        return math.ceil((self._now + delay) / g) * g

    def schedule_pooled(self, delay: float, callback: Callable[[], None]) -> PooledTimer:
        """Arm a cancellable timer on the coarse wheel.

        The timer fires at its deadline rounded **up** to the next
        multiple of :attr:`pooled_granularity` — late by less than one
        granule, never early.  All timers sharing a boundary ride one
        heap event; arming is a list append and cancelling a flag flip,
        so the overwhelmingly-cancelled client timeouts (probe slots,
        strategy ``t_inf`` timers) stop paying a heap push plus husk
        each.  Use :meth:`schedule` for anything that must fire at an
        exact instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        boundary = self.pooled_boundary(delay)
        bucket = self._pool.get(boundary)
        if bucket is None:
            # first timer at this boundary (a fully-cancelled bucket
            # removes itself, so a stale hit is impossible)
            bucket = _TimerBucket(self, boundary)
            self._pool[boundary] = bucket
            bucket.event = self.schedule_at(boundary, partial(self._fire_pool, boundary))
        timer = PooledTimer(callback, bucket)
        bucket.timers.append(timer)
        bucket.live += 1
        return timer

    def _fire_pool(self, boundary: float) -> None:
        bucket = self._pool.pop(boundary)
        bucket.event = None
        for timer in bucket.timers:
            if not timer.cancelled:
                timer.cancelled = True  # fired timers are spent
                timer._bucket = None
                callback = timer.callback
                timer.callback = None  # break the timer→owner cycle now
                callback()

    # -- husk compaction -----------------------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN
            and self._cancelled >= _COMPACT_FRACTION * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled husks and re-heapify, in place.

        The heap list is mutated via slice assignment so that the local
        ``heap`` references held by a running :meth:`run_until` /
        :meth:`run_until_idle` loop keep seeing the compacted queue.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1

    # -- event loop ----------------------------------------------------------

    def add_reconciler(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run just before any run loop returns.

        Reconcilers flush lazily-maintained model state (a vectorised
        site draining its due completion heap, say) so post-run
        inspection matches the event oracle.  They must be idempotent
        and must not schedule events.  Registering the same callable
        twice is a no-op.
        """
        if fn not in self._reconcilers:
            self._reconcilers.append(fn)

    def _reconcile(self) -> None:
        for fn in self._reconcilers:
            fn()

    def stop(self) -> None:
        """Ask the running loop to return after the current callback.

        Called from inside an event callback; the surrounding
        :meth:`run_until` / :meth:`run_until_idle` returns with the
        clock at the current instant (not advanced to ``t_end``), so a
        campaign can end the moment its completion condition is met
        instead of polling.  A no-op outside a run.
        """
        self._stop_requested = True

    def run_until(self, t_end: float) -> None:
        """Process events with ``time <= t_end``; clock ends at ``t_end``.

        If a callback calls :meth:`stop`, the loop returns immediately
        with the clock left at that callback's instant.
        """
        if t_end < self._now:
            raise ValueError(f"t_end={t_end} is before now={self._now}")
        self._stop_requested = False
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= t_end:
            time, _, ev = pop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            self._processed += 1
            # detach before running: a late cancel() on a fired event
            # (strategy cleanup cancels all its timers) must not count
            # as a pending husk
            ev.sim = None
            ev.callback()
            if self._stop_requested:
                self._stop_requested = False
                self._reconcile()
                return
        self._now = t_end
        self._reconcile()

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Process every pending event (bounded by ``max_events``).

        Honours :meth:`stop` like :meth:`run_until`.
        """
        count = 0
        self._stop_requested = False
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            count += 1
            if count > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — runaway model?"
                )
            self._now = time
            self._processed += 1
            ev.sim = None
            ev.callback()
            if self._stop_requested:
                self._stop_requested = False
                self._reconcile()
                return
        self._reconcile()
