"""Minimal discrete-event simulation kernel.

A binary-heap event queue with cancellable events and a deterministic
tie-break (FIFO among equal timestamps).  Callbacks receive the simulator
so they can schedule follow-up events; everything runs in one thread —
parallelism in the *modelled* system (thousands of concurrent jobs) costs
nothing at simulation level.

The heap stores plain ``(time, seq, event)`` tuples: tuple comparison is
a C-level lexicographic pass, an order of magnitude cheaper than the
``dataclass(order=True)`` ``__lt__`` the kernel used to pay on every
sift, while the slotted :class:`Event` handle keeps O(1) lazy
cancellation and the ``(time, seq)`` FIFO tie-break unchanged.

Two bulk facilities keep the kernel cheap under heavy load:

* :meth:`Simulator.schedule_many` pushes a pre-sorted batch of events in
  one tight loop (used by the chunked background-load streams);
* cancelled husks are compacted away once they dominate the heap, so
  long campaigns that cancel many timers (probe timeouts, strategy
  resubmission timers) do not drag an ever-growing heap behind them.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Iterable

__all__ = ["Event", "Simulator"]

#: never compact below this many husks — small heaps are cheap anyway
_COMPACT_MIN = 1024
#: compact when cancelled husks exceed this fraction of the heap
_COMPACT_FRACTION = 0.5


class Event:
    """A scheduled callback; ordered in the queue by (time, sequence number)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it (O(1) lazy deletion)."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.sim is not None:
            self.sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:g}, seq={self.seq}{state})"


class Simulator:
    """Event loop: schedule callbacks, advance virtual time."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (diagnostics)."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled husks)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled husks still sitting in the heap (diagnostics)."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of heap compaction passes performed (diagnostics)."""
        return self._compactions

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        ev = Event(time, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = Event(time, next(self._seq), callback, self)
        heapq.heappush(self._heap, (time, ev.seq, ev))
        return ev

    def schedule_many(
        self,
        times: Iterable[float],
        callbacks: Iterable[Callable[[], None]],
    ) -> list[Event]:
        """Bulk-schedule callbacks at absolute times (one tight loop).

        ``times`` and ``callbacks`` are consumed pairwise; sequence
        numbers are assigned in iteration order, so equal-time entries
        keep the usual FIFO tie-break.  Used by the chunked background
        streams, where per-call :meth:`schedule_at` overhead would undo
        the benefit of block-drawing the randomness.
        """
        now = self._now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        events: list[Event] = []
        append = events.append
        for time, callback in zip(times, callbacks):
            if time < now:
                raise ValueError(
                    f"cannot schedule into the past (t={time} < now={now})"
                )
            ev = Event(time, next(seq), callback, self)
            append(ev)
            push(heap, (time, ev.seq, ev))
        return events

    # -- husk compaction -----------------------------------------------------

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN
            and self._cancelled >= _COMPACT_FRACTION * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled husks and re-heapify, in place.

        The heap list is mutated via slice assignment so that the local
        ``heap`` references held by a running :meth:`run_until` /
        :meth:`run_until_idle` loop keep seeing the compacted queue.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1

    # -- event loop ----------------------------------------------------------

    def run_until(self, t_end: float) -> None:
        """Process events with ``time <= t_end``; clock ends at ``t_end``."""
        if t_end < self._now:
            raise ValueError(f"t_end={t_end} is before now={self._now}")
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][0] <= t_end:
            time, _, ev = pop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = time
            self._processed += 1
            # detach before running: a late cancel() on a fired event
            # (strategy cleanup cancels all its timers) must not count
            # as a pending husk
            ev.sim = None
            ev.callback()
        self._now = t_end

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Process every pending event (bounded by ``max_events``)."""
        count = 0
        heap = self._heap
        while heap:
            time, _, ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            count += 1
            if count > max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events — runaway model?"
                )
            self._now = time
            self._processed += 1
            ev.sim = None
            ev.callback()
