"""Time-series telemetry for the simulated grid.

A :class:`GridMonitor` samples queue lengths, core utilisation and the
dispatch/fault counters at a fixed virtual-time cadence, giving the
load-feedback experiments (fleet adoption, §8 future work) the
infrastructure-side view that scalar end-state numbers miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gridsim.grid import GridSimulator
from repro.util.series import Series, SeriesBundle
from repro.util.validation import check_positive

__all__ = ["GridSample", "GridMonitor"]


@dataclass(frozen=True)
class GridSample:
    """One telemetry sample.

    Attributes
    ----------
    time:
        Virtual time of the sample (s).
    queued:
        Jobs waiting across all sites.
    busy_cores:
        Cores in use across all sites.
    utilization:
        ``busy_cores / total_cores``.
    jobs_submitted:
        Cumulative client submissions at sample time (the registry's
        ``grid.jobs_submitted`` gauge).
    jobs_completed:
        Cumulative completions across all sites (the registry's
        ``grid.jobs_completed`` gauge, both lanes).  On the vectorised
        site engine this is a reconciled lazy count — sampling it is one
        of the interaction points that advances the background lane to
        the sample time.
    outages_started:
        Cumulative site-down events at sample time (the registry's
        ``weather.outages_started`` gauge: per-site renewal outages plus
        storm hits); 0 on calm grids.
    broker_submits, broker_rejects, failovers, breaker_trips,
    duplicates_reconciled:
        Cumulative middleware fault-domain counters (submit attempts
        through the resilient path, client-visible submit errors,
        breaker-driven broker failovers, breaker trips, at-least-once
        duplicates cleaned up by sibling-cancel), read from the
        ``mw.<broker>.*`` registry counters the submission path
        increments in place; all 0 on grids without a middleware fault
        domain.
    """

    time: float
    queued: int
    busy_cores: int
    utilization: float
    jobs_submitted: int
    jobs_completed: int = 0
    outages_started: int = 0
    broker_submits: int = 0
    broker_rejects: int = 0
    failovers: int = 0
    breaker_trips: int = 0
    duplicates_reconciled: int = 0


@dataclass
class GridMonitor:
    """Periodic sampler attached to a :class:`GridSimulator`.

    Call :meth:`start` once; samples accumulate every ``period`` virtual
    seconds until :meth:`stop` (or for ``max_samples``).  Each tick is a
    read-only pass over the grid's
    :class:`~repro.gridsim.registry.MetricsRegistry` (plus the live
    queue/core gauges) — the monitor keeps no counters of its own.
    """

    grid: GridSimulator
    period: float = 600.0
    max_samples: int = 100_000
    samples: list[GridSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("period", self.period)
        if self.max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {self.max_samples}")
        self._running = False

    def start(self) -> None:
        """Begin sampling (takes an immediate first sample)."""
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop sampling at the next tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running or len(self.samples) >= self.max_samples:
            self._running = False
            return
        grid = self.grid
        m = grid.metrics
        mw_kwargs = {}
        if grid._mw is not None:
            # totals() is itself a view over the mw.* registry counters
            totals = grid._mw.totals()
            mw_kwargs = dict(
                broker_submits=totals["submits"],
                broker_rejects=totals["rejects"],
                failovers=totals["failovers"],
                breaker_trips=totals["breaker_trips"],
                duplicates_reconciled=m.value("grid.duplicates_reconciled"),
            )
        self.samples.append(
            GridSample(
                time=grid.now,
                queued=grid.total_queue_length(),
                busy_cores=grid.total_busy_cores(),
                utilization=grid.utilization(),
                jobs_submitted=m.value("grid.jobs_submitted"),
                jobs_completed=m.value("grid.jobs_completed"),
                outages_started=m.value("weather.outages_started"),
                **mw_kwargs,
            )
        )
        self.grid.sim.schedule(self.period, self._tick)

    # -- views ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.samples)

    def times(self) -> np.ndarray:
        """Sample timestamps."""
        return np.array([s.time for s in self.samples])

    def queue_series(self) -> Series:
        """Queued jobs over time."""
        return Series(
            "queued jobs",
            self.times(),
            np.array([s.queued for s in self.samples], dtype=np.float64),
        )

    def utilization_series(self) -> Series:
        """Core utilisation over time."""
        return Series(
            "utilization",
            self.times(),
            np.array([s.utilization for s in self.samples]),
        )

    def bundle(self, title: str = "grid telemetry") -> SeriesBundle:
        """Both series as a figure-ready bundle."""
        out = SeriesBundle(title=title, x_label="time (s)", y_label="value")
        out.add(self.queue_series())
        out.add(self.utilization_series())
        return out

    def peak_queue(self) -> int:
        """Maximum observed queue length."""
        if not self.samples:
            raise ValueError("no samples collected")
        return max(s.queued for s in self.samples)

    def mean_utilization(self) -> float:
        """Time-average utilisation over the samples."""
        if not self.samples:
            raise ValueError("no samples collected")
        return float(np.mean([s.utilization for s in self.samples]))
