"""Benchmarks: the multi-VO federation layer and the population driver.

``test_bench_multi_vo_population`` tracks the steady cost of driving a
mixed user population (fair-share sites, two federated brokers, diurnal
launches) at a moderate 2·10³ tasks, so regressions in the fair-share
commit loop or the wake predictor show up in ``BENCH_core.json``.

``test_bench_population_20k`` is the always-on population-scale guard:
2·10⁴ tasks on the same 16-site / 4096-core fair-share grid the 100k
day uses, small enough to keep the core baseline fast but large enough
that the block-resolved fair-share commit loop dominates — regressions
there move this number first.

``test_bench_multi_vo_adoption_10k`` and ``test_bench_population_100k``
are the opt-in large-scale runs (``REPRO_BENCH_LARGE=1`` or
``run_benchmarks.py --large``): the full ``multi-vo`` experiment — the
§8-style adoption sweep at 10⁴ tasks per point, whose rendered output is
also the committed ``benchmarks/results/multi-vo.txt`` artifact — and a
10⁵-task population day on a 4096-core fair-share grid, the regime the
batched client-event pipeline is built for.
"""

import os

import pytest

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.experiments import run_experiment
from repro.experiments.multi_vo import multi_vo_grid_config
from repro.population import FleetSpec, PopulationSpec, run_population
from repro.gridsim import warmed_snapshot
from repro.traces.generator import DiurnalProfile

RUN_LARGE = os.environ.get("REPRO_BENCH_LARGE", "") not in ("", "0")


# the canonical fleet-scale workload now lives with the runtime so the
# CLI, the example and the benches all measure the same population day
from repro.population.presets import (
    fleet_grid_config,
    fleet_population_spec,
    fleet_sites_for,
)


def test_bench_multi_vo_population(benchmark):
    """2·10³ tasks across 3 VOs / 2 brokers on the warmed 576-core grid."""
    config = multi_vo_grid_config()
    snap = warmed_snapshot(config, seed=29, duration=6 * 3600.0)
    spec = PopulationSpec(
        fleets=(
            FleetSpec("biomed", SingleResubmission(t_inf=4000.0), 700),
            FleetSpec(
                "biomed",
                MultipleSubmission(b=3, t_inf=4000.0),
                300,
                label="biomed/adopters",
            ),
            FleetSpec("atlas", SingleResubmission(t_inf=4000.0), 600),
            FleetSpec("cms", SingleResubmission(t_inf=4000.0), 400),
        ),
        window=86_400.0,
        diurnal=DiurnalProfile(amplitude=0.4),
    )

    def run():
        return run_population(snap.restore(), spec, seed=29)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_finished + result.total_gave_up == 2000
    assert result.total_gave_up < 100
    assert sum(result.broker_dispatches) > 2000


def test_bench_population_20k(benchmark):
    """2·10⁴ tasks in one day on the fleet-scale grid (always on).

    A 1/5-scale replica of the 100k population day: same 4096-core
    fair-share grid, same fleet mix and diurnal window, so the
    fair-share commit loop, the wake predictor and the chained launch
    walker are exercised in their production regime on every core
    baseline run.
    """
    snap = warmed_snapshot(fleet_grid_config(), seed=41, duration=6 * 3600.0)
    spec = fleet_population_spec(20_000)

    def run():
        return run_population(snap.restore(), spec, seed=41)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_finished + result.total_gave_up == 20_000
    assert result.total_finished > 16_000


@pytest.mark.skipif(
    not RUN_LARGE, reason="set REPRO_BENCH_LARGE=1 (or --large) to run"
)
def test_bench_population_100k(benchmark):
    """10⁵ tasks in one day on a fleet-scale grid (opt-in, --large).

    The §8 population regime the batched client pipeline targets: a
    16-site / 4096-core fair-share grid, four fleets totalling 10⁵
    short tasks across a diurnal day — dispatch buckets fill with tens
    of jobs, sibling bursts batch-cancel, and the run finishes
    event-driven at the last task's completion.
    """
    snap = warmed_snapshot(fleet_grid_config(), seed=41, duration=6 * 3600.0)
    spec = fleet_population_spec(100_000)

    def run():
        return run_population(snap.restore(), spec, seed=41)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.total_finished + result.total_gave_up == 100_000
    assert result.total_finished > 80_000


@pytest.mark.skipif(
    not RUN_LARGE, reason="set REPRO_BENCH_LARGE=1 (or --large) to run"
)
def test_bench_population_1m(benchmark):
    """10⁶ tasks in one day: the population-1m milestone (opt-in).

    Ten times the 100k day on ten times the grid (160 fair-share sites
    / 40960 cores — ``fleet_sites_for`` keeps the per-site regime
    identical, a 16-site day saturates at this scale), run through the
    struct-of-arrays pool.  The point of this bench is *completing* at
    this scale in minutes on one core (the weekly population-smoke job
    runs it and uploads the JSON artifact); the per-run number tracks
    the pool's O(tasks) scaling against the 100k bench.
    """
    snap = warmed_snapshot(
        fleet_grid_config(fleet_sites_for(1_000_000)),
        seed=41,
        duration=6 * 3600.0,
    )
    spec = fleet_population_spec(1_000_000)

    def run():
        return run_population(snap.restore(), spec, seed=41)

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert result.total_finished + result.total_gave_up == 1_000_000
    assert result.total_finished > 800_000


@pytest.mark.skipif(
    not RUN_LARGE, reason="set REPRO_BENCH_LARGE=1 (or --large) to run"
)
def test_bench_multi_vo_adoption_10k(benchmark, save_result):
    """The full multi-vo experiment: 4 adoption levels x 10⁴ tasks."""
    result = benchmark.pedantic(
        lambda: run_experiment("multi-vo"),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    save_result(result)
    sweep, shares = result.tables
    assert len(sweep.rows) == 4
    assert len(shares.rows) == 8
