"""Benchmarks: the multi-VO federation layer and the population driver.

``test_bench_multi_vo_population`` tracks the steady cost of driving a
mixed user population (fair-share sites, two federated brokers, diurnal
launches) at a moderate 2·10³ tasks, so regressions in the fair-share
commit loop or the wake predictor show up in ``BENCH_core.json``.

``test_bench_multi_vo_adoption_10k`` is the opt-in large-scale run
(``REPRO_BENCH_LARGE=1`` or ``run_benchmarks.py --large``): the full
``multi-vo`` experiment — the §8-style adoption sweep at 10⁴ tasks per
point — whose rendered output is also the committed
``benchmarks/results/multi-vo.txt`` artifact (identical to
``repro run multi-vo``, which uses the same defaults).
"""

import os

import pytest

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.experiments import run_experiment
from repro.experiments.multi_vo import multi_vo_grid_config
from repro.population import FleetSpec, PopulationSpec, run_population
from repro.gridsim import warmed_snapshot
from repro.traces.generator import DiurnalProfile

RUN_LARGE = os.environ.get("REPRO_BENCH_LARGE", "") not in ("", "0")


def test_bench_multi_vo_population(benchmark):
    """2·10³ tasks across 3 VOs / 2 brokers on the warmed 576-core grid."""
    config = multi_vo_grid_config()
    snap = warmed_snapshot(config, seed=29, duration=6 * 3600.0)
    spec = PopulationSpec(
        fleets=(
            FleetSpec("biomed", SingleResubmission(t_inf=4000.0), 700),
            FleetSpec(
                "biomed",
                MultipleSubmission(b=3, t_inf=4000.0),
                300,
                label="biomed/adopters",
            ),
            FleetSpec("atlas", SingleResubmission(t_inf=4000.0), 600),
            FleetSpec("cms", SingleResubmission(t_inf=4000.0), 400),
        ),
        window=86_400.0,
        diurnal=DiurnalProfile(amplitude=0.4),
    )

    def run():
        return run_population(snap.restore(), spec, seed=29)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.total_finished + result.total_gave_up == 2000
    assert result.total_gave_up < 100
    assert sum(result.broker_dispatches) > 2000


@pytest.mark.skipif(
    not RUN_LARGE, reason="set REPRO_BENCH_LARGE=1 (or --large) to run"
)
def test_bench_multi_vo_adoption_10k(benchmark, save_result):
    """The full multi-vo experiment: 4 adoption levels x 10⁴ tasks."""
    result = benchmark.pedantic(
        lambda: run_experiment("multi-vo"),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    save_result(result)
    sweep, shares = result.tables
    assert len(sweep.rows) == 4
    assert len(shares.rows) == 8
