"""Benchmark: regenerate Figure 5 (delayed E_J surface and its minimum)."""

from repro.experiments import run_experiment


def test_bench_fig5(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("fig5", ctx=ctx, n_slices=8),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (bundle,) = result.figures
    assert len(bundle) == 8
