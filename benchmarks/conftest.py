"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact (table or figure) through
the experiment harness, times it with pytest-benchmark, and writes the
rendered result to ``benchmarks/results/<id>.txt`` so the regenerated
tables are inspectable after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentResult
from repro.experiments.context import ReproContext

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ReproContext:
    """Shared context: full-resolution grid, the paper's seed."""
    return ReproContext(seed=2009, dt=1.0)


@pytest.fixture(scope="session")
def ctx_fast() -> ReproContext:
    """Coarser grid for the heavier sweeps (table5/6, frontier)."""
    return ReproContext(seed=2009, dt=2.0)


@pytest.fixture(scope="session")
def save_result():
    """Write an experiment's rendered output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: ExperimentResult) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")

    return _save
