"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact (table or figure) through
the experiment harness, times it with pytest-benchmark, and writes the
rendered result to ``benchmarks/results/<id>.txt`` so the regenerated
tables are inspectable after a run.

With ``REPRO_BENCH_MEM=1`` (``run_benchmarks.py --mem``) every bench
body runs one extra, untimed pass under :mod:`tracemalloc` and records
its peak allocation in the report's ``extra_info`` — the memory column
of the comparison table.  The measurement pass is separate from the
timed rounds so tracemalloc's ~2x slowdown never contaminates timings.
"""

from __future__ import annotations

import os
import tracemalloc
from pathlib import Path

import pytest

from repro.experiments import ExperimentResult
from repro.experiments.context import ReproContext

RESULTS_DIR = Path(__file__).parent / "results"

TRACK_MEM = os.environ.get("REPRO_BENCH_MEM", "") not in ("", "0")


def _mem_pass(bench, fn, args=(), kwargs=None) -> None:
    """Run ``fn`` once under tracemalloc, record its allocation peak."""
    tracemalloc.start()
    try:
        fn(*args, **(kwargs or {}))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    bench.extra_info["mem_peak_bytes"] = int(peak)


if TRACK_MEM:
    # pytest-benchmark insists the `benchmark` funcarg IS a
    # BenchmarkFixture, so a wrapper fixture is rejected — the
    # measurement pass hooks the class's entry points instead
    from pytest_benchmark.fixture import BenchmarkFixture

    _orig_call = BenchmarkFixture.__call__
    _orig_pedantic = BenchmarkFixture.pedantic

    def _call(self, function_to_benchmark, *args, **kwargs):
        _mem_pass(self, function_to_benchmark, args, kwargs)
        return _orig_call(self, function_to_benchmark, *args, **kwargs)

    def _pedantic(self, target, args=(), kwargs=None, **opts):
        _mem_pass(self, target, args, kwargs)
        return _orig_pedantic(self, target, args=args, kwargs=kwargs, **opts)

    BenchmarkFixture.__call__ = _call
    BenchmarkFixture.pedantic = _pedantic


@pytest.fixture(scope="session")
def ctx() -> ReproContext:
    """Shared context: full-resolution grid, the paper's seed."""
    return ReproContext(seed=2009, dt=1.0)


@pytest.fixture(scope="session")
def ctx_fast() -> ReproContext:
    """Coarser grid for the heavier sweeps (table5/6, frontier)."""
    return ReproContext(seed=2009, dt=2.0)


@pytest.fixture(scope="session")
def save_result():
    """Write an experiment's rendered output under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: ExperimentResult) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n", encoding="utf-8")

    return _save
