"""Benchmark: regenerate Table 5 (per-week cost optima + stability)."""

from repro.experiments import run_experiment


def test_bench_table5(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table5", ctx=ctx_fast, radius=5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 12
