"""Benchmark: regenerate Table 3 (delayed strategy, imposed ratios)."""

from repro.experiments import run_experiment


def test_bench_table3(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table3", ctx=ctx),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 10
    assert all(
        row["delta vs single"].startswith("-") for row in table.as_dicts()
    )
