"""Micro-benchmarks of the numerical core (not paper artifacts).

These track the costs that dominate every experiment: building a gridded
model, the O(n) timeout sweeps, the delayed 2-D optimisation and the
vectorised Monte-Carlo engines — the quantities to watch when changing
the integration kernels.
"""

import numpy as np

from repro.core.model import LatencyModel
from repro.core.optimize import optimize_delayed, optimize_multiple, optimize_single
from repro.core.strategies import (
    delayed_expectation_for_t0,
    multiple_expectation_sweep,
    single_expectation_sweep,
)
from repro.distributions import LogNormal, ShiftedDistribution
from repro.montecarlo import simulate_multiple, simulate_single
from repro.traces.paper import synthesize_week
from repro.util.grids import TimeGrid


def fresh_gridded():
    dist = ShiftedDistribution(LogNormal(mu=5.6, sigma=1.1), shift=150.0)
    return LatencyModel(dist, rho=0.05).on_grid(TimeGrid(t_max=10_000.0, dt=1.0))


def test_bench_grid_model_build(benchmark):
    def build():
        gm = fresh_gridded()
        return gm.A[-1]  # force tabulation

    assert benchmark(build) > 0.0


def test_bench_single_sweep(benchmark):
    gm = fresh_gridded()
    _ = gm.A  # pre-tabulate: measure the sweep alone
    sweep = benchmark(lambda: single_expectation_sweep(gm))
    assert np.isfinite(sweep).any()


def test_bench_multiple_sweep_b5(benchmark):
    gm = fresh_gridded()
    _ = gm.A
    sweep = benchmark(lambda: multiple_expectation_sweep(gm, 5))
    assert np.isfinite(sweep).any()


def test_bench_delayed_t0_slice(benchmark):
    gm = fresh_gridded()
    _ = gm.A
    k0 = gm.index_of(400.0)
    sweep = benchmark(lambda: delayed_expectation_for_t0(gm, k0))
    assert np.isfinite(sweep[k0:2 * k0]).any()


def test_bench_optimizers_end_to_end(benchmark):
    gm = fresh_gridded()

    def optimise_all():
        s = optimize_single(gm)
        m = optimize_multiple(gm, 3)
        d = optimize_delayed(gm, t0_min=100.0, t0_max=1500.0, coarse=16)
        return s.e_j + m.e_j + d.e_j

    assert benchmark(optimise_all) > 0.0


def test_bench_mc_single_20k(benchmark):
    gm = fresh_gridded()
    run = benchmark.pedantic(
        lambda: simulate_single(gm.model, 600.0, 20_000, rng=3),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert run.j.size == 20_000


def test_bench_mc_multiple_b5_20k(benchmark):
    gm = fresh_gridded()
    run = benchmark.pedantic(
        lambda: simulate_multiple(gm.model, 5, 800.0, 20_000, rng=4),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert run.j.size == 20_000


def test_bench_trace_synthesis(benchmark):
    trace = benchmark.pedantic(
        lambda: synthesize_week("2006-IX", seed=9),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(trace) == 2093
