"""Benchmark: regenerate Figure 8 (delta_cost vs N_// curves)."""

from repro.experiments import run_experiment


def test_bench_fig8(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("fig8", ctx=ctx_fast, b_max=5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (bundle,) = result.figures
    assert bundle.get("delayed (cost frontier)").y.min() < 1.0
