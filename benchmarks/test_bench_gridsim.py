"""Benchmarks: DES validation, fleet-adoption extension, raw DES substrate.

The substrate benches (warm-up, warmed fork, probe campaign, adoption
fleet) isolate the kernels the ISSUE-2 overhaul targets, so the gridsim
speedup is tracked in ``BENCH_core.json`` like the PR 1 kernels; the two
experiment benches measure the end-to-end wall time of ``val-des`` and
``abl-adopt``.
"""

from repro.core.strategies import MultipleSubmission
from repro.experiments import run_experiment
from repro.gridsim import (
    GridSimulator,
    ProbeExperiment,
    default_grid_config,
    run_strategy_on_grid,
    warmed_grid,
)
from repro.gridsim.grid import _WARM_CACHE


def test_bench_val_des(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("val-des", n_tasks=120, probe_days=1.5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    ratios = [float(r["ratio"]) for r in table.as_dicts()]
    assert all(0.4 < r < 2.5 for r in ratios)


def test_bench_adoption_sweep(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-adopt", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    # 4 baseline fleets + the surface-calibrated delayed fleet
    assert len(table.rows) == 5
    assert any("delayed" in str(row[1]) for row in table.rows)


def test_bench_grid_warm_up(benchmark):
    """Raw DES speed: a 12-hour warm-up of the default 12-site grid."""

    def warm():
        grid = GridSimulator(default_grid_config(), seed=5)
        grid.warm_up(12 * 3600.0)
        return grid

    grid = benchmark.pedantic(warm, rounds=3, iterations=1, warmup_rounds=1)
    assert grid.utilization() > 0.5


def test_bench_warmed_fork(benchmark):
    """Snapshot path: forking a cached warmed grid (vs re-warming it)."""
    _WARM_CACHE.clear()
    cfg = default_grid_config()
    warmed_grid(cfg, seed=5, duration=12 * 3600.0)  # build + freeze master

    grid = benchmark.pedantic(
        lambda: warmed_grid(cfg, seed=5, duration=12 * 3600.0),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert grid.now == 12 * 3600.0


def test_bench_probe_campaign(benchmark):
    """Raw DES speed: one simulated probe-day on a warmed default grid."""

    def campaign():
        grid = warmed_grid(default_grid_config(), seed=5, duration=6 * 3600.0)
        return ProbeExperiment(grid, n_slots=20).run(86_400.0)

    trace = benchmark.pedantic(campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 100


def test_bench_adoption_fleet(benchmark):
    """Raw DES speed: one 200-task burst fleet on a warmed default grid."""

    def fleet():
        grid = warmed_grid(default_grid_config(), seed=7, duration=6 * 3600.0)
        return run_strategy_on_grid(
            grid,
            MultipleSubmission(b=3, t_inf=4000.0),
            200,
            task_interval=100.0,
            runtime=600.0,
        )

    outcome = benchmark.pedantic(fleet, rounds=3, iterations=1, warmup_rounds=1)
    assert outcome.j.size > 100
