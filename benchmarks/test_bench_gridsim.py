"""Benchmarks: DES validation, fleet-adoption extension, raw DES throughput."""

from repro.experiments import run_experiment
from repro.gridsim import GridSimulator, ProbeExperiment, default_grid_config


def test_bench_val_des(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("val-des", n_tasks=120, probe_days=1.5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    ratios = [float(r["ratio"]) for r in table.as_dicts()]
    assert all(0.4 < r < 2.5 for r in ratios)


def test_bench_adoption_sweep(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-adopt", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    # 4 baseline fleets + the surface-calibrated delayed fleet
    assert len(table.rows) == 5
    assert any("delayed" in str(row[1]) for row in table.rows)


def test_bench_des_probe_throughput(benchmark):
    """Raw DES speed: one simulated probe-day on the default grid."""

    def campaign():
        grid = GridSimulator(default_grid_config(), seed=5)
        grid.warm_up(6 * 3600.0)
        return ProbeExperiment(grid, n_slots=20).run(86_400.0)

    trace = benchmark.pedantic(campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 100
