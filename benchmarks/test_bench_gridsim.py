"""Benchmarks: DES validation, fleet-adoption extension, raw DES substrate.

The substrate benches (warm-up, warmed fork, probe campaign, adoption
fleet) isolate the kernels the ISSUE-2 overhaul targeted and the ISSUE-3
vectorised site queues accelerate, so the gridsim speedup is tracked in
``BENCH_core.json`` like the PR 1 kernels; the two experiment benches
measure the end-to-end wall time of ``val-des`` and ``abl-adopt``.  The
two scenario benches (saturated site, outage day) stress the regimes
where the vectorised background lane does the most reconciliation work:
an unboundedly growing queue, and gate toggles with running-job kills.
"""

import numpy as np

from repro.core.strategies import MultipleSubmission
from repro.experiments import run_experiment
from repro.gridsim import (
    FaultModel,
    GridConfig,
    GridSimulator,
    OutageProcess,
    ProbeExperiment,
    SiteConfig,
    default_grid_config,
    run_strategy_on_grid,
    warmed_grid,
)
from repro.gridsim.grid import _WARM_CACHE


def test_bench_val_des(benchmark, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("val-des", n_tasks=120, probe_days=1.5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    ratios = [float(r["ratio"]) for r in table.as_dicts()]
    assert all(0.4 < r < 2.5 for r in ratios)


def test_bench_adoption_sweep(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-adopt", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    # 4 baseline fleets + the surface-calibrated delayed fleet
    assert len(table.rows) == 5
    assert any("delayed" in str(row[1]) for row in table.rows)


def test_bench_grid_warm_up(benchmark):
    """Raw DES speed: a 12-hour warm-up of the default 12-site grid."""

    def warm():
        grid = GridSimulator(default_grid_config(), seed=5)
        grid.warm_up(12 * 3600.0)
        return grid

    grid = benchmark.pedantic(warm, rounds=3, iterations=1, warmup_rounds=1)
    assert grid.utilization() > 0.5


def test_bench_warmed_fork(benchmark):
    """Snapshot path: forking a cached warmed grid (vs re-warming it)."""
    _WARM_CACHE.clear()
    cfg = default_grid_config()
    warmed_grid(cfg, seed=5, duration=12 * 3600.0)  # build + freeze master

    grid = benchmark.pedantic(
        lambda: warmed_grid(cfg, seed=5, duration=12 * 3600.0),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert grid.now == 12 * 3600.0


def test_bench_probe_campaign(benchmark):
    """Raw DES speed: one simulated probe-day on a warmed default grid."""

    def campaign():
        grid = warmed_grid(default_grid_config(), seed=5, duration=6 * 3600.0)
        return ProbeExperiment(grid, n_slots=20).run(86_400.0)

    trace = benchmark.pedantic(campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 100


def test_bench_probe_day(benchmark):
    """Client-pipeline stress: a dense 64-slot probe-day.

    Three times the §3.2 protocol's submission rate, so the windowed
    dispatch buckets actually fill — this is the bench the batched WMS
    lane (windowed buckets + pooled timeout timers + the reconciliation
    fast path) is aimed at.
    """

    def campaign():
        grid = warmed_grid(default_grid_config(), seed=5, duration=6 * 3600.0)
        return ProbeExperiment(grid, n_slots=64).run(86_400.0)

    trace = benchmark.pedantic(campaign, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 1000


def test_bench_saturated_site(benchmark):
    """Scenario: a 64-core site at utilisation 1.1 for three simulated days.

    The queue grows without bound, so every telemetry reconciliation
    walks a long backlog — the worst case for the vectorised lane's lazy
    commits.
    """
    cfg = GridConfig(
        sites=(SiteConfig("hot", 64, utilization=1.1, runtime_median=1800.0),),
        faults=FaultModel(),
    )

    def run():
        grid = GridSimulator(cfg, seed=11)
        grid.warm_up(3 * 86_400.0)
        return grid

    grid = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert grid.total_queue_length() > 100
    assert grid.utilization() == 1.0


def test_bench_outage_day(benchmark):
    """Scenario: a probe-day on a grid whose sites cycle through outages.

    Outage toggles force the background lane to reconcile and re-aim
    client wakes; running-job kills reshuffle the core free-time heap.
    """
    cfg = GridConfig(
        sites=(
            SiteConfig("a", 16, utilization=0.9, runtime_median=1800.0),
            SiteConfig("b", 32, utilization=0.9, runtime_median=2400.0),
            SiteConfig("c", 24, utilization=0.95, runtime_median=3600.0),
        ),
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )

    def run():
        grid = GridSimulator(cfg, seed=13)
        for k, site in enumerate(grid.sites):
            OutageProcess(
                site,
                grid.sim,
                np.random.default_rng(500 + k),
                mean_uptime=20_000.0,
                mean_downtime=6_000.0,
                kill_running=0.5,
            ).start()
        grid.warm_up(3600.0)
        return ProbeExperiment(grid, n_slots=12, timeout=6000.0).run(86_400.0)

    trace = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 100


def test_bench_adoption_fleet(benchmark):
    """Raw DES speed: one 200-task burst fleet on a warmed default grid."""

    def fleet():
        grid = warmed_grid(default_grid_config(), seed=7, duration=6 * 3600.0)
        return run_strategy_on_grid(
            grid,
            MultipleSubmission(b=3, t_inf=4000.0),
            200,
            task_interval=100.0,
            runtime=600.0,
        )

    outcome = benchmark.pedantic(fleet, rounds=3, iterations=1, warmup_rounds=1)
    assert outcome.j.size > 100


def test_bench_weather_storm_day(benchmark):
    """Scenario: a probe-day through the full weather/health stack.

    Storms toggle correlated site subsets (background reconciliation +
    running-job kills), a mid-day black hole bulk-fails its queue and
    draws probe re-admission traffic, and every client outcome feeds the
    EWMA health machine — the bookkeeping riding on top of the
    vectorised site lane that this bench keeps honest.
    """
    from repro.gridsim import (
        BlackHoleConfig,
        HealthConfig,
        ResubmitConfig,
        StormConfig,
        WeatherConfig,
    )

    cfg = GridConfig(
        sites=(
            SiteConfig("a", 16, utilization=0.9, runtime_median=1800.0),
            SiteConfig("b", 32, utilization=0.9, runtime_median=2400.0),
            SiteConfig("c", 24, utilization=0.95, runtime_median=3600.0),
        ),
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
        weather=WeatherConfig(
            storm=StormConfig(
                mean_interval=3 * 3600.0,
                mean_duration=1800.0,
                subset_size=2,
                kill_running=0.5,
            ),
            black_holes=(
                BlackHoleConfig(site="b", start=40_000.0, duration=8_000.0),
            ),
        ),
        health=HealthConfig(),
        resubmit=ResubmitConfig(),
    )

    def run():
        grid = GridSimulator(cfg, seed=13)
        grid.warm_up(3600.0)
        trace = ProbeExperiment(grid, n_slots=12, timeout=6000.0).run(86_400.0)
        return grid, trace

    grid, trace = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert len(trace) > 100
    report = grid.weather_report()
    assert report["storms_started"] >= 1
    assert sum(report["black_hole_failures"].values()) > 0


def test_bench_broker_storm_day(benchmark):
    """Scenario: a task day through the middleware fault domain.

    Storms down a broker together with a site subset, the submission
    path errors (half the errors silently landing, so duplicates are
    minted and reconciled), and every copy takes the resilient path —
    backoff timers, circuit breakers, failover.  This bench pins the
    cost of the retry/duplicate machinery riding on the client lane,
    and its conservation audit keeps the bookkeeping honest under time
    pressure.
    """
    from repro.gridsim import audit_conservation, fault_schedule
    from repro.gridsim.chaos import chaos_grid_config, run_chaos

    cfg = fault_schedule(
        chaos_grid_config(n_sites=6, n_brokers=2, seed=3),
        seed=29,
        start=3_600.0,
        window=6 * 3_600.0,
        n_broker_outages=3,
        p_fail=0.2,
        p_landed=0.5,
    )

    def run():
        return run_chaos(
            cfg,
            seed=17,
            n_tasks=150,
            warm=3_600.0,
            task_interval=120.0,
            horizon=86_400.0,
        )

    out = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert out.finished > 100
    out.report.verify()
    assert out.report.jobs >= 150


def test_bench_trace_day(benchmark):
    """Scenario: the broker-storm task day with end-to-end tracing on.

    Identical campaign to ``test_bench_broker_storm_day`` but with
    ``GridConfig.tracing`` enabled, so every lifecycle hook takes its
    recording branch and the latency histogram fills.  Comparing the
    two benches reads off the tracing overhead directly; the span count
    assertion keeps the recorder honest about actually recording.
    """
    import dataclasses

    from repro.gridsim import fault_schedule
    from repro.gridsim.chaos import chaos_grid_config, run_chaos

    cfg = dataclasses.replace(
        fault_schedule(
            chaos_grid_config(n_sites=6, n_brokers=2, seed=3),
            seed=29,
            start=3_600.0,
            window=6 * 3_600.0,
            n_broker_outages=3,
            p_fail=0.2,
            p_landed=0.5,
        ),
        tracing=True,
    )

    def run():
        return run_chaos(
            cfg,
            seed=17,
            n_tasks=150,
            warm=3_600.0,
            task_interval=120.0,
            horizon=86_400.0,
        )

    out = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert out.finished > 100
    out.report.verify()
    assert len(out.events) > 4 * out.finished
