"""Benchmarks: Monte-Carlo validation and the Eq. (5) ablation."""

from repro.experiments import run_experiment


def test_bench_val_mc(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("val-mc", ctx=ctx_fast, n_tasks=20_000),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    zs = [float(r["z"]) for r in table.as_dicts()]
    assert max(zs) < 4.5


def test_bench_eq5_ablation(benchmark, ctx_fast, save_result):
    result = benchmark(lambda: run_experiment("abl-eq5", ctx=ctx_fast))
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 20
