"""Benchmark: the end-to-end submission planner (trace -> recommendation)."""

from repro.workflow import plan_submissions


def test_bench_plan_submissions(benchmark, ctx_fast):
    model = ctx_fast.model("2006-IX")

    plan = benchmark.pedantic(
        lambda: plan_submissions(
            model,
            max_parallel=3.0,
            deadline_quantile=0.95,
            t0_window=(100.0, 1500.0),
        ),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    assert plan.candidates
    assert plan.best.e_j > 0
