"""Benchmark: regenerate Figure 6 (E_J vs N_// frontier)."""

from repro.experiments import run_experiment


def test_bench_fig6(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("fig6", ctx=ctx, b_max=5),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (bundle,) = result.figures
    assert len(bundle) == 2
