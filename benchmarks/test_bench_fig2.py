"""Benchmark: regenerate Figure 2 (E_J profiles for b = 1..10)."""

from repro.experiments import run_experiment


def test_bench_fig2(benchmark, ctx, save_result):
    result = benchmark(lambda: run_experiment("fig2", ctx=ctx, b_max=10))
    save_result(result)
    (bundle,) = result.figures
    assert len(bundle) == 10
