"""Benchmark: regenerate Figure 3 (min E_J and sigma_J vs b, all datasets)."""

from repro.experiments import run_experiment


def test_bench_fig3(benchmark, ctx, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("fig3", ctx=ctx, b_max=10),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    ej_bundle, sj_bundle = result.figures
    assert len(ej_bundle) == 13 and len(sj_bundle) == 13
