"""Benchmarks: sensitivity ablations (rho, model family, grid resolution)."""

from repro.experiments import run_experiment


def test_bench_rho_sensitivity(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-rho", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    e_j = [float(r["single E_J"].rstrip("s")) for r in table.as_dicts()]
    assert all(a <= b for a, b in zip(e_j, e_j[1:]))  # monotone in rho


def test_bench_family_sensitivity(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-family", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 7  # ECDF reference + 6 families


def test_bench_resolution_study(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("abl-grid", ctx=ctx_fast),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 5
