"""Benchmark: regenerate Table 6 (cross-week parameter transfer)."""

from repro.experiments import run_experiment


def test_bench_table6(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table6", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    matrix, summary = result.tables
    assert len(summary.rows) == 7
    assert len(matrix.rows) == 49  # 7 targets x 7 sources
