"""Benchmark: regenerate Table 2 (multiple submission, b = 1..20)."""

from repro.experiments import run_experiment


def test_bench_table2(benchmark, ctx, save_result):
    result = benchmark(lambda: run_experiment("table2", ctx=ctx, b_max=20))
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 20
    e_j = [float(r["best E_J"].rstrip("s")) for r in table.as_dicts()]
    assert all(a >= b for a, b in zip(e_j, e_j[1:]))
