"""Benchmark: regenerate Table 1 (latency statistics for 13 trace sets)."""

from repro.experiments import run_experiment


def test_bench_table1(benchmark, ctx, save_result):
    result = benchmark(lambda: run_experiment("table1", ctx=ctx))
    save_result(result)
    (table,) = result.tables
    assert len(table.rows) == 13
