from repro.experiments import run_experiment


def test_bench_grid_weather(benchmark, save_result):
    """End-to-end `grid-weather` experiment at its committed defaults:
    6 warmed snapshots (3 regimes × self-healing on/off), 18 strategy
    campaigns of 400 tasks through the full weather/health stack."""
    result = benchmark.pedantic(
        lambda: run_experiment("grid-weather"),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    frontier, telemetry = result.tables
    assert len(frontier.rows) == 6
    assert any("flips" not in n and "strategy" in n for n in result.notes)
