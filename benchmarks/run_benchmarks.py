#!/usr/bin/env python
"""Run the core micro-benchmarks and maintain the ``BENCH_core.json`` baseline.

The perf trajectory of this repo is tracked through one committed file,
``benchmarks/BENCH_core.json``: the distilled pytest-benchmark statistics
(min / mean / stddev / rounds, in seconds) of every test in
``benchmarks/test_bench_core.py`` and ``benchmarks/test_bench_gridsim.py``
(the numerical kernels and the DES substrate), plus enough environment
metadata to interpret them.  Typical usage::

    python benchmarks/run_benchmarks.py            # run + compare vs baseline
    python benchmarks/run_benchmarks.py --update   # run + rewrite the baseline
    python benchmarks/run_benchmarks.py --suite benchmarks  # every bench file
    python benchmarks/run_benchmarks.py --filter probe_day  # single bench
    python benchmarks/run_benchmarks.py --filter population_20k --profile

A comparison fails (exit 1) when any benchmark's mean regresses by more
than ``--threshold`` (default 1.5×) against the committed baseline, so CI
or a pre-merge run makes perf regressions visible.  See PERFORMANCE.md
for what each benchmark covers and the current headline numbers.

``--profile`` runs each selected bench body once under :mod:`cProfile`
(pytest-benchmark itself disabled — its pause/resume instrumentation
cannot nest under an outer profiler) and prints the top
cumulative/tottime rows instead of comparing against the baseline, so
a profiled run never counts as a regression and ``--update`` is
refused.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent
DEFAULT_BASELINE = BENCH_DIR / "BENCH_core.json"
#: the tracked baseline covers the numerical core, the DES substrate and
#: the multi-VO federation/population layer
CORE_SUITES = [
    BENCH_DIR / "test_bench_core.py",
    BENCH_DIR / "test_bench_gridsim.py",
    BENCH_DIR / "test_bench_population.py",
]


def run_pytest_benchmarks(
    suites: list[Path],
    *,
    large: bool = False,
    mem: bool = False,
    keyword: str | None = None,
    profile_path: Path | None = None,
) -> dict:
    """Run pytest-benchmark on ``suites`` and return the raw JSON report.

    With ``profile_path`` the whole pytest process runs under
    :mod:`cProfile` and dumps its stats there; benchmarking itself is
    disabled (each bench body runs exactly once) and ``{}`` is
    returned — profiled timings would be meaningless anyway.
    """
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        report_path = Path(tmp.name)
    env = dict(os.environ)
    if large:
        env["REPRO_BENCH_LARGE"] = "1"
    if mem:
        env["REPRO_BENCH_MEM"] = "1"
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cmd = [sys.executable]
    if profile_path is not None:
        cmd += ["-m", "cProfile", "-o", str(profile_path)]
    cmd += ["-m", "pytest", *(str(s) for s in suites), "-q"]
    if profile_path is not None:
        # pytest-benchmark's run instrumentation fights an outer
        # cProfile (its pause/resume tries to reinstall the active
        # profiler as a plain profile function); disabled, each bench
        # body runs exactly once — also the cleanest trace to read
        cmd += ["--benchmark-disable"]
    else:
        cmd += [f"--benchmark-json={report_path}"]
    if keyword:
        cmd += ["-k", keyword]
    try:
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            raise SystemExit(f"benchmark run failed (pytest exit {proc.returncode})")
        if profile_path is not None:
            return {}
        return json.loads(report_path.read_text(encoding="utf-8"))
    finally:
        report_path.unlink(missing_ok=True)


def render_profile(profile_path: Path, rows: int) -> str:
    """The top-``rows`` cumulative-time table of a profile dump."""
    import io
    import pstats

    buf = io.StringIO()
    stats = pstats.Stats(str(profile_path), stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(rows)
    buf.write("\n")
    stats.sort_stats("tottime").print_stats(rows)
    return buf.getvalue()


def distill(report: dict) -> dict:
    """Reduce a pytest-benchmark report to {test name: summary stats}."""
    out = {}
    for bench in report.get("benchmarks", []):
        stats = bench["stats"]
        entry = {
            "min": stats["min"],
            "mean": stats["mean"],
            "stddev": stats["stddev"],
            "rounds": stats["rounds"],
        }
        peak = (bench.get("extra_info") or {}).get("mem_peak_bytes")
        if peak is not None:
            entry["mem_peak_bytes"] = int(peak)
        out[bench["name"]] = entry
    return dict(sorted(out.items()))


def baseline_payload(results: dict) -> dict:
    import numpy

    return {
        "suite": "core",
        "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "environment": {
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "units": "seconds",
        "benchmarks": results,
    }


def compare(results: dict, baseline: dict, threshold: float) -> tuple[bool, str]:
    """Build the comparison table; (ok, text) — ok is False on regression."""
    base = baseline.get("benchmarks", {})
    ok = True
    track_mem = any("mem_peak_bytes" in s for s in results.values())
    width = max((len(n) for n in results), default=10) + 2
    header = f"{'benchmark'.ljust(width)}{'mean':>12}{'baseline':>12}{'ratio':>8}"
    if track_mem:
        header += f"{'mem peak':>12}"
    lines = [header]

    def mem_col(stats: dict) -> str:
        if not track_mem:
            return ""
        peak = stats.get("mem_peak_bytes")
        if peak is None:
            return f"{'-':>12}"
        return f"{peak / 1e6:>10.1f}MB"

    for name, stats in results.items():
        ref = base.get(name)
        if ref is None:
            lines.append(
                f"{name.ljust(width)}{stats['mean']:12.6f}{'new':>12}{'':>8}"
                + mem_col(stats)
            )
            continue
        ratio = stats["mean"] / ref["mean"] if ref["mean"] > 0 else float("inf")
        flag = ""
        if ratio > threshold:
            flag = "  REGRESSION"
            ok = False
        elif ratio < 1.0 / threshold:
            flag = "  improved"
        lines.append(
            f"{name.ljust(width)}{stats['mean']:12.6f}{ref['mean']:12.6f}"
            f"{ratio:8.2f}{mem_col(stats)}{flag}"
        )
    missing = sorted(set(base) - set(results))
    for name in missing:
        lines.append(f"{name.ljust(width)}{'absent from this run':>24}")
    return ok, "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        nargs="+",
        default=[str(s) for s in CORE_SUITES],
        help=(
            "pytest target(s) to benchmark (default: the core + gridsim "
            "suites tracked in the baseline)"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON to compare against / update",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with this run instead of comparing",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="mean-time ratio above which a benchmark counts as regressed",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help=(
            "also write the comparison-vs-baseline table to this file "
            "(uploaded as a workflow artifact by the CI bench smoke)"
        ),
    )
    parser.add_argument(
        "--large",
        action="store_true",
        help=(
            "also run the opt-in large-scale benches (sets "
            "REPRO_BENCH_LARGE=1: the 10^4-task multi-VO adoption sweep "
            "and the 10^5-task population day)"
        ),
    )
    parser.add_argument(
        "--mem",
        action="store_true",
        help=(
            "also measure each bench body's tracemalloc allocation peak "
            "(one extra untimed pass per bench, sets REPRO_BENCH_MEM=1); "
            "adds a 'mem peak' column to the comparison table"
        ),
    )
    parser.add_argument(
        "--filter",
        metavar="EXPR",
        default=None,
        help=(
            "only run benchmarks matching this pytest -k expression "
            "(e.g. 'probe_day'); the comparison covers just the selected "
            "benches, and --update is refused so a partial run can never "
            "clobber the committed baseline"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the selected benches under cProfile and print the top "
            "cumulative/tottime rows instead of comparing against the "
            "baseline (incompatible with --update)"
        ),
    )
    parser.add_argument(
        "--profile-rows",
        type=int,
        default=25,
        metavar="N",
        help="rows to print per profile table (default: 25)",
    )
    parser.add_argument(
        "--profile-out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the profile tables to this file (requires --profile)",
    )
    args = parser.parse_args(argv)

    if args.update and args.filter:
        raise SystemExit(
            "--update with --filter would rewrite the baseline from a "
            "partial run; drop one of the two"
        )
    if args.update and args.profile:
        raise SystemExit(
            "--update with --profile would bake profiler overhead into "
            "the baseline; drop one of the two"
        )
    if args.profile_out is not None and not args.profile:
        raise SystemExit("--profile-out only makes sense with --profile")

    if args.profile:
        with tempfile.NamedTemporaryFile(suffix=".prof", delete=False) as tmp:
            profile_path = Path(tmp.name)
        try:
            run_pytest_benchmarks(
                [Path(s) for s in args.suite],
                large=args.large,
                keyword=args.filter,
                profile_path=profile_path,
            )
            table = render_profile(profile_path, args.profile_rows)
        finally:
            profile_path.unlink(missing_ok=True)
        print(table)
        if args.profile_out is not None:
            args.profile_out.write_text(table, encoding="utf-8")
        if args.report is not None:
            args.report.write_text(table, encoding="utf-8")
        return 0

    results = distill(
        run_pytest_benchmarks(
            [Path(s) for s in args.suite],
            large=args.large,
            mem=args.mem,
            keyword=args.filter,
        )
    )
    if not results:
        raise SystemExit("no benchmarks collected — is pytest-benchmark installed?")

    if args.update or not args.baseline.exists():
        if args.filter:
            raise SystemExit(
                f"no baseline at {args.baseline} and this is a --filter run "
                "— a partial run cannot seed the baseline; run once without "
                "--filter first"
            )
        if not args.update:
            print(f"no baseline at {args.baseline} — writing one")
        args.baseline.write_text(
            json.dumps(baseline_payload(results), indent=2) + "\n",
            encoding="utf-8",
        )
        message = f"baseline written: {args.baseline} ({len(results)} benchmarks)"
        print(message)
        if args.report is not None:
            args.report.write_text(message + "\n", encoding="utf-8")
        return 0

    baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
    ok, table = compare(results, baseline, args.threshold)
    verdict = (
        "no regressions"
        if ok
        else f"regressions above {args.threshold:.2f}x — see table"
    )
    print(table)
    print(f"\n{verdict}")
    if args.report is not None:
        args.report.write_text(table + "\n\n" + verdict + "\n", encoding="utf-8")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
