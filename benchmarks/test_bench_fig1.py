"""Benchmark: regenerate Figure 1 (latency cdf vs sub-cdf)."""

from repro.experiments import run_experiment


def test_bench_fig1(benchmark, ctx, save_result):
    result = benchmark(lambda: run_experiment("fig1", ctx=ctx))
    save_result(result)
    (bundle,) = result.figures
    assert bundle.get("F_R").y.max() > bundle.get("F~_R = (1-rho) F_R").y.max()
