"""Benchmark: regenerate Table 4 (delta_cost of both strategies)."""

from repro.experiments import run_experiment


def test_bench_table4(benchmark, ctx_fast, save_result):
    result = benchmark.pedantic(
        lambda: run_experiment("table4", ctx=ctx_fast),
        rounds=2,
        iterations=1,
        warmup_rounds=1,
    )
    save_result(result)
    delayed_table, multi_table = result.tables
    assert len(delayed_table.rows) == 10
    assert len(multi_table.rows) == 14
