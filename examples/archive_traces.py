"""Work with Grid Workloads Archive formats end to end.

Run with::

    python examples/archive_traces.py

Exports a synthesized probe trace in GWF (Grid Workload Format) and SWF
(Standard Workload Format), reads both back, verifies the statistics
survive the round trip, and runs the optimisation pipeline directly on a
GWF file — the path a user with real GWA traces would follow.
"""

import tempfile
from pathlib import Path

from repro import optimize_single, read_gwf, read_swf, synthesize_week, write_gwf, write_swf
from repro.traces.generator import DiurnalProfile, generate_probe_trace


def main() -> None:
    trace = synthesize_week("2007-52", seed=5)
    print(f"source trace : {trace.describe()}")

    with tempfile.TemporaryDirectory() as tmp:
        gwf_path = Path(tmp) / "biomed_probes.gwf"
        swf_path = Path(tmp) / "biomed_probes.swf"
        write_gwf(trace, gwf_path)
        write_swf(trace, swf_path)
        print(f"wrote {gwf_path.name} ({gwf_path.stat().st_size // 1024} KiB) "
              f"and {swf_path.name}")

        from_gwf = read_gwf(gwf_path)
        from_swf = read_swf(swf_path)
        print(f"GWF roundtrip: {from_gwf.describe()}")
        print(f"SWF roundtrip: {from_swf.describe()}")
        assert from_gwf.n_outliers == trace.n_outliers
        assert abs(from_gwf.mean_latency() - trace.mean_latency()) < 0.01

        # the whole pipeline straight from the archive file
        model = from_gwf.to_latency_model().on_grid()
        opt = optimize_single(model)
        print(f"\npipeline on the GWF file: optimal t_inf = {opt.t_inf:.0f}s, "
              f"E_J = {opt.e_j:.0f}s")

    # bonus: generate a nonstationary trace with the constant-probe
    # protocol and a +/-40% diurnal swing, then export it
    model = synthesize_week("2006-IX", seed=1).to_latency_model()
    nonstat = generate_probe_trace(
        model,
        duration=3 * 86_400.0,
        n_slots=15,
        diurnal=DiurnalProfile(amplitude=0.4),
        name="diurnal-campaign",
        rng=3,
    )
    print(f"\nnonstationary campaign: {nonstat.describe()}")


if __name__ == "__main__":
    main()
