"""Plan next week's submission strategy from last week's traces (§7.2).

Run with::

    python examples/weekly_planning.py

The deployment workflow the paper argues for: optimise ``(t0, t∞)`` on
the traces already collected, then use those timeouts during the *next*
period.  We replay the 2007-51 → 2008-03 sequence and measure the regret
of always being one week behind.
"""

from repro import optimize_delayed_cost, optimize_single, synthesize_all
from repro.core.strategies import delayed_moments
from repro.core.strategies.delayed import n_parallel_for_latency

WEEK_SEQUENCE = ("2007-51", "2007-52", "2007-53", "2008-01", "2008-02", "2008-03")


def main() -> None:
    traces = synthesize_all(seed=2009)
    models = {w: traces[w].to_latency_model().on_grid() for w in WEEK_SEQUENCE}
    singles = {w: optimize_single(models[w]) for w in WEEK_SEQUENCE}

    print("week      source      t0    t_inf   E_J    cost   regret")
    print("-" * 62)
    regrets = []
    for prev, week in zip(WEEK_SEQUENCE, WEEK_SEQUENCE[1:]):
        # optimum computed with hindsight on this week's own traces
        own = optimize_delayed_cost(
            models[week], singles[week].e_j, t0_min=100.0, t0_max=1500.0
        )
        # what we can actually deploy: last week's optimum
        deployed = optimize_delayed_cost(
            models[prev], singles[prev].e_j, t0_min=100.0, t0_max=1500.0
        )
        moments = delayed_moments(models[week], deployed.t0, deployed.t_inf)
        n_par = float(
            n_parallel_for_latency(moments.expectation, deployed.t0, deployed.t_inf)
        )
        cost = n_par * moments.expectation / singles[week].e_j
        regret = cost / own.cost - 1.0
        regrets.append(regret)
        print(
            f"{week}  hindsight {own.t0:6.0f}s {own.t_inf:6.0f}s "
            f"{own.e_j:5.0f}s  {own.cost:.3f}"
        )
        print(
            f"{'':8}  {prev}  {deployed.t0:6.0f}s {deployed.t_inf:6.0f}s "
            f"{moments.expectation:5.0f}s  {cost:.3f}  {regret:+.1%}"
        )

    print("-" * 62)
    print(
        f"worst regret of deploying last week's timeouts: {max(regrets):.1%} "
        "(paper: never larger than 6%)"
    )


if __name__ == "__main__":
    main()
