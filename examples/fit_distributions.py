"""Fit and select heavy-tailed latency models on trace data.

Run with::

    python examples/fit_distributions.py

The workflow used on Grid Workloads Archive traces: extract the
non-outlier latencies of a trace set, fit the standard parametric
families by maximum likelihood, rank them by AIC/BIC/KS, and compare the
best fit's strategy predictions against the ECDF-based ones.
"""

from repro import LatencyModel, optimize_single, synthesize_week
from repro.distributions import select_model


def main() -> None:
    trace = synthesize_week("2007-51", seed=7)
    latencies = trace.successful_latencies
    print(f"trace {trace.name}: {len(trace)} probes, "
          f"{trace.n_outliers} outliers (rho = {trace.outlier_ratio:.3f})\n")

    print("model selection on non-outlier latencies (AIC ranking):")
    ranked = select_model(latencies, criterion="aic")
    for res in ranked:
        print("  " + res.summary())

    best = ranked[0]
    print(f"\nbest family: {best.family}")

    # strategy prediction: parametric fit vs the empirical cdf
    parametric = LatencyModel(
        best.distribution, rho=trace.outlier_ratio, name="parametric"
    ).on_grid()
    empirical = trace.to_latency_model().on_grid()

    p_opt = optimize_single(parametric)
    e_opt = optimize_single(empirical)
    print(
        f"\nsingle-resubmission optimum:\n"
        f"  parametric model : t_inf = {p_opt.t_inf:6.0f}s,"
        f" E_J = {p_opt.e_j:6.0f}s\n"
        f"  empirical model  : t_inf = {e_opt.t_inf:6.0f}s,"
        f" E_J = {e_opt.e_j:6.0f}s"
    )
    gap = abs(p_opt.e_j - e_opt.e_j) / e_opt.e_j
    print(f"  prediction gap   : {gap:.1%} "
          "(small gap = the family captures the tail that matters)")


if __name__ == "__main__":
    main()
