"""The population-1m milestone: a million-task day, optionally sharded.

Run with::

    python examples/population_1m.py                # 100k quick pass
    python examples/population_1m.py --scale 1000000
    python examples/population_1m.py --shards 4     # multi-core runners

Drives the canonical fleet-scale workload (fair-share sites, four
fleets of paper-strategy users over a diurnal day — the same presets
the benchmarks track) through the struct-of-arrays population pool,
and with ``--shards N`` through the sharded runtime: sites partitioned
across worker processes, one broker per shard, cross-shard WMS traffic
batched per dispatch sub-window.  The grid scales with the population
(``fleet_sites_for``: 16 sites for the 10⁵ day, 160 for the 10⁶ one)
so the per-site regime stays constant instead of saturating.

Two properties worth seeing live:

* throughput: one core sustains tens of thousands of simulated tasks
  per wall-second, so the 10⁶-task day completes in minutes;
* determinism: a fixed ``(seed, shards)`` pair reproduces the exact
  same outcome tables, run after run, process fan-out and all.
"""

import argparse
import time

from repro.gridsim import warmed_snapshot
from repro.population import run_population, run_population_sharded
from repro.population.presets import (
    fleet_grid_config,
    fleet_population_spec,
    fleet_sites_for,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--seed", type=int, default=41)
    parser.add_argument(
        "--sites", type=int, default=None, help="override the scaled site count"
    )
    args = parser.parse_args()

    config = fleet_grid_config(args.sites or fleet_sites_for(args.scale))
    spec = fleet_population_spec(args.scale)
    print(
        f"{spec.total_tasks} tasks, {len(config.sites)} sites / "
        f"{sum(s.n_cores for s in config.sites)} cores, "
        f"{args.shards} shard(s)"
    )

    t0 = time.perf_counter()
    if args.shards == 1:
        grid = warmed_snapshot(config, seed=args.seed, duration=6 * 3600.0).restore()
        result = run_population(grid, spec, seed=args.seed)
    else:
        result = run_population_sharded(
            config, spec, shards=args.shards, seed=args.seed, grid_seed=args.seed
        )
    wall = time.perf_counter() - t0

    for f in result.fleets:
        print(
            f"  {f.spec.label:<28} n={f.spec.n_tasks:>7}  "
            f"meanJ={f.mean_j:8.1f}s  jobs/task={f.mean_jobs:.2f}  "
            f"gave_up={f.gave_up}"
        )
    print(
        f"finished {result.total_finished}/{spec.total_tasks} in "
        f"{wall:.1f}s wall ({spec.total_tasks / wall:,.0f} tasks/s), "
        f"virtual span {result.duration / 3600.0:.1f}h"
    )


if __name__ == "__main__":
    main()
