"""Trace a chaotic task day end to end, then decompose its latency.

Run with::

    python examples/trace_a_day.py

Runs the storm-broker-site chaos campaign with ``GridConfig.tracing``
on, prints where each strategy's latency J actually went (retry loss vs
middleware vs queue wait), peeks at the metrics registry the subsystems
published into, and round-trips the trace through JSONL and the Grid
Workloads Format — the same path as ``repro chaos --trace`` followed by
``repro report``.
"""

import dataclasses
import tempfile
from pathlib import Path

from repro.gridsim import (
    breakdown_tables,
    chaos_grid_config,
    decompose,
    export_gwf,
    read_trace,
    run_chaos,
    standard_schedules,
    write_trace,
)
from repro.traces.gwf import read_gwf_workload


def main() -> None:
    base = chaos_grid_config(seed=7)
    cfg = dict(standard_schedules(base))["storm-broker-site"]
    traced = dataclasses.replace(cfg, tracing=True)

    res = run_chaos(traced, seed=11, n_tasks=30, horizon=8 * 3600.0)
    print(
        f"campaign: {res.finished} finished, {res.gave_up} gave up, "
        f"{len(res.events)} trace events, audit "
        f"{'ok' if res.ok else 'VIOLATED'}\n"
    )

    # where did J go?  (the three components sum to the makespan)
    records = decompose(res.events)
    by_strategy, by_vo = breakdown_tables(records)
    print(by_strategy.render())
    print()
    print(by_vo.render())

    # the broker hops carry the staleness of the view they ranked on
    staleness = [aux[1] for kind, *_, aux in res.events if kind == "hop"]
    print(
        f"\n{len(staleness)} broker hops, snapshot staleness "
        f"0–{max(staleness):.0f}s (stale views are how storms mis-route)"
    )

    # round-trip: JSONL for repro report, GWF for the replay bridge
    with tempfile.TemporaryDirectory() as tmp:
        jsonl = Path(tmp) / "day.jsonl"
        gwf = Path(tmp) / "day.gwf"
        write_trace(res.events, jsonl)
        assert read_trace(jsonl) == list(res.events)
        n = export_gwf(res.events, gwf)
        arrivals, runtimes = read_gwf_workload(gwf)
        print(
            f"round-trips: JSONL exact ({len(res.events)} events); "
            f"GWF {n} rows -> {arrivals.size} replayable jobs"
        )

    # tracing is invisible: the untraced campaign is bit-identical
    plain = run_chaos(cfg, seed=11, n_tasks=30, horizon=8 * 3600.0)
    assert (plain.finished, plain.mean_latency) == (
        res.finished,
        res.mean_latency,
    )
    print("untraced rerun matches bit-for-bit: tracing observed, not perturbed")


if __name__ == "__main__":
    main()
