"""Walkthrough: a multi-VO, multi-broker production grid.

Run with::

    python examples/multi_vo_grid.py

Builds a grid with fair-share scheduling (three VOs with 50/30/20
allocations at every site) behind two federated WMS brokers, replays a
recorded SWF workload into one site, and then drives a full user
population — fleets of paper-strategy users per VO with diurnal
activity — to show the load feedback a single-user analysis misses.
"""

from pathlib import Path

from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.gridsim import (
    GridSimulator,
    TraceReplayLoad,
    federated_grid_config,
    replay_arrays_from_trace,
    warmed_snapshot,
)
from repro.population import (
    FleetSpec,
    PopulationSpec,
    adoption_population,
    run_population,
)
from repro.traces.generator import DiurnalProfile

TOY_TRACE = Path(__file__).resolve().parents[1] / "tests" / "data" / "toy.swf"


def main() -> None:
    # 1. a federated, multi-tenant grid: 8 sites, 2 brokers, 3 VOs
    config = federated_grid_config(n_sites=8, n_brokers=2, seed=7)
    total_cores = sum(s.n_cores for s in config.sites)
    print(
        f"grid: {len(config.sites)} sites / {total_cores} cores, "
        f"{len(config.brokers)} brokers, VOs "
        + ", ".join(f"{vo}={share:.0%}" for vo, share in config.sites[0].vo_shares)
    )

    grid = GridSimulator(config, seed=11)
    grid.warm_up(6 * 3600.0)
    print(
        f"after warm-up: utilization {grid.utilization():.0%}; per-site VO "
        f"usage at {grid.sites[0].name}: "
        + ", ".join(
            f"{vo}={u:.0%}" for vo, u in grid.sites[0].usage_shares().items()
        )
    )

    # 2. replay a recorded SWF workload into the first site (the same
    # chunked background lane the synthetic stream uses — no events)
    arrivals, runtimes = replay_arrays_from_trace(TOY_TRACE)
    replay = TraceReplayLoad(
        grid.sites[0], grid.sim, arrivals, runtimes, vo="atlas", time_scale=10.0
    )
    replay.start()
    grid.run_until(grid.now + 3600.0)
    print(
        f"replayed {replay.jobs_generated}/{replay.jobs_total} jobs of "
        f"{TOY_TRACE.name} into {grid.sites[0].name} (as VO 'atlas')\n"
    )

    # 3. a mixed user population on one shared (freshly warmed) grid
    snap = warmed_snapshot(config, seed=11, duration=6 * 3600.0)
    spec = PopulationSpec(
        fleets=(
            FleetSpec("biomed", SingleResubmission(t_inf=4000.0), 400, broker="wms-0"),
            FleetSpec("atlas", SingleResubmission(t_inf=4000.0), 240, broker="wms-1"),
            FleetSpec("cms", MultipleSubmission(b=3, t_inf=4000.0), 160),
        ),
        window=12 * 3600.0,
        diurnal=DiurnalProfile(amplitude=0.4),
    )
    result = run_population(snap.restore(), spec, seed=29)
    for fleet in result.fleets:
        print(
            f"{fleet.spec.label:28s} {fleet.spec.n_tasks:4d} tasks: "
            f"mean J {fleet.mean_j:6.0f}s, {fleet.mean_jobs:.2f} jobs/task, "
            f"{fleet.gave_up} gave up"
        )
    print(
        "broker dispatches: "
        + ", ".join(
            f"{bc.name}={d}"
            for bc, d in zip(config.brokers, result.broker_dispatches)
        )
    )

    # 4. the section-8 question at scale: what happens as adoption grows?
    print("\nburst-adoption sweep inside biomed (same warmed grid each time):")
    for adoption in (0.0, 0.5, 1.0):
        sweep_spec = adoption_population(
            vo_tasks={"biomed": 500, "atlas": 300, "cms": 200},
            strategies={
                vo: SingleResubmission(t_inf=4000.0)
                for vo in ("biomed", "atlas", "cms")
            },
            adopter_vo="biomed",
            adopted=MultipleSubmission(b=3, t_inf=4000.0),
            adoption=adoption,
            window=12 * 3600.0,
            diurnal=DiurnalProfile(amplitude=0.4),
        )
        res = run_population(snap.restore(), sweep_spec, seed=29)
        by_vo = {vo: j.mean() for vo, j in res.by_vo().items()}
        print(
            f"  adoption {adoption:4.0%}: "
            + ", ".join(f"{vo} J={m:5.0f}s" for vo, m in sorted(by_vo.items()))
        )
    print(
        "\nfair-share charges the extra burst copies to the adopting VO, so"
        "\naggression taxes mostly the aggressor's own queue slots."
    )


if __name__ == "__main__":
    main()
