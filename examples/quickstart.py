"""Quickstart: model a trace set and compare the three strategies.

Run with::

    python examples/quickstart.py

Synthesizes the paper's 2006-IX probe trace, builds the empirical latency
model (ECDF + outlier ratio), and optimises the three client-side
submission strategies of Lingrand et al. (HPDC'09), printing the
user-side gain (E_J) and the infrastructure-side cost (Δcost) of each.
"""

from repro import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    optimize_delayed,
    optimize_delayed_cost,
    optimize_multiple,
    optimize_single,
    synthesize_week,
)


def main() -> None:
    # 1. a trace set: 2,093 probe jobs, statistics calibrated to the
    #    paper's Table 1 (mean 570 s, sigma 886 s, 5% outliers)
    trace = synthesize_week("2006-IX", seed=42)
    print(f"trace: {trace.describe()}")

    # 2. the latency model: empirical cdf + fault ratio, on a 1 s grid
    model = trace.to_latency_model().on_grid()
    print(f"model: {model.model.describe()}\n")

    # 3. single resubmission (paper section 4): the baseline
    single = optimize_single(model)
    print(
        f"single resubmission : cancel + resubmit every {single.t_inf:.0f}s"
        f" -> E_J = {single.e_j:.0f}s (sigma {single.sigma_j:.0f}s)"
    )

    # 4. multiple submission (section 5): faster but aggressive
    for b in (2, 5):
        multi = optimize_multiple(model, b)
        strategy = MultipleSubmission(b=b, t_inf=multi.t_inf)
        cost = strategy.delta_cost(model, single.e_j)
        print(
            f"multiple (b={b})      : burst every {multi.t_inf:.0f}s"
            f" -> E_J = {multi.e_j:.0f}s ({multi.e_j / single.e_j - 1:+.0%}),"
            f" cost x{cost:.2f}"
        )

    # 5. delayed resubmission (section 6): the paper's sweet spot
    delayed = optimize_delayed(
        model, t0_min=100.0, t0_max=1500.0, e_j_single=single.e_j
    )
    print(
        f"delayed (min E_J)   : copy at {delayed.t0:.0f}s, cancel at"
        f" {delayed.t_inf:.0f}s -> E_J = {delayed.e_j:.0f}s"
        f" ({delayed.e_j / single.e_j - 1:+.0%}),"
        f" N_// = {delayed.n_parallel:.2f}, cost x{delayed.cost:.2f}"
    )

    # 6. the win-win configuration (section 7): faster AND lighter
    winwin = optimize_delayed_cost(
        model, single.e_j, t0_min=100.0, t0_max=1500.0
    )
    print(
        f"delayed (min cost)  : copy at {winwin.t0:.0f}s, cancel at"
        f" {winwin.t_inf:.0f}s -> E_J = {winwin.e_j:.0f}s"
        f" ({winwin.e_j / single.e_j - 1:+.0%}), cost x{winwin.cost:.2f}"
        "  <- faster for the user and lighter for the grid"
    )

    # 7. the schedule, as in the paper's figure 4
    print()
    print(DelayedResubmission(winwin.t0, winwin.t_inf).describe_timeline())

    # sanity: the single strategy object agrees with the optimiser
    assert SingleResubmission(single.t_inf).expectation(model) == single.e_j


if __name__ == "__main__":
    main()
