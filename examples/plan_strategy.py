"""Get a deployable strategy recommendation under constraints.

Run with::

    python examples/plan_strategy.py

Uses the high-level planner: given a trace, an infrastructure budget
(max parallel copies) and a deadline target, rank the paper's strategies
and print the deployable recommendation — plus the ref-[8] hazard
diagnostic explaining *why* the chosen timeout is where it is.
"""

from repro import synthesize_week
from repro.core.diagnostics import diagnose_timeout, hazard_rate
from repro.core.optimize import optimize_single
from repro.workflow import plan_submissions


def main() -> None:
    trace = synthesize_week("2006-IX", seed=42)
    model = trace.to_latency_model().on_grid()
    print(f"workload: {trace.describe()}\n")

    # scenario 1: latency is everything, up to 3 copies allowed
    fast = plan_submissions(
        model, max_parallel=3.0, objective="e_j", t0_window=(100.0, 1500.0)
    )
    print(fast.render())
    print(f"\n-> fastest within budget: {fast.best.strategy.describe()}\n")

    # scenario 2: must not load the grid more than single resubmission
    light = plan_submissions(
        model,
        max_parallel=2.0,
        max_cost=1.0,
        objective="cost",
        t0_window=(100.0, 1500.0),
    )
    print(light.render())
    print(f"\n-> lightest win-win: {light.best.strategy.describe()}\n")

    # scenario 3: 95% of jobs must start before a deadline
    deadline = plan_submissions(
        model,
        max_parallel=3.0,
        deadline_quantile=0.95,
        objective="deadline",
        t0_window=(100.0, 1500.0),
    )
    best = deadline.best
    print(
        f"-> tightest 95th percentile: {best.strategy.describe()} "
        f"(95% of jobs start within {best.deadline:.0f}s)\n"
    )

    # why is the single-resubmission timeout where it is? (ref [8])
    single = optimize_single(model)
    diag = diagnose_timeout(model, single.t_inf)
    h = hazard_rate(model)
    print(
        f"timeout diagnostics at t_inf = {diag.t_inf:.0f}s:\n"
        f"  E_J = {diag.e_j:.0f}s, inverse hazard = {diag.inverse_hazard:.0f}s"
        f" -> {diag.verdict}\n"
        f"  (hazard at 400s: {h[model.index_of(400.0)]:.2e}/s, at 4000s: "
        f"{h[model.index_of(4000.0)]:.2e}/s — the decaying hazard is what "
        "makes cancel-and-resubmit optimal)"
    )


if __name__ == "__main__":
    main()
