"""Measure, model and verify strategies on the discrete-event grid.

Run with::

    python examples/grid_simulation.py

Replays the paper's full methodology on a mechanistic EGEE-like
simulator: a constant-probe measurement campaign (section 3.2), the
empirical latency model, analytic strategy optimisation, and finally the
strategies *executed* on fresh copies of the same grid to verify the
predictions.
"""

from repro.core import optimize_multiple, optimize_single
from repro.core.strategies import MultipleSubmission, SingleResubmission
from repro.gridsim import (
    GridSimulator,
    ProbeExperiment,
    default_grid_config,
    run_strategy_on_grid,
)
from repro.util.grids import TimeGrid


def main() -> None:
    config = default_grid_config()
    print(
        f"grid: {len(config.sites)} sites, "
        f"{sum(s.n_cores for s in config.sites)} cores, "
        f"fault rho = {config.faults.rho:.3f}"
    )

    # 1. measurement campaign (paper section 3.2)
    grid = GridSimulator(config, seed=11)
    grid.warm_up(12 * 3600.0)
    print(f"after warm-up: utilization {grid.utilization():.0%}, "
          f"{grid.total_queue_length()} jobs queued")

    trace = ProbeExperiment(grid, n_slots=20, timeout=6000.0).run(2 * 86_400.0)
    print(f"probe campaign: {trace.describe()}\n")

    # 2. model + analytic optimisation
    model = trace.to_latency_model().on_grid(TimeGrid(t_max=6000.0, dt=1.0))
    single = optimize_single(model)
    multi = optimize_multiple(model, 3)
    print(f"analytic: single t_inf = {single.t_inf:.0f}s -> {single.e_j:.0f}s; "
          f"burst b=3 t_inf = {multi.t_inf:.0f}s -> {multi.e_j:.0f}s")

    # 3. execute both strategies on fresh same-seed grids
    for label, strategy, predicted in (
        ("single", SingleResubmission(t_inf=single.t_inf), single.e_j),
        ("burst b=3", MultipleSubmission(b=3, t_inf=multi.t_inf), multi.e_j),
    ):
        fresh = GridSimulator(config, seed=11)
        fresh.warm_up(12 * 3600.0)
        outcome = run_strategy_on_grid(
            fresh, strategy, 150, task_interval=400.0, runtime=120.0
        )
        print(
            f"executed {label:10s}: realised E_J = {outcome.mean_j:6.0f}s "
            f"(predicted {predicted:6.0f}s, ratio "
            f"{outcome.mean_j / predicted:.2f}), "
            f"{outcome.mean_jobs:.2f} jobs/task"
        )

    print("\nprediction ratios near 1 confirm the probe-based workflow on a"
          " mechanistic grid.")


if __name__ == "__main__":
    main()
