"""Tests for the nonstationary probe-stream generator."""

import numpy as np
import pytest

from repro.core.model import LatencyModel
from repro.distributions import Exponential, ShiftedDistribution
from repro.traces.generator import DiurnalProfile, generate_probe_trace


@pytest.fixture(scope="module")
def model():
    return LatencyModel(
        ShiftedDistribution(Exponential(rate=1 / 300.0), shift=60.0), rho=0.1
    )


class TestDiurnalProfile:
    def test_factor_oscillates_around_one(self):
        p = DiurnalProfile(amplitude=0.5)
        t = np.linspace(0, 86_400, 1000)
        f = np.asarray(p.factor(t))
        assert f.min() == pytest.approx(0.5, abs=1e-3)
        assert f.max() == pytest.approx(1.5, abs=1e-3)
        assert f.mean() == pytest.approx(1.0, abs=0.01)

    def test_zero_amplitude_is_identity(self):
        p = DiurnalProfile(amplitude=0.0)
        assert p.factor(12_345.0) == 1.0

    def test_phase_shifts_peak(self):
        a = DiurnalProfile(amplitude=0.5, phase=0.0)
        b = DiurnalProfile(amplitude=0.5, phase=21_600.0)
        assert float(a.factor(21_600.0)) == pytest.approx(1.5, abs=1e-6)
        assert float(b.factor(43_200.0)) == pytest.approx(1.5, abs=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalProfile(amplitude=0.1, period=0.0)


class TestGenerateProbeTrace:
    def test_constant_probe_protocol_renews(self, model):
        t = generate_probe_trace(
            model, duration=50_000.0, n_slots=10, rng=1, name="g"
        )
        # each slot submits a new probe when the previous finishes:
        # with mean dwell ~(0.9*360 + 0.1*10000) ≈ 1324 s, expect ≈ 10*50000/1324
        assert len(t) == pytest.approx(10 * 50_000 / 1324, rel=0.25)
        assert t.name == "g"

    def test_submission_times_sorted_and_bounded(self, model):
        t = generate_probe_trace(model, duration=20_000.0, n_slots=5, rng=2)
        assert (np.diff(t.submit_times) >= 0).all()
        assert t.submit_times.max() < 20_000.0
        assert t.submit_times.min() == 0.0

    def test_outlier_ratio_tracks_model(self, model):
        t = generate_probe_trace(model, duration=300_000.0, n_slots=20, rng=3)
        assert t.outlier_ratio == pytest.approx(0.1, abs=0.02)

    def test_latencies_capped_by_timeout(self, model):
        t = generate_probe_trace(
            model, duration=50_000.0, n_slots=5, rng=4, timeout=1000.0
        )
        assert (t.successful_latencies < 1000.0).all()

    def test_diurnal_modulation_visible(self, model):
        profile = DiurnalProfile(amplitude=0.8)
        t = generate_probe_trace(
            model, duration=86_400.0 * 3, n_slots=50, rng=5, diurnal=profile
        )
        # latencies of probes submitted near the peak should exceed those
        # near the trough
        phase = (t.submit_times % 86_400.0)
        ok = np.isfinite(t.latencies)
        peak = ok & (phase > 10_000) & (phase < 33_000)  # around sin max
        trough = ok & (phase > 53_000) & (phase < 76_000)
        assert t.latencies[peak].mean() > 1.3 * t.latencies[trough].mean()

    def test_deterministic(self, model):
        a = generate_probe_trace(model, duration=10_000.0, n_slots=3, rng=7)
        b = generate_probe_trace(model, duration=10_000.0, n_slots=3, rng=7)
        np.testing.assert_array_equal(a.latencies, b.latencies)

    def test_validation(self, model):
        with pytest.raises(ValueError):
            generate_probe_trace(model, duration=0.0, n_slots=1)
        with pytest.raises(ValueError):
            generate_probe_trace(model, duration=100.0, n_slots=0)
        with pytest.raises(ValueError):
            generate_probe_trace(model, duration=100.0, n_slots=1, timeout=-1.0)

    def test_model_roundtrip_through_trace(self, model):
        # fit an empirical model to the generated trace: the mean should
        # track the generating model's (truncated) mean
        t = generate_probe_trace(model, duration=200_000.0, n_slots=20, rng=8)
        m = t.to_latency_model()
        assert m.rho == pytest.approx(0.1, abs=0.03)
        assert m.distribution.mean() == pytest.approx(360.0, rel=0.1)
