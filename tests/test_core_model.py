"""Tests for LatencyModel / GriddedLatencyModel (§3 machinery)."""

import numpy as np
import pytest

from repro.core.model import GriddedLatencyModel, LatencyModel
from repro.distributions import Exponential, LogNormal
from repro.util.grids import TimeGrid


class TestLatencyModel:
    def test_f_tilde_scales_by_one_minus_rho(self):
        m = LatencyModel(Exponential(rate=0.01), rho=0.2)
        t = 100.0
        expected = 0.8 * (1 - np.exp(-1.0))
        assert float(m.F_tilde(t)) == pytest.approx(expected, rel=1e-9)

    def test_f_tilde_saturates_below_one(self):
        m = LatencyModel(Exponential(rate=0.01), rho=0.2)
        assert float(m.F_tilde(1e9)) == pytest.approx(0.8)

    def test_survival_includes_outlier_mass(self):
        m = LatencyModel(Exponential(rate=0.01), rho=0.2)
        assert float(m.survival(1e9)) == pytest.approx(0.2)
        assert float(m.survival(0.0)) == pytest.approx(1.0)

    def test_paper_identity_p_less_plus_p_greater(self):
        # P(R < t) + P(R > t) = 1 for all t (§3 definitions)
        m = LatencyModel(LogNormal(5.0, 1.0), rho=0.13)
        t = np.linspace(0, 5000, 100)
        np.testing.assert_allclose(m.F_tilde(t) + m.survival(t), 1.0, atol=1e-12)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(Exponential(1.0), rho=-0.1)
        with pytest.raises(ValueError, match="< 1"):
            LatencyModel(Exponential(1.0), rho=1.0)

    def test_distribution_type_validation(self):
        with pytest.raises(TypeError):
            LatencyModel("not a distribution")

    def test_sample_latencies_outlier_fraction(self):
        m = LatencyModel(Exponential(rate=0.01), rho=0.25)
        s = m.sample_latencies(100_000, rng=0)
        assert np.isinf(s).mean() == pytest.approx(0.25, abs=0.01)

    def test_sample_latencies_zero_rho_all_finite(self):
        m = LatencyModel(Exponential(rate=0.01), rho=0.0)
        assert np.isfinite(m.sample_latencies(1000, rng=0)).all()

    def test_from_samples_estimates_rho(self):
        lat = np.array([10.0, 20.0, 30.0, np.inf])
        m = LatencyModel.from_samples(lat, n_outliers=2, name="w")
        # 1 inf in the array + 2 declared = 3 outliers out of 6 total
        assert m.rho == pytest.approx(0.5)
        assert m.name == "w"
        assert m.distribution.n_samples == 3

    def test_from_samples_requires_successes(self):
        with pytest.raises(ValueError, match="finite"):
            LatencyModel.from_samples(np.array([np.inf, np.inf]))

    def test_from_samples_rejects_negative_outliers(self):
        with pytest.raises(ValueError, match="n_outliers"):
            LatencyModel.from_samples(np.array([1.0]), n_outliers=-1)

    def test_describe(self):
        m = LatencyModel(Exponential(1.0), rho=0.1, name="2006-IX")
        assert "2006-IX" in m.describe()
        assert "0.1" in m.describe()


class TestGriddedLatencyModel:
    @pytest.fixture(scope="class")
    def gm(self):
        model = LatencyModel(Exponential(rate=0.01), rho=0.1, name="g")
        return model.on_grid(TimeGrid(t_max=2000.0, dt=1.0))

    def test_type_validation(self):
        model = LatencyModel(Exponential(1.0))
        with pytest.raises(TypeError):
            GriddedLatencyModel("x", TimeGrid())
        with pytest.raises(TypeError):
            GriddedLatencyModel(model, "y")

    def test_F_monotone_and_bounded(self, gm):
        assert (np.diff(gm.F) >= 0).all()
        assert gm.F[0] == pytest.approx(0.0, abs=1e-12)
        assert gm.F[-1] <= 1.0 - gm.rho + 1e-9

    def test_S_complements_F(self, gm):
        np.testing.assert_allclose(gm.F + gm.S, 1.0, atol=1e-12)

    def test_A_matches_quadrature(self, gm):
        # ∫0^t (1 - F̃) for the exponential+rho model has a closed form:
        # t·rho_term... check against direct numeric integration instead
        t = gm.times
        direct = np.trapezoid(gm.S[:501], t[:501])
        assert gm.A[500] == pytest.approx(direct, rel=1e-12)

    def test_density_integrates_to_F(self, gm):
        # cumulative integral of f̃ recovers F̃
        recon = gm.grid.cumint(gm.f)
        np.testing.assert_allclose(recon, gm.F, atol=5e-3)

    def test_M1_is_first_moment_integral(self, gm):
        # for exponential rate λ with mass (1-ρ):
        # ∫0^∞ u f̃ = (1-ρ)/λ
        assert gm.M1[-1] == pytest.approx(0.9 * 100.0, rel=0.05)

    def test_index_helpers(self, gm):
        k = gm.index_of(500.0)
        assert gm.times[k] == 500.0
        assert gm.F_at(500.0) == pytest.approx(float(gm.F[k]))

    def test_valid_timeout_indices_excludes_zero_mass(self):
        from repro.distributions import ShiftedDistribution

        model = LatencyModel(
            ShiftedDistribution(Exponential(0.01), shift=100.0), rho=0.0
        )
        gm = model.on_grid(TimeGrid(t_max=1000.0, dt=1.0))
        valid = gm.valid_timeout_indices()
        assert valid.min() > 100  # no success below the floor

    def test_properties_delegate(self, gm):
        assert gm.rho == 0.1
        assert gm.name == "g"

    def test_cached_arrays_are_reused(self, gm):
        assert gm.F is gm.F  # cached_property identity
        assert gm.A is gm.A
