"""Tests for the optimisers and the Δcost criterion (§7)."""

import numpy as np
import pytest

from repro.core.cost import CostPoint, cost_curve_delayed, cost_curve_multiple, delta_cost
from repro.core.optimize import (
    optimize_delayed,
    optimize_delayed_cost,
    optimize_delayed_ratio,
    optimize_multiple,
    optimize_single,
)
from repro.core.strategies import single_expectation_sweep


class TestOptimizeSingle:
    def test_finds_global_minimum_of_sweep(self, gridded):
        opt = optimize_single(gridded)
        sweep = single_expectation_sweep(gridded)
        assert opt.e_j == pytest.approx(np.nanmin(sweep[np.isfinite(sweep)]))

    def test_respects_search_window(self, gridded):
        opt = optimize_single(gridded, t_min=1000.0, t_max=2000.0)
        assert 1000.0 <= opt.t_inf <= 2000.0

    def test_empty_window_raises(self, gridded):
        with pytest.raises(ValueError, match="empty"):
            optimize_single(gridded, t_min=2000.0, t_max=1000.0)

    def test_window_below_support_raises(self, gridded):
        with pytest.raises(ValueError, match="infinite"):
            optimize_single(gridded, t_min=2.0, t_max=50.0)

    def test_sigma_consistent(self, gridded):
        from repro.core.strategies import single_moments

        opt = optimize_single(gridded)
        assert opt.sigma_j == pytest.approx(single_moments(gridded, opt.t_inf).std)


class TestOptimizeMultiple:
    def test_e_j_decreases_with_b(self, gridded):
        values = [optimize_multiple(gridded, b).e_j for b in (1, 2, 3, 5, 8)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_b1_equals_single(self, gridded):
        s = optimize_single(gridded)
        m = optimize_multiple(gridded, 1)
        assert m.e_j == pytest.approx(s.e_j)
        assert m.t_inf == s.t_inf

    def test_sigma_decreases_with_b(self, gridded):
        values = [optimize_multiple(gridded, b).sigma_j for b in (1, 3, 8)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_diminishing_returns(self, gridded):
        # paper Table 2: ΔEJ/(b-1) shrinks as b grows
        e = [optimize_multiple(gridded, b).e_j for b in (1, 2, 3, 4, 5, 6)]
        gains = [(e[i] - e[i + 1]) / e[i] for i in range(len(e) - 1)]
        assert all(a > b for a, b in zip(gains, gains[1:]))


class TestOptimizeDelayed:
    def test_beats_single(self, gridded):
        s = optimize_single(gridded)
        d = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        assert d.e_j < s.e_j

    def test_constraint_satisfied(self, gridded):
        d = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        assert d.t0 <= d.t_inf <= 2.0 * d.t0 + 1e-9

    def test_coarse_refinement_improves_or_matches(self, gridded):
        coarse = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0, coarse=32)
        fine = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0, coarse=1)
        assert fine.e_j <= coarse.e_j + 1e-6

    def test_cost_reported_when_reference_given(self, gridded):
        s = optimize_single(gridded)
        d = optimize_delayed(
            gridded, t0_min=150.0, t0_max=1500.0, e_j_single=s.e_j
        )
        assert d.cost == pytest.approx(d.n_parallel * d.e_j / s.e_j)

    def test_cost_nan_without_reference(self, gridded):
        d = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        assert np.isnan(d.cost)

    def test_n_parallel_in_paper_bounds(self, gridded):
        d = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        assert 1.0 <= d.n_parallel <= 2.0


class TestOptimizeDelayedRatio:
    def test_ratio_is_respected(self, gridded):
        for ratio in (1.2, 1.5, 1.9):
            d = optimize_delayed_ratio(gridded, ratio, t0_min=150.0, t0_max=1500.0)
            assert d.t_inf / d.t0 == pytest.approx(ratio, abs=0.05)

    def test_ratio_one_degenerates_to_single(self, gridded):
        s = optimize_single(gridded)
        d = optimize_delayed_ratio(gridded, 1.0, t0_min=150.0, t0_max=3000.0)
        # optimum over t0 with t_inf = t0 == optimal single resubmission
        assert d.e_j == pytest.approx(s.e_j, rel=1e-6)

    def test_constrained_no_better_than_global(self, gridded):
        free = optimize_delayed(gridded, t0_min=150.0, t0_max=1500.0)
        for ratio in (1.1, 1.4, 2.0):
            tied = optimize_delayed_ratio(gridded, ratio, t0_min=150.0, t0_max=1500.0)
            assert tied.e_j >= free.e_j - 1e-6

    def test_ratio_validation(self, gridded):
        with pytest.raises(ValueError, match="ratio"):
            optimize_delayed_ratio(gridded, 2.5)
        with pytest.raises(ValueError, match="ratio"):
            optimize_delayed_ratio(gridded, 0.9)


class TestDeltaCost:
    def test_single_reference_cost_is_one(self, gridded):
        s = optimize_single(gridded)
        assert delta_cost(1.0, s.e_j, s.e_j) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            delta_cost(1.0, 100.0, 0.0)
        with pytest.raises(ValueError):
            delta_cost(0.5, 100.0, 100.0)

    def test_cost_curve_multiple_increasing_for_large_b(self, gridded):
        s = optimize_single(gridded)
        points = cost_curve_multiple(gridded, [1, 2, 4, 8, 16], s.e_j)
        costs = [p.cost for p in points]
        assert costs[0] == pytest.approx(1.0)
        # paper Fig. 8: integer N_// costs increase beyond ~2 copies
        assert costs[-1] > costs[1]
        assert all(isinstance(p, CostPoint) for p in points)

    def test_cost_curve_multiple_params(self, gridded):
        s = optimize_single(gridded)
        (point,) = cost_curve_multiple(gridded, [3], s.e_j)
        assert point.params["b"] == 3
        assert point.n_parallel == 3.0

    def test_cost_curve_delayed_has_sub_unit_costs(self, gridded):
        # paper §7: some delayed configurations achieve Δcost < 1
        s = optimize_single(gridded)
        points = cost_curve_delayed(
            gridded, [1.1, 1.2, 1.3, 1.5], s.e_j
        )
        assert min(p.cost for p in points) < 1.02
        assert all(1.0 <= p.n_parallel <= 2.0 for p in points)

    def test_optimize_delayed_cost_beats_curve(self, gridded):
        s = optimize_single(gridded)
        best = optimize_delayed_cost(gridded, s.e_j, t0_min=150.0, t0_max=1500.0)
        points = cost_curve_delayed(gridded, [1.25, 1.5], s.e_j)
        assert best.cost <= min(p.cost for p in points) + 1e-9
        assert best.cost < 1.0  # the paper's headline result
        assert best.e_j < s.e_j  # and it still improves latency

    def test_optimize_delayed_cost_validation(self, gridded):
        with pytest.raises(ValueError):
            optimize_delayed_cost(gridded, 0.0)
