"""The batched WMS dispatch lane against the per-job event oracle.

Contract of :class:`~repro.gridsim.wms.BatchedWorkloadManager`: the
windowed bucket lane realises the *same dispatch law* as the per-job
oracle up to its documented quantisation — jobs reach their queue at the
upper boundary of their ``info_refresh / SUBWINDOWS`` dispatch quantum
instead of their exact match-making instant, so individual latencies
shift by less than one quantum (mean ``quantum/2`` ≈ 9 s on the default
grid, against a minutes-scale latency floor) while fault rates, dispatch
counts, site-ranking behaviour, strategy outcomes, federation routing
and fair-share accounting all agree with the oracle at law level.

The suite pins those agreements with deterministic seeds and tolerances
calibrated against the measured quantisation bias, plus the dispatch
bucket's cancellation races (a job cancelled while pooled must die in
place on every engine combination) and a bucket resolving across a
fair-share usage-decay boundary.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
)
from repro.gridsim import (
    FaultModel,
    GridConfig,
    GridSimulator,
    Job,
    JobState,
    ProbeExperiment,
    SiteConfig,
    federated_grid_config,
    run_strategy_on_grid,
)

ENGINE_MATRIX = [
    ("batched", "vector"),
    ("batched", "event"),
    ("event", "vector"),
    ("event", "event"),
]


def config(util: float = 0.85, **kw) -> GridConfig:
    defaults = dict(
        sites=(
            SiteConfig("a", 8, utilization=util, runtime_median=600.0),
            SiteConfig("b", 16, utilization=util, runtime_median=900.0),
            SiteConfig("c", 4, utilization=min(util + 0.05, 1.3), runtime_median=900.0),
        ),
        matchmaking_median=30.0,
        faults=FaultModel(p_lost=0.02, p_stuck=0.02),
    )
    defaults.update(kw)
    return GridConfig(**defaults)


def engine_pair(cfg: GridConfig, seed: int) -> tuple[GridSimulator, GridSimulator]:
    """The same grid on the batched lane and on the per-job oracle."""
    return (
        GridSimulator(dataclasses.replace(cfg, wms_engine="batched"), seed=seed),
        GridSimulator(dataclasses.replace(cfg, wms_engine="event"), seed=seed),
    )


def quantum(grid: GridSimulator) -> float:
    """The batched lane's dispatch quantum for ``grid``'s config."""
    from repro.gridsim.wms import BatchedWorkloadManager

    return grid.config.info_refresh / BatchedWorkloadManager.SUBWINDOWS


class TestProbeTraceLaw:
    """The §3.2 measurement protocol sees the same latency law."""

    @pytest.fixture(scope="class")
    def traces(self):
        out = {}
        for name, grid in zip("be", engine_pair(config(), seed=23)):
            grid.warm_up(6 * 3600.0)
            out[name] = ProbeExperiment(grid, n_slots=12, timeout=4000.0).run(
                86_400.0
            )
        return out

    def test_outlier_rates_agree(self, traces):
        rho = {k: float((~np.isfinite(t.latencies)).mean()) for k, t in traces.items()}
        assert abs(rho["b"] - rho["e"]) < 0.02

    def test_latency_laws_agree_up_to_quantisation(self, traces):
        lat = {
            k: t.latencies[np.isfinite(t.latencies)] for k, t in traces.items()
        }
        q = 300.0 / 16  # default info_refresh over SUBWINDOWS
        # the batched lane delays each dispatch by [0, q): its mean may
        # exceed the oracle's by up to one quantum (plus noise), never
        # fall materially below it
        assert lat["b"].mean() < lat["e"].mean() + 2.5 * q
        assert lat["b"].mean() > lat["e"].mean() - q
        assert abs(np.median(lat["b"]) - np.median(lat["e"])) < 2.5 * q
        # probe volume (slots cycle on latency) stays comparable
        n_b, n_e = len(traces["b"]), len(traces["e"])
        assert 0.85 < n_b / n_e < 1.15

    def test_dispatch_counts_agree(self):
        gb, ge = engine_pair(config(), seed=31)
        for g in (gb, ge):
            g.warm_up(3600.0)
            ProbeExperiment(g, n_slots=8, timeout=4000.0).run(20_000.0)
        db = sum(b.dispatch_count for b in gb.brokers)
        de = sum(b.dispatch_count for b in ge.brokers)
        assert 0.85 < db / de < 1.15


class TestStrategyOutcomeLaw:
    """Strategies executed mechanically realise comparable outcomes."""

    @pytest.mark.parametrize(
        "strategy",
        [
            SingleResubmission(t_inf=3000.0),
            MultipleSubmission(b=3, t_inf=3000.0),
            DelayedResubmission(t0=1800.0, t_inf=3000.0),
        ],
        ids=["single", "multiple", "delayed"],
    )
    def test_outcome_agrees(self, strategy):
        outs = {}
        for key, grid in zip("be", engine_pair(config(), seed=41)):
            grid.warm_up(6 * 3600.0)
            outs[key] = run_strategy_on_grid(
                grid, strategy, 60, task_interval=240.0, runtime=300.0
            )
        q = quantum(GridSimulator(config(), seed=0))
        b, e = outs["b"], outs["e"]
        # J includes the payload runtime (300 s), so a quantum-level
        # dispatch shift moves the mean by far less than a factor
        assert abs(b.mean_j - e.mean_j) < 4.0 * q + 0.25 * e.mean_j
        assert abs(b.mean_jobs - e.mean_jobs) < 0.6
        assert b.gave_up == e.gave_up == 0

    def test_strategy_ordering_preserved(self):
        """Burst submission beats single resubmission on both engines."""
        means = {}
        for key, grid in zip("be", engine_pair(config(), seed=43)):
            grid.warm_up(6 * 3600.0)
            snap_means = []
            for strategy in (
                SingleResubmission(t_inf=3000.0),
                MultipleSubmission(b=3, t_inf=3000.0),
            ):
                fork = GridSimulator(
                    dataclasses.replace(
                        config(), wms_engine=grid.config.wms_engine
                    ),
                    seed=43,
                )
                fork.warm_up(6 * 3600.0)
                out = run_strategy_on_grid(
                    fork, strategy, 60, task_interval=240.0, runtime=300.0
                )
                snap_means.append(out.mean_j)
            means[key] = snap_means
        assert means["b"][1] < means["b"][0]
        assert means["e"][1] < means["e"][0]


class TestFederationRouting:
    """Federated brokers route through the batched lane identically."""

    def test_round_robin_spreads_over_brokers(self):
        cfg = federated_grid_config(n_sites=4, n_brokers=2, seed=11)
        counts = {}
        for key, grid in zip(
            "be",
            (
                GridSimulator(dataclasses.replace(cfg, wms_engine="batched"), seed=3),
                GridSimulator(dataclasses.replace(cfg, wms_engine="event"), seed=3),
            ),
        ):
            grid.warm_up(3600.0)
            results: list = []
            from repro.gridsim import launch_task

            for i in range(40):
                grid.sim.schedule_at(
                    grid.now + 60.0 * i,
                    lambda: launch_task(
                        grid, SingleResubmission(t_inf=4000.0), 120.0, results
                    ),
                )
            grid.run_until(grid.now + 30_000.0)
            counts[key] = [b.dispatch_count for b in grid.brokers]
        for key in counts:
            assert all(c > 0 for c in counts[key]), counts
        total_b, total_e = sum(counts["b"]), sum(counts["e"])
        assert 0.8 < total_b / total_e < 1.25

    def test_via_pins_broker_on_batched_lane(self):
        cfg = federated_grid_config(n_sites=4, n_brokers=2, seed=11)
        grid = GridSimulator(
            dataclasses.replace(cfg, wms_engine="batched"), seed=5
        )
        grid.warm_up(3600.0)
        before = [b.dispatch_count for b in grid.brokers]
        job = grid.submit(Job(runtime=60.0), via="wms-1")
        grid.run_until(grid.now + 2000.0)
        after = [b.dispatch_count for b in grid.brokers]
        if job.state not in (JobState.LOST, JobState.STUCK):
            assert after[1] == before[1] + 1
        assert after[0] == before[0]


class TestFairShareLaw:
    """Fair-share accounting agrees across dispatch engines."""

    def fairshare_config(self) -> GridConfig:
        return GridConfig(
            sites=(
                SiteConfig(
                    "fs",
                    16,
                    utilization=0.9,
                    runtime_median=900.0,
                    vo_shares=(("biomed", 0.7), ("atlas", 0.3)),
                ),
            ),
            matchmaking_median=30.0,
            faults=FaultModel(),
        )

    def test_usage_shares_agree(self):
        from repro.gridsim import launch_task

        shares = {}
        for key, engine in (("b", "batched"), ("e", "event")):
            grid = GridSimulator(
                dataclasses.replace(self.fairshare_config(), wms_engine=engine),
                seed=7,
            )
            grid.warm_up(6 * 3600.0)
            results: list = []
            for i in range(30):
                vo = "biomed" if i % 2 else "atlas"
                grid.sim.schedule_at(
                    grid.now + 120.0 * i,
                    lambda vo=vo: launch_task(
                        grid,
                        SingleResubmission(t_inf=4000.0),
                        300.0,
                        results,
                        vo=vo,
                    ),
                )
            grid.run_until(grid.now + 40_000.0)
            shares[key] = grid.sites[0].usage_shares()
            assert len(results) >= 25
        for vo in ("biomed", "atlas"):
            assert abs(shares["b"][vo] - shares["e"][vo]) < 0.1


class TestDispatchBucketRaces:
    """Cancellations racing the dispatch bucket, on every engine pair."""

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_cancel_while_pooled_never_dispatches(self, wms_engine, site_engine):
        cfg = config(
            util=0.3,
            site_engine=site_engine,
            wms_engine=wms_engine,
            faults=FaultModel(),
        )
        grid = GridSimulator(cfg, seed=13)
        grid.warm_up(1800.0)
        before = sum(b.dispatch_count for b in grid.brokers)
        job = grid.submit(Job(runtime=100.0))
        assert job.state is JobState.MATCHING
        grid.cancel(job)
        assert job.state is JobState.CANCELLED
        # run far past every possible bucket boundary / dispatch event
        grid.run_until(grid.now + 5_000.0)
        assert job.state is JobState.CANCELLED
        assert sum(b.dispatch_count for b in grid.brokers) == before
        assert np.isnan(job.queue_time)

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_cancel_many_mixed_batch(self, wms_engine, site_engine):
        """One grid call settles matching, queued and running siblings."""
        cfg = config(
            util=0.0001,
            site_engine=site_engine,
            wms_engine=wms_engine,
            faults=FaultModel(),
        )
        grid = GridSimulator(cfg, seed=17)
        started: list = []
        running = grid.submit(Job(runtime=10_000.0), on_start=started.append)
        grid.run_until(grid.now + 2_000.0)  # dispatch + start on an idle grid
        assert running.state is JobState.RUNNING and started
        matching = grid.submit(Job(runtime=100.0))
        assert matching.state is JobState.MATCHING
        grid.cancel_many([running, matching])
        assert running.state is JobState.CANCELLED
        assert matching.state is JobState.CANCELLED
        grid.run_until(grid.now + 5_000.0)
        assert matching.state is JobState.CANCELLED
        busy = sum(s.busy_cores for s in grid.sites)
        assert busy <= 1  # at most stray background, never the killed client

    def test_pending_dispatches_diagnostic(self):
        grid = GridSimulator(
            config(util=0.3, wms_engine="batched", faults=FaultModel()), seed=19
        )
        grid.warm_up(600.0)
        job = grid.submit(Job(runtime=50.0))
        wms = grid.wms
        assert wms.pending_dispatches == 1
        grid.cancel(job)
        assert wms.pending_dispatches == 0  # husks are discounted
        grid.run_until(grid.now + 2_000.0)
        assert not wms._buckets

    @pytest.mark.parametrize("site_engine", ["vector", "event"])
    def test_bucket_resolves_across_fairshare_decay_boundary(self, site_engine):
        """A bucket whose window spans a usage-decay half-life still
        dispatches with the decayed priorities (both site engines)."""
        from repro.gridsim import launch_task

        cfg = GridConfig(
            sites=(
                SiteConfig(
                    "fs",
                    4,
                    utilization=0.5,
                    runtime_median=600.0,
                    vo_shares=(("biomed", 0.5), ("atlas", 0.5)),
                ),
            ),
            matchmaking_median=30.0,
            faults=FaultModel(),
            site_engine=site_engine,
            wms_engine="batched",
            fairshare_halflife=60.0,  # decays within a dispatch quantum
        )
        grid = GridSimulator(cfg, seed=23)
        grid.warm_up(1800.0)
        results: list = []
        for vo in ("biomed", "atlas", "biomed", "atlas"):
            launch_task(
                grid, SingleResubmission(t_inf=4000.0), 120.0, results, vo=vo
            )
        grid.run_until(grid.now + 10_000.0)
        assert len(results) == 4
        shares = grid.sites[0].usage_shares()
        assert set(shares) == {"biomed", "atlas"}
        assert all(0.0 <= v <= 1.0 for v in shares.values())


class TestWeatherBucketRaces:
    """Weather events racing the dispatch bucket, on every engine pair."""

    def one_site_config(self, site_engine: str, wms_engine: str) -> GridConfig:
        return GridConfig(
            sites=(SiteConfig("only", 4, utilization=0.2, runtime_median=600.0),),
            matchmaking_median=30.0,
            faults=FaultModel(),
            site_engine=site_engine,
            wms_engine=wms_engine,
        )

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_hole_opening_while_pooled_fails_the_dispatch(
        self, wms_engine, site_engine
    ):
        """A job pooled in a bucket whose target turns black-hole before
        the bucket resolves must die at the site, not vanish or hang."""
        grid = GridSimulator(self.one_site_config(site_engine, wms_engine), seed=13)
        grid.warm_up(1800.0)
        site = grid.sites[0]
        job = grid.submit(Job(runtime=100.0))
        assert job.state is JobState.MATCHING
        site.begin_black_hole()  # races the pooled dispatch
        grid.run_until(grid.now + 5_000.0)
        assert job.state is JobState.FAILED
        # at least the client job; background arrivals may join it on
        # the per-job event engine (the vector lane batches them away)
        assert site.jobs_failed_bh >= 1
        # the hole stamps the arrival, then fails it before any start
        assert not np.isnan(job.queue_time)
        assert np.isnan(job.start_time)
        if hasattr(grid.wms, "pending_dispatches"):
            assert grid.wms.pending_dispatches == 0

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_outage_while_pooled_parks_job_until_recovery(
        self, wms_engine, site_engine
    ):
        """An outage opening under a pooled dispatch parks the job in the
        site queue (dispatch disabled), and it runs once the site is back."""
        grid = GridSimulator(self.one_site_config(site_engine, wms_engine), seed=17)
        grid.warm_up(1800.0)
        site = grid.sites[0]
        job = grid.submit(Job(runtime=50.0))
        site.begin_outage(np.random.default_rng(0), 0.0)
        grid.run_until(grid.now + 2_000.0)
        assert job.state is JobState.QUEUED  # enqueued but never started
        site.end_outage()
        grid.run_until(grid.now + 2_000.0)
        assert job.state is JobState.COMPLETED

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_ban_masks_site_after_one_refresh(self, wms_engine, site_engine):
        """Once a ban has had one information-system refresh to land,
        no dispatch bucket feeds the banned site any more."""
        from repro.gridsim import HealthConfig

        cfg = config(
            util=0.2,
            site_engine=site_engine,
            wms_engine=wms_engine,
            faults=FaultModel(),
            health=HealthConfig(min_observations=3, ban_cooldown=1e8),
        )
        grid = GridSimulator(cfg, seed=19)
        grid.warm_up(1800.0)
        for _ in range(10):
            grid._health.observe_failure("b")
        grid.run_until(grid.now + 2 * grid.config.info_refresh)
        jobs = [grid.submit(Job(runtime=30.0)) for _ in range(10)]
        grid.run_until(grid.now + 5_000.0)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        # every client dispatch avoided the banned site (its background
        # production load is site-local and keeps flowing regardless)
        assert {j.site for j in jobs} <= {"a", "c"}

    @pytest.mark.parametrize("wms_engine,site_engine", ENGINE_MATRIX)
    def test_all_banned_falls_back_to_unpenalised_ranking(
        self, wms_engine, site_engine
    ):
        """With every site banned the mask would starve the grid; the
        WMS documents falling back to plain ranking instead."""
        from repro.gridsim import HealthConfig

        cfg = config(
            util=0.2,
            site_engine=site_engine,
            wms_engine=wms_engine,
            faults=FaultModel(),
            health=HealthConfig(min_observations=3, ban_cooldown=1e8),
        )
        grid = GridSimulator(cfg, seed=29)
        grid.warm_up(1800.0)
        for name in ("a", "b", "c"):
            for _ in range(10):
                grid._health.observe_failure(name)
        grid.run_until(grid.now + 2 * grid.config.info_refresh)
        job = grid.submit(Job(runtime=30.0))
        grid.run_until(grid.now + 5_000.0)
        assert job.state is JobState.COMPLETED
