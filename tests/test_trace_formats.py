"""Tests for GWF / SWF / CSV / JSONL trace round-trips."""

import io

import numpy as np
import pytest

from repro.traces import (
    read_gwf,
    read_swf,
    read_trace_csv,
    read_trace_jsonl,
    synthesize_week,
    write_gwf,
    write_swf,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.traces.gwf import GWF_FIELDS, gwf_roundtrip_string
from repro.traces.swf import SWF_FIELDS


@pytest.fixture(scope="module")
def trace():
    return synthesize_week("2007-51", seed=4, n_jobs=200)


class TestGwf:
    def test_field_count_is_29(self):
        assert len(GWF_FIELDS) == 29

    def test_roundtrip_preserves_statistics(self, trace):
        buf = io.StringIO(gwf_roundtrip_string(trace))
        back = read_gwf(buf, name=trace.name)
        assert len(back) == len(trace)
        assert back.n_outliers == trace.n_outliers
        assert back.mean_latency() == pytest.approx(trace.mean_latency(), abs=0.01)

    def test_roundtrip_via_file(self, trace, tmp_path):
        path = tmp_path / "trace.gwf"
        write_gwf(trace, path)
        back = read_gwf(path)
        assert back.name == "trace"
        assert len(back) == len(trace)

    def test_comments_and_blank_lines_skipped(self):
        text = "# comment\n\n0 0.0 120.5 0 1 -1 -1 -1 -1 -1 1 -1\n"
        t = read_gwf(io.StringIO(text))
        assert len(t) == 1
        assert t.latencies[0] == pytest.approx(120.5)

    def test_failed_status_becomes_fault(self):
        text = "0 0.0 120.5 0 1 -1 -1 -1 -1 -1 0 -1\n"
        t = read_gwf(io.StringIO(text))
        assert t.n_outliers == 1

    def test_negative_wait_becomes_fault(self):
        text = "0 0.0 -1 0 1 -1 -1 -1 -1 -1 1 -1\n"
        t = read_gwf(io.StringIO(text))
        assert t.n_outliers == 1

    def test_long_wait_becomes_timeout_outlier(self):
        text = "0 0.0 99999 0 1 -1 -1 -1 -1 -1 1 -1\n"
        t = read_gwf(io.StringIO(text))
        assert t.n_outliers == 1

    def test_submit_times_rebased_to_zero(self):
        text = (
            "0 1000.0 10 0 1 -1 -1 -1 -1 -1 1 -1\n"
            "1 1500.0 10 0 1 -1 -1 -1 -1 -1 1 -1\n"
        )
        t = read_gwf(io.StringIO(text))
        np.testing.assert_allclose(t.submit_times, [0.0, 500.0])

    def test_malformed_line_raises_with_line_number(self):
        text = "0 0.0 bad 0 1 -1 -1 -1 -1 -1 1 -1\n"
        with pytest.raises(ValueError, match="line 1"):
            read_gwf(io.StringIO(text))

    def test_short_line_raises(self):
        with pytest.raises(ValueError, match="fields"):
            read_gwf(io.StringIO("0 0.0 1\n"))

    def test_empty_source_raises(self):
        with pytest.raises(ValueError, match="no job records"):
            read_gwf(io.StringIO("# only comments\n"))


class TestSwf:
    def test_field_count_is_18(self):
        assert len(SWF_FIELDS) == 18

    def test_roundtrip_preserves_statistics(self, trace, tmp_path):
        path = tmp_path / "trace.swf"
        write_swf(trace, path)
        back = read_swf(path)
        assert len(back) == len(trace)
        assert back.n_outliers == trace.n_outliers
        assert back.mean_latency() == pytest.approx(trace.mean_latency(), abs=0.01)

    def test_semicolon_comments_skipped(self):
        text = "; header\n1 0.0 42.0 10 1 -1 -1 -1 -1 -1 1 -1\n"
        t = read_swf(io.StringIO(text))
        assert len(t) == 1

    def test_cancelled_jobs_are_outliers(self):
        text = "1 0.0 42.0 10 1 -1 -1 -1 -1 -1 5 -1\n"
        t = read_swf(io.StringIO(text))
        assert t.n_outliers == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no job records"):
            read_swf(io.StringIO("; nothing\n"))


class TestCsvJsonl:
    def test_csv_roundtrip_exact(self, trace, tmp_path):
        path = tmp_path / "t.csv"
        write_trace_csv(trace, path)
        back = read_trace_csv(path)
        assert back.name == trace.name
        assert back.timeout == trace.timeout
        np.testing.assert_allclose(back.submit_times, trace.submit_times, atol=1e-5)
        np.testing.assert_allclose(
            back.latencies[np.isfinite(back.latencies)],
            trace.latencies[np.isfinite(trace.latencies)],
            atol=1e-5,
        )
        np.testing.assert_array_equal(back.status_codes, trace.status_codes)

    def test_csv_header_validation(self):
        with pytest.raises(ValueError, match="header"):
            read_trace_csv(io.StringIO("a,b\n1,2\n"))

    def test_csv_empty_raises(self):
        with pytest.raises(ValueError, match="no probe rows"):
            read_trace_csv(io.StringIO("job_id,submit_time,latency,status\n"))

    def test_jsonl_roundtrip_exact(self, trace, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trace_jsonl(trace, path)
        back = read_trace_jsonl(path)
        assert back.name == trace.name
        np.testing.assert_allclose(back.submit_times, trace.submit_times)
        np.testing.assert_array_equal(back.status_codes, trace.status_codes)

    def test_jsonl_meta_defaults(self):
        text = '{"job_id": 0, "submit_time": 1.0, "latency": 5.0, "status": "completed"}\n'
        t = read_trace_jsonl(io.StringIO(text))
        assert t.name == "trace"
        assert len(t) == 1

    def test_jsonl_empty_raises(self):
        with pytest.raises(ValueError, match="no probe rows"):
            read_trace_jsonl(io.StringIO('{"kind": "trace_meta", "name": "x"}\n'))

    def test_cross_format_consistency(self, trace, tmp_path):
        # GWF, SWF, CSV and JSONL all encode the same observations
        g, s = tmp_path / "a.gwf", tmp_path / "a.swf"
        write_gwf(trace, g)
        write_swf(trace, s)
        t_g, t_s = read_gwf(g), read_swf(s)
        assert t_g.mean_latency() == pytest.approx(t_s.mean_latency())
        assert t_g.n_outliers == t_s.n_outliers
