"""Tests for the full J-distribution machinery (survival + quantiles)."""

import numpy as np
import pytest

from repro.core.distribution_of_j import (
    multiple_survival,
    single_survival,
    strategy_quantile,
    survival_to_quantile,
)
from repro.core.strategies import (
    DelayedResubmission,
    MultipleSubmission,
    SingleResubmission,
    multiple_moments,
    single_moments,
)
from repro.montecarlo import simulate_multiple, simulate_single


class TestSingleSurvival:
    def test_starts_at_one_and_decays(self, gridded):
        s = single_survival(gridded, 600.0)
        assert s[0] == pytest.approx(1.0)
        assert (np.diff(s) <= 1e-12).all()
        assert s[-1] < 1e-6

    def test_lattice_structure(self, gridded):
        # at t = m * t_inf the survival equals q^m
        t_inf = 600.0
        k = gridded.index_of(t_inf)
        q = float(gridded.S[k])
        s = single_survival(gridded, t_inf)
        for m in (1, 2, 3):
            assert s[m * k] == pytest.approx(q**m, rel=1e-9)

    def test_integrates_to_eq1(self, gridded):
        t_inf = 600.0
        s = single_survival(gridded, t_inf)
        e_direct = gridded.grid.integrate(s)
        e_closed = single_moments(gridded, t_inf).expectation
        # the grid truncates a tiny geometric tail
        assert e_direct == pytest.approx(e_closed, rel=1e-3)

    def test_matches_monte_carlo_cdf(self, lognormal_model, gridded):
        t_inf = 600.0
        s = single_survival(gridded, t_inf)
        run = simulate_single(lognormal_model, t_inf, 20_000, rng=5)
        for t in (300.0, 900.0, 1800.0):
            empirical = (run.j > t).mean()
            analytic = s[gridded.index_of(t)]
            assert analytic == pytest.approx(empirical, abs=0.02)

    def test_validation(self, gridded):
        with pytest.raises(ValueError):
            single_survival(gridded, 0.5)


class TestMultipleSurvival:
    def test_b1_equals_single(self, gridded):
        np.testing.assert_allclose(
            multiple_survival(gridded, 1, 700.0),
            single_survival(gridded, 700.0),
            rtol=1e-12,
        )

    def test_larger_b_dominates(self, gridded):
        s2 = multiple_survival(gridded, 2, 700.0)
        s5 = multiple_survival(gridded, 5, 700.0)
        assert (s5 <= s2 + 1e-12).all()

    def test_integrates_to_eq3(self, gridded):
        s = multiple_survival(gridded, 3, 800.0)
        e_closed = multiple_moments(gridded, 3, 800.0).expectation
        assert gridded.grid.integrate(s) == pytest.approx(e_closed, rel=1e-3)

    def test_matches_monte_carlo(self, lognormal_model, gridded):
        s = multiple_survival(gridded, 3, 800.0)
        run = simulate_multiple(lognormal_model, 3, 800.0, 20_000, rng=6)
        t = 400.0
        assert s[gridded.index_of(t)] == pytest.approx(
            (run.j > t).mean(), abs=0.02
        )

    def test_validation(self, gridded):
        with pytest.raises(ValueError):
            multiple_survival(gridded, 0, 700.0)


class TestQuantiles:
    def test_median_brackets_expectation(self, gridded):
        # heavy tail: median < mean for every strategy here
        s = SingleResubmission(t_inf=600.0)
        median = strategy_quantile(gridded, s, 0.5)
        assert 0 < median < s.expectation(gridded)

    def test_quantiles_monotone_in_q(self, gridded):
        strat = MultipleSubmission(b=3, t_inf=800.0)
        qs = [strategy_quantile(gridded, strat, q) for q in (0.25, 0.5, 0.9, 0.99)]
        assert all(a < b for a, b in zip(qs, qs[1:]))

    def test_delayed_quantile_consistent_with_survival(self, gridded):
        strat = DelayedResubmission(t0=400.0, t_inf=600.0)
        q90 = strategy_quantile(gridded, strat, 0.9)
        surv = strat.survival(gridded)
        k = gridded.index_of(q90)
        assert surv[k] == pytest.approx(0.1, abs=0.01)

    def test_better_strategy_has_lower_deadline(self, gridded):
        q_single = strategy_quantile(gridded, SingleResubmission(600.0), 0.95)
        q_multi = strategy_quantile(
            gridded, MultipleSubmission(b=5, t_inf=600.0), 0.95
        )
        assert q_multi < q_single

    def test_unreachable_quantile_raises(self, gridded):
        surv = np.full(gridded.grid.n, 0.5)  # never resolves past 0.5
        with pytest.raises(ValueError, match="not reached"):
            survival_to_quantile(gridded, surv, 0.9)

    def test_q_validation(self, gridded):
        s = single_survival(gridded, 600.0)
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                survival_to_quantile(gridded, s, bad)

    def test_unsupported_strategy_type(self, gridded):
        with pytest.raises(TypeError):
            strategy_quantile(gridded, object(), 0.5)

    def test_quantile_matches_monte_carlo(self, lognormal_model, gridded):
        # the cdf of J has plateaus (no mass inside [m·t_inf, m·t_inf+floor]),
        # so compare cdf values at the analytic quantile rather than
        # quantiles directly (which are noise-fragile on flat regions)
        strat = SingleResubmission(t_inf=700.0)
        q95 = strategy_quantile(gridded, strat, 0.95)
        run = simulate_single(lognormal_model, 700.0, 30_000, rng=8)
        assert (run.j <= q95).mean() == pytest.approx(0.95, abs=0.01)
