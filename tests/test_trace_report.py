"""Tests for trace characterization reports and burst-size selection."""

import numpy as np
import pytest

from repro.core.burst_selection import (
    smallest_b_for_deadline,
    smallest_b_for_expectation,
)
from repro.core.optimize import optimize_multiple, optimize_single
from repro.traces.dataset import TraceSet
from repro.traces.paper import synthesize_week
from repro.traces.report import characterize


@pytest.fixture(scope="module")
def trace():
    return synthesize_week("2006-IX", seed=13)


class TestCharacterize:
    def test_basic_quantities(self, trace):
        report = characterize(trace)
        assert report.name == "2006-IX"
        assert report.n_jobs == len(trace)
        assert report.rho == pytest.approx(trace.outlier_ratio)
        assert report.mean == pytest.approx(trace.mean_latency())
        assert report.cv == pytest.approx(report.std / report.mean)

    def test_percentiles_monotone(self, trace):
        report = characterize(trace)
        values = list(report.percentiles.values())
        assert values == sorted(values)
        assert report.percentiles[50.0] == pytest.approx(
            float(np.median(trace.successful_latencies))
        )

    def test_heavy_tail_flag(self, trace):
        report = characterize(trace)
        assert report.is_heavy_tailed  # 2006-IX has cv ≈ 1.55

    def test_fits_ranked(self, trace):
        report = characterize(trace)
        aics = [f.aic for f in report.fits]
        assert aics == sorted(aics)
        assert report.best_family in {"lognormal", "weibull", "gamma"}

    def test_skip_fitting(self, trace):
        report = characterize(trace, fit_families=None)
        assert report.fits == []
        assert report.best_family == "none"

    def test_half_drift_on_stationary_trace(self, trace):
        report = characterize(trace)
        # the synthetic campaign is stationary: halves agree within noise
        assert abs(report.half_drift) < 0.25

    def test_half_drift_detects_degradation(self):
        # construct a trace whose second half is 3x slower
        n = 400
        submit = np.arange(n, dtype=np.float64)
        lat = np.concatenate([np.full(n // 2, 100.0), np.full(n // 2, 300.0)])
        t = TraceSet("drift", submit, lat, np.zeros(n, dtype=np.int8))
        report = characterize(t, fit_families=None)
        assert report.half_drift == pytest.approx(2.0, abs=0.01)

    def test_table_rendering(self, trace):
        text = characterize(trace).to_table().render()
        assert "2006-IX" in text
        assert "p50" in text
        assert "heavy-tailed" in text

    def test_too_small_trace_raises(self):
        t = TraceSet(
            "tiny", np.array([0.0]), np.array([5.0]), np.zeros(1, dtype=np.int8)
        )
        with pytest.raises(ValueError, match="too few"):
            characterize(t)


class TestBurstSelection:
    def test_expectation_target(self, gridded):
        single = optimize_single(gridded)
        target = 0.5 * single.e_j
        b, e_j = smallest_b_for_expectation(gridded, target)
        assert e_j <= target
        assert b >= 2
        # minimality: b-1 misses the target
        if b > 1:
            assert optimize_multiple(gridded, b - 1).e_j > target

    def test_trivial_target_is_b1(self, gridded):
        single = optimize_single(gridded)
        b, _ = smallest_b_for_expectation(gridded, single.e_j * 1.01)
        assert b == 1

    def test_unreachable_expectation_raises(self, gridded):
        # below the 100 s floor no redundancy helps
        with pytest.raises(ValueError, match="unreachable"):
            smallest_b_for_expectation(gridded, 50.0, b_max=8)

    def test_deadline_target(self, gridded):
        b, q_lat = smallest_b_for_deadline(gridded, deadline=700.0, quantile=0.9)
        assert q_lat <= 700.0
        assert b >= 1

    def test_tighter_deadline_needs_more_copies(self, gridded):
        b_loose, _ = smallest_b_for_deadline(gridded, 1500.0, quantile=0.9)
        b_tight, _ = smallest_b_for_deadline(gridded, 500.0, quantile=0.9)
        assert b_tight >= b_loose

    def test_unreachable_deadline_raises(self, gridded):
        with pytest.raises(ValueError, match="unreachable"):
            smallest_b_for_deadline(gridded, 50.0, quantile=0.99, b_max=6)

    def test_validation(self, gridded):
        with pytest.raises(ValueError):
            smallest_b_for_expectation(gridded, -1.0)
        with pytest.raises(ValueError):
            smallest_b_for_expectation(gridded, 100.0, b_max=0)
        with pytest.raises(ValueError):
            smallest_b_for_deadline(gridded, 100.0, quantile=1.5)
