"""Final coverage batch: edge cases across smaller surfaces."""

import numpy as np
import pytest

from repro.core.strategies import DelayedResubmission
from repro.experiments.base import ExperimentResult
from repro.montecarlo import simulate_single
from repro.traces.paper import PAPER_TABLE1, PROBE_TIMEOUT, synthesize_week
from repro.util.series import Series, SeriesBundle
from repro.util.tables import Table


class TestMcRunAccessors:
    def test_all_summary_properties(self, lognormal_model):
        run = simulate_single(lognormal_model, 800.0, 2000, rng=3)
        assert run.mean_j == pytest.approx(float(run.j.mean()))
        assert run.std_j == pytest.approx(float(run.j.std()))
        assert run.stderr_j == pytest.approx(
            float(run.j.std(ddof=1) / np.sqrt(run.j.size))
        )
        assert run.mean_parallel == 1.0
        assert run.mean_jobs >= 1.0


class TestPaperTable1Identity:
    def test_mean_with_reconstruction(self):
        # the rho definition must reproduce the 'mean with 10^5' column:
        # mean_with = (1-rho)·mean_less + rho·10^4
        for week, stats in PAPER_TABLE1.items():
            reconstructed = (
                (1 - stats.rho) * stats.mean_less + stats.rho * PROBE_TIMEOUT
            )
            assert reconstructed == pytest.approx(stats.mean_with, abs=0.5), week

    def test_job_counts_sum_to_paper_total(self):
        total = sum(
            s.n_jobs for w, s in PAPER_TABLE1.items() if w != "2007/08"
        )
        assert total == 10_893

    def test_synthesize_respects_small_n(self):
        t = synthesize_week("2008-02", seed=1, n_jobs=50)
        assert len(t) == 50
        assert t.n_outliers == round(PAPER_TABLE1["2008-02"].rho * 50)

    def test_synthesize_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            synthesize_week("2008-02", seed=1, n_jobs=1)


class TestDelayedTimeline:
    def test_timeline_scales_with_parameters(self):
        short = DelayedResubmission(t0=100.0, t_inf=150.0).describe_timeline()
        long = DelayedResubmission(t0=100.0, t_inf=200.0).describe_timeline()
        assert short != long
        assert "t_inf=150" in short

    def test_timeline_has_three_jobs(self):
        text = DelayedResubmission(t0=300.0, t_inf=450.0).describe_timeline(
            width=40
        )
        assert text.count("job") == 3


class TestExperimentResultRendering:
    def test_render_with_figures_only(self):
        bundle = SeriesBundle(title="f", x_label="x", y_label="y")
        bundle.add(Series("a", np.arange(3.0), np.arange(3.0)))
        res = ExperimentResult(
            experiment_id="x", title="demo", figures=[bundle]
        )
        text = res.render()
        assert "demo" in text and "a:" in text

    def test_render_empty_notes_omitted(self):
        res = ExperimentResult(experiment_id="x", title="demo")
        assert "notes" not in res.render()

    def test_render_with_table_and_notes(self):
        t = Table(title="t", columns=["a"])
        t.add_row(1)
        res = ExperimentResult(
            experiment_id="x", title="demo", tables=[t], notes=["hello"]
        )
        text = res.render()
        assert "hello" in text and "t" in text


class TestSeriesBundleExport:
    def test_to_dict_roundtrip_structure(self):
        bundle = SeriesBundle(title="f", x_label="x", y_label="y")
        bundle.add(Series("a", np.array([1.0]), np.array([2.0])))
        d = bundle.to_dict()
        assert d["title"] == "f"
        assert d["series"][0]["label"] == "a"
        assert d["series"][0]["y"] == [2.0]


class TestGridsimCounters:
    def test_wms_dispatch_counter(self):
        from repro.gridsim import GridSimulator, SiteConfig, GridConfig, FaultModel
        from repro.gridsim.jobs import Job

        cfg = GridConfig(
            sites=(SiteConfig("a", 4, utilization=0.5),),
            faults=FaultModel(),
        )
        grid = GridSimulator(cfg, seed=1)
        for _ in range(5):
            grid.submit(Job(runtime=1.0))
        grid.run_until(10_000.0)
        assert grid.wms.dispatch_count >= 5  # probes + background
        assert grid.jobs_submitted == 5

    def test_site_counters_consistent(self):
        from repro.gridsim.events import Simulator
        from repro.gridsim.jobs import Job
        from repro.gridsim.site import ComputingElement

        sim = Simulator()
        ce = ComputingElement("ce", n_cores=2, sim=sim)
        jobs = [Job(runtime=5.0) for _ in range(6)]
        for j in jobs:
            ce.enqueue(j)
        sim.run_until(100.0)
        assert ce.jobs_started == 6
        assert ce.jobs_completed == 6
        assert ce.free_cores == 2
        assert not ce.running_jobs
